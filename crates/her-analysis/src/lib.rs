//! `her-analysis` — the workspace's own static analyzer.
//!
//! `cargo run -p her-analysis -- check` lexes every first-party Rust
//! source (crates/*, src/, tests/, benches/ — vendored code excluded)
//! and enforces the repo-specific rules in [`rules`]. Findings can be
//! waived in place with a justified comment:
//!
//! ```text
//! // #[allow(her::unregistered_metric)] — names are `fault.<kind>`, all in names::ALL
//! ```
//!
//! The linter is tested against seeded fixture files under `fixtures/`
//! (one positive and one violation file per rule), and the whole
//! workspace must come back clean in CI (`lint` job).

pub mod budget;
pub mod callgraph;
pub mod ir;
pub mod lexer;
pub mod lockgraph;
pub mod report;
pub mod rules;

use lockgraph::Edge;
use rules::{Finding, MetricNames};
use std::fs;
use std::path::{Path, PathBuf};

/// Workspace-relative path of the metric preregistration list.
pub const NAMES_RS: &str = "crates/her-obs/src/names.rs";

/// First-party source files under `root`, workspace-relative, sorted.
/// Skips `vendor/` (third-party), `target/`, and the linter's own
/// seeded-violation fixtures.
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let tops = ["crates", "src", "tests", "benches"];
    for top in tops {
        walk(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        let Ok(rel) = p.strip_prefix(root) else {
            continue;
        };
        let rel_s = rel.to_string_lossy().replace('\\', "/");
        if rel_s.starts_with("crates/her-analysis/fixtures") || rel_s.contains("/target/") {
            continue;
        }
        if p.is_dir() {
            walk(&p, root, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(rel_s.into());
        }
    }
}

/// Lints the whole workspace: per-file rules, the workspace-level
/// reverse metric check (registered but never used), and the
/// interprocedural passes (static lock order, budget threading).
/// Findings come back with waivers already applied; callers fail on any
/// `!waived` entry.
pub fn check_workspace(root: &Path) -> (Vec<Finding>, usize) {
    let (findings, files, _) = check_workspace_full(root, false);
    (findings, files)
}

/// As [`check_workspace`], additionally returning the static lock graph
/// edges (for `graph --dot` / `check-edges`) and honouring `--strict`.
pub fn check_workspace_full(root: &Path, strict: bool) -> (Vec<Finding>, usize, Vec<Edge>) {
    let names_src = fs::read_to_string(root.join(NAMES_RS)).unwrap_or_default();
    let metrics = MetricNames::parse(&names_src);
    let files = workspace_files(root);
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in &files {
        let Ok(src) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        sources.push((rel.to_string_lossy().replace('\\', "/"), src));
    }
    let mut findings = Vec::new();
    let mut used: Vec<String> = Vec::new();
    for (rel_s, src) in &sources {
        findings.extend(rules::analyze_file(rel_s, src, &metrics));
        collect_metric_uses(src, &mut used);
    }
    // Reverse direction: every preregistered name must be used somewhere
    // (literal use anywhere, test code included). Entries for dynamic
    // name families carry a waiver comment in names.rs itself.
    let names_lexed = lexer::lex(&names_src);
    for (name, line) in &metrics.names {
        if !used.iter().any(|u| u == name) {
            findings.push(Finding {
                rule: rules::UNREGISTERED_METRIC,
                path: NAMES_RS.to_string(),
                line: *line,
                message: format!(
                    "metric `{name}` is preregistered but never used by a literal call site"
                ),
                waived: false,
            });
        }
    }
    // Waivers inside names.rs apply to the reverse-direction findings.
    for f in findings.iter_mut() {
        if f.path == NAMES_RS && !f.waived {
            let short = f.rule.trim_start_matches("her::");
            if names_lexed
                .waivers
                .iter()
                .any(|w| w.rule == short && (w.line == f.line || w.line + 1 == f.line))
            {
                f.waived = true;
            }
        }
    }
    // Interprocedural passes share one parsed-IR workspace.
    let (mut ws_findings, edges) = workspace_passes(&sources, strict);
    findings.append(&mut ws_findings);
    // Span-aware waivers: a waiver on a fn/impl/mod header (or the
    // comment line directly above it) waives that rule for the whole
    // item. Applied to every finding, per-file rules included.
    apply_span_waivers(&sources, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    (findings, files.len(), edges)
}

/// Runs the workspace-level (interprocedural) passes over in-memory
/// sources: the static lock-order pass and the budget-threading pass.
/// Returned findings have *line-adjacent* waivers applied; span-aware
/// waivers are the caller's second pass (fixture tests exercise both).
pub fn workspace_passes(
    sources: &[(String, String)],
    strict: bool,
) -> (Vec<Finding>, Vec<Edge>) {
    let parsed: Vec<ir::FileIr> = sources
        .iter()
        .map(|(p, s)| ir::parse_file(p, s))
        .collect();
    let ws = callgraph::Workspace::build(parsed);
    let lock = lockgraph::run(&ws, strict);
    let mut findings = lock.findings;
    findings.extend(budget::run(&ws));
    // Line-adjacent waivers, same semantics as the per-file rules.
    for f in findings.iter_mut() {
        if f.waived {
            continue;
        }
        let Some(file) = ws.files.iter().find(|fl| fl.path == f.path) else {
            continue;
        };
        let short = f.rule.trim_start_matches("her::");
        if file
            .waivers
            .iter()
            .any(|w| w.rule == short && (w.line == f.line || w.line + 1 == f.line))
        {
            f.waived = true;
        }
    }
    (findings, lock.edges)
}

/// Span-aware waiver application: re-parses each file's item spans and
/// waives findings covered by a waiver sitting on an item header line
/// (or the line directly above it — non-adjacent comments do *not*
/// count).
pub fn apply_span_waivers(sources: &[(String, String)], findings: &mut [Finding]) {
    for (path, src) in sources {
        if !findings.iter().any(|f| !f.waived && &f.path == path) {
            continue;
        }
        let file = ir::parse_file(path, src);
        if file.waivers.is_empty() {
            continue;
        }
        let spans = ir::item_spans(&file.toks);
        for f in findings.iter_mut() {
            if f.waived || &f.path != path {
                continue;
            }
            let short = f.rule.trim_start_matches("her::");
            let covered = file.waivers.iter().any(|w| {
                w.rule == short
                    && spans.iter().any(|s| {
                        (w.line == s.line || w.line + 1 == s.line)
                            && s.line <= f.line
                            && f.line <= s.end_line
                    })
            });
            if covered {
                f.waived = true;
            }
        }
    }
}

/// Collects every literal metric name passed to a telemetry sink —
/// `.counter("…")`, `.gauge("…")`, `.histogram("…")`,
/// `.histogram_with("…")` — test code included (a name only a test reads
/// is still a used name).
fn collect_metric_uses(src: &str, out: &mut Vec<String>) {
    let toks = lexer::lex(src).toks;
    const SINKS: &[&str] = &["counter", "gauge", "histogram", "histogram_with"];
    for (i, t) in toks.iter().enumerate() {
        if t.kind == lexer::TokKind::Ident
            && SINKS.contains(&t.text.as_str())
            && i > 0
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == lexer::TokKind::Str {
                    out.push(arg.text.clone());
                }
            }
        }
    }
}

/// Locates the workspace root: walks up from `CARGO_MANIFEST_DIR` (or
/// the current directory) to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(rel: &str) -> String {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        fs::read_to_string(dir.join(rel))
            .unwrap_or_else(|e| panic!("fixture {rel}: {e}"))
    }

    fn names() -> MetricNames {
        MetricNames::parse("pub const ALL: &[&str] = &[\n    \"scores.embed_calls\",\n    \"scores.shared_hits\",\n];\n")
    }

    fn run(virtual_path: &str, rel: &str) -> Vec<Finding> {
        rules::analyze_file(virtual_path, &fixture(rel), &names())
    }

    fn rule_hits(findings: &[Finding], rule: &str) -> (usize, usize) {
        let of_rule: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
        let unwaived = of_rule.iter().filter(|f| !f.waived).count();
        (of_rule.len(), unwaived)
    }

    #[test]
    fn raw_sync_lock_fixtures() {
        let ok = run("crates/her-parallel/src/ok.rs", "raw_sync_lock/ok.rs");
        assert_eq!(rule_hits(&ok, rules::RAW_SYNC_LOCK).1, 0, "{ok:?}");
        let bad = run("crates/her-parallel/src/bad.rs", "raw_sync_lock/violation.rs");
        let (total, unwaived) = rule_hits(&bad, rules::RAW_SYNC_LOCK);
        assert!(unwaived >= 2, "seeded use + inline path: {bad:?}");
        assert!(total > unwaived, "the waived site must be detected but waived");
        // The facade itself may name std locks freely.
        let facade = run("crates/her-sync/src/lib.rs", "raw_sync_lock/violation.rs");
        assert_eq!(rule_hits(&facade, rules::RAW_SYNC_LOCK).0, 0);
    }

    #[test]
    fn wallclock_in_replay_fixtures() {
        let ok = run("crates/her-store/src/ok.rs", "wallclock_in_replay/ok.rs");
        assert_eq!(rule_hits(&ok, rules::WALLCLOCK_IN_REPLAY).1, 0, "{ok:?}");
        let bad = run("crates/her-store/src/bad.rs", "wallclock_in_replay/violation.rs");
        assert!(rule_hits(&bad, rules::WALLCLOCK_IN_REPLAY).1 >= 2, "{bad:?}");
        // Same source outside the scoped crates is not replay code.
        let elsewhere = run("crates/her-graph/src/x.rs", "wallclock_in_replay/violation.rs");
        assert_eq!(rule_hits(&elsewhere, rules::WALLCLOCK_IN_REPLAY).0, 0);
    }

    #[test]
    fn panicking_decode_fixtures() {
        let ok = run("crates/her-store/src/codec.rs", "panicking_decode/ok.rs");
        assert_eq!(rule_hits(&ok, rules::PANICKING_DECODE).1, 0, "{ok:?}");
        let bad = run("crates/her-store/src/codec.rs", "panicking_decode/violation.rs");
        // unwrap, expect and slice indexing each seeded at least once.
        assert!(rule_hits(&bad, rules::PANICKING_DECODE).1 >= 3, "{bad:?}");
        let msgs: Vec<_> = bad
            .iter()
            .filter(|f| f.rule == rules::PANICKING_DECODE)
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("unwrap")));
        assert!(msgs.iter().any(|m| m.contains("expect")));
        assert!(msgs.iter().any(|m| m.contains("indexing")));
    }

    #[test]
    fn unregistered_metric_fixtures() {
        let ok = run("crates/her-core/src/ok.rs", "unregistered_metric/ok.rs");
        assert_eq!(rule_hits(&ok, rules::UNREGISTERED_METRIC).1, 0, "{ok:?}");
        let bad = run("crates/her-core/src/bad.rs", "unregistered_metric/violation.rs");
        let (total, unwaived) = rule_hits(&bad, rules::UNREGISTERED_METRIC);
        // One unknown literal + one dynamic site unwaived; one dynamic waived.
        assert!(unwaived >= 2, "{bad:?}");
        assert!(total > unwaived, "{bad:?}");
    }

    #[test]
    fn generation_entry_point_fixtures() {
        let ok = run("crates/her-core/src/paramatch.rs", "generation_entry_point/ok.rs");
        assert_eq!(rule_hits(&ok, rules::GENERATION_ENTRY_POINT).1, 0, "{ok:?}");
        let bad = run(
            "crates/her-core/src/paramatch.rs",
            "generation_entry_point/violation.rs",
        );
        assert!(rule_hits(&bad, rules::GENERATION_ENTRY_POINT).1 >= 1, "{bad:?}");
        // The definition site is exempt.
        let def = run(
            "crates/her-core/src/shared_scores.rs",
            "generation_entry_point/violation.rs",
        );
        assert_eq!(rule_hits(&def, rules::GENERATION_ENTRY_POINT).0, 0);
    }

    #[test]
    fn literal_lock_rank_fixtures() {
        let ok = run("crates/her-serve/src/ok.rs", "literal_lock_rank/ok.rs");
        assert_eq!(rule_hits(&ok, rules::LITERAL_LOCK_RANK).1, 0, "{ok:?}");
        let bad = run("crates/her-serve/src/bad.rs", "literal_lock_rank/violation.rs");
        let (total, unwaived) = rule_hits(&bad, rules::LITERAL_LOCK_RANK);
        // Plain + fully-qualified constructions unwaived; one waived site.
        assert!(unwaived >= 2, "{bad:?}");
        assert!(total > unwaived, "the waived site must be detected but waived");
        // The central table itself constructs ranks freely.
        let table = run("crates/her-sync/src/lib.rs", "literal_lock_rank/violation.rs");
        assert_eq!(rule_hits(&table, rules::LITERAL_LOCK_RANK).0, 0);
    }

    #[test]
    fn unguarded_span_fixtures() {
        let ok = run("crates/her-serve/src/ok.rs", "unguarded_span/ok.rs");
        assert_eq!(rule_hits(&ok, rules::UNGUARDED_SPAN).1, 0, "{ok:?}");
        let bad = run("crates/her-serve/src/bad.rs", "unguarded_span/violation.rs");
        let (total, unwaived) = rule_hits(&bad, rules::UNGUARDED_SPAN);
        // Bare statement + `let _ =` unwaived; one waived zero-width site.
        assert!(unwaived >= 2, "{bad:?}");
        assert!(total > unwaived, "the waived site must be detected but waived");
        // The tracer's own crate constructs spans freely.
        let obs = run("crates/her-obs/src/trace.rs", "unguarded_span/violation.rs");
        assert_eq!(rule_hits(&obs, rules::UNGUARDED_SPAN).0, 0);
    }

    #[test]
    fn raw_fs_write_fixtures() {
        let ok = run("crates/her-store/src/ok.rs", "raw_fs_write/ok.rs");
        assert_eq!(rule_hits(&ok, rules::RAW_FS_WRITE).1, 0, "{ok:?}");
        let bad = run("crates/her-store/src/bad.rs", "raw_fs_write/violation.rs");
        let (total, unwaived) = rule_hits(&bad, rules::RAW_FS_WRITE);
        // fs::write ×2, fs::rename, File::create, OpenOptions::new unwaived.
        assert!(unwaived >= 4, "{bad:?}");
        assert!(total > unwaived, "the waived site must be detected but waived");
        let msgs: Vec<_> = bad
            .iter()
            .filter(|f| f.rule == rules::RAW_FS_WRITE && !f.waived)
            .map(|f| f.message.as_str())
            .collect();
        assert!(msgs.iter().any(|m| m.contains("std::fs::write")));
        assert!(msgs.iter().any(|m| m.contains("std::fs::rename")));
        assert!(msgs.iter().any(|m| m.contains("File::create")));
        assert!(msgs.iter().any(|m| m.contains("OpenOptions::new")));
        // Same violations in her-serve are in scope too...
        let serve = run("crates/her-serve/src/bad.rs", "raw_fs_write/violation.rs");
        assert!(rule_hits(&serve, rules::RAW_FS_WRITE).1 >= 4, "{serve:?}");
        // ...but outside the durability crates the rule stays silent.
        let elsewhere = run("crates/her-cli/src/bad.rs", "raw_fs_write/violation.rs");
        assert_eq!(rule_hits(&elsewhere, rules::RAW_FS_WRITE).0, 0);
    }

    /// Runs the interprocedural passes over fixture files mounted at
    /// virtual workspace paths, with both waiver layers applied — the
    /// same pipeline `check_workspace` uses.
    fn run_ws(files: &[(&str, &str)], strict: bool) -> (Vec<Finding>, Vec<Edge>) {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, rel)| ((*p).to_string(), fixture(rel)))
            .collect();
        let (mut findings, edges) = workspace_passes(&sources, strict);
        apply_span_waivers(&sources, &mut findings);
        (findings, edges)
    }

    #[test]
    fn static_lock_order_fixtures() {
        let (ok, edges) = run_ws(
            &[("crates/her-serve/src/lock_ok.rs", "lock_order/ok.rs")],
            false,
        );
        assert_eq!(rule_hits(&ok, rules::STATIC_LOCK_INVERSION).0, 0, "{ok:?}");
        assert_eq!(rule_hits(&ok, rules::STATIC_LOCK_CYCLE).0, 0, "{ok:?}");
        // The legal direction shows up as an increasing edge.
        assert!(
            edges.iter().any(|e| e.src == 3 && e.dst == 7),
            "{edges:?}"
        );

        let (bad, edges) = run_ws(
            &[("crates/her-serve/src/lock_bad.rs", "lock_order/violation.rs")],
            false,
        );
        let (total, unwaived) = rule_hits(&bad, rules::STATIC_LOCK_INVERSION);
        assert!(unwaived >= 1, "{bad:?}");
        assert!(total > unwaived, "the waived site must be detected but waived");
        // The release-only (cfg(not(debug_assertions))) path is the
        // seeded regression: its 7 -> 3 edge arrives via the reap() call
        // and must be reported even though no debug/test run executes it.
        assert!(
            bad.iter().any(|f| f.rule == rules::STATIC_LOCK_INVERSION
                && !f.waived
                && f.line == 50),
            "release-only inversion not caught: {bad:?}"
        );
        assert!(edges.iter().any(|e| e.src == 7 && e.dst == 3), "{edges:?}");
        // And the 3 -> 7 -> 3 cycle it closes is its own finding.
        assert!(rule_hits(&bad, rules::STATIC_LOCK_CYCLE).1 >= 1, "{bad:?}");
    }

    #[test]
    fn budget_threading_fixtures() {
        let (ok, _) = run_ws(
            &[("crates/her-serve/src/budget_ok.rs", "budget/ok.rs")],
            false,
        );
        assert_eq!(rule_hits(&ok, rules::BUDGET_NOT_THREADED).0, 0, "{ok:?}");

        let (bad, _) = run_ws(
            &[("crates/her-serve/src/budget_bad.rs", "budget/violation.rs")],
            false,
        );
        let (total, unwaived) = rule_hits(&bad, rules::BUDGET_NOT_THREADED);
        assert_eq!(unwaived, 2, "{bad:?}");
        assert!(total > unwaived, "the waived warmup must be detected but waived");

        // The pass is scoped to the serving crate: the same source
        // elsewhere is not a handler path.
        let (elsewhere, _) = run_ws(
            &[("crates/her-cli/src/budget_bad.rs", "budget/violation.rs")],
            false,
        );
        assert_eq!(rule_hits(&elsewhere, rules::BUDGET_NOT_THREADED).0, 0);
    }

    #[test]
    fn span_waiver_fixtures() {
        let (f, _) = run_ws(
            &[("crates/her-serve/src/spans.rs", "span_waiver/serve_spans.rs")],
            false,
        );
        let of_rule: Vec<_> = f
            .iter()
            .filter(|f| f.rule == rules::BUDGET_NOT_THREADED)
            .collect();
        // All four call sites are detected…
        assert_eq!(of_rule.len(), 4, "{of_rule:?}");
        // …the fn-header waiver covers its body, the mod-header waiver
        // covers the nested fn, and the two others stay unwaived (one
        // plain, one under a NON-adjacent comment).
        let unwaived: Vec<u32> = of_rule
            .iter()
            .filter(|f| !f.waived)
            .map(|f| f.line)
            .collect();
        assert_eq!(unwaived, vec![19, 35], "{of_rule:?}");
    }

    #[test]
    fn call_graph_precision_fixtures() {
        // Trait objects: the held-across-dispatch edge is absent (the
        // pass under-approximates unknown callees as acquiring nothing).
        let files = [("crates/her-serve/src/hooks.rs", "precision/trait_object.rs")];
        let (f, edges) = run_ws(&files, false);
        assert_eq!(rule_hits(&f, rules::STATIC_LOCK_INVERSION).0, 0, "{f:?}");
        assert!(
            !edges.iter().any(|e| e.src == 3 && e.dst == 7),
            "dyn dispatch must not produce an edge: {edges:?}"
        );
        // …but --strict names the blind spot.
        let (strict, _) = run_ws(&files, true);
        assert!(
            strict.iter().any(|f| f.rule == rules::UNRESOLVED_CALLEE
                && !f.waived
                && f.message.contains("fire")),
            "{strict:?}"
        );

        // Cross-crate ambiguity: two crates define `shared_helper`, so
        // the call resolves to neither and the possible 3 -> 7 edge is
        // absent; --strict flags the site.
        let files = [
            ("crates/a/src/caller.rs", "precision/cross_crate_caller.rs"),
            ("crates/b/src/lib.rs", "precision/cross_crate_impl_b.rs"),
            ("crates/c/src/lib.rs", "precision/cross_crate_impl_c.rs"),
        ];
        let (f, edges) = run_ws(&files, false);
        assert_eq!(rule_hits(&f, rules::STATIC_LOCK_INVERSION).0, 0, "{f:?}");
        assert!(
            !edges.iter().any(|e| e.src == 3 && e.dst == 7),
            "ambiguous callee must not produce an edge: {edges:?}"
        );
        let (strict, _) = run_ws(&files, true);
        assert!(
            strict.iter().any(|f| f.rule == rules::UNRESOLVED_CALLEE
                && !f.waived
                && f.message.contains("shared_helper")),
            "{strict:?}"
        );
    }

    #[test]
    fn sarif_output_is_wellformed() {
        let (bad, _) = run_ws(
            &[("crates/her-serve/src/budget_bad.rs", "budget/violation.rs")],
            false,
        );
        let sarif = report::render_sarif(&bad);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("her::budget_not_threaded"));
        // Waived findings ride along as suppressed results.
        assert!(sarif.contains("\"suppressions\""));
        // Rough structural sanity: one result object per finding.
        assert_eq!(sarif.matches("\"ruleId\"").count(), bad.len());
    }

    /// The real workspace's static lock graph obeys the rank order: every
    /// production edge strictly increases, so the graph is acyclic — the
    /// static counterpart of the dynamic tracker's guarantee.
    #[test]
    fn real_lock_graph_is_ranked_and_acyclic() {
        let root = find_root();
        let (_, _, edges) = check_workspace_full(&root, false);
        assert!(!edges.is_empty(), "expected a non-empty lock graph");
        for e in edges.iter().filter(|e| !e.test_only) {
            assert!(
                e.src < e.dst,
                "non-increasing acquisition edge {} -> {} at {}:{}",
                e.src,
                e.dst,
                e.path,
                e.line
            );
        }
    }

    /// The linter runs clean on the real workspace — the same invariant
    /// the CI `lint` job gates on.
    #[test]
    fn real_workspace_is_clean() {
        let root = find_root();
        let (findings, files) = check_workspace(&root);
        assert!(files > 50, "workspace walk found only {files} files");
        let unwaived: Vec<_> = findings.iter().filter(|f| !f.waived).collect();
        assert!(
            unwaived.is_empty(),
            "unwaived findings:\n{}",
            report::render_text(&findings, files)
        );
    }
}
