//! CLI: `cargo run -p her-analysis -- <command>`.
//!
//! Commands:
//!
//! - `check [--json | --format sarif|json|text] [--strict]
//!   [--max-wall-secs N]` — lint the workspace (per-file rules + the
//!   interprocedural lock-order and budget passes). `--strict` also
//!   reports unresolved first-party calls made while holding locks.
//!   `--max-wall-secs` makes the analyzer's own latency a gated budget.
//! - `graph --dot` — emit the static rank-acquisition digraph as DOT.
//! - `check-edges <dump>` — assert a `HER_SYNC_EDGE_LOG` dump (dynamic
//!   tracker observations) is a subset of the static graph.
//! - `list` — rule ids.
//!
//! Exit codes: 0 clean (waived findings allowed), 1 unwaived findings /
//! subset violation / budget blown, 2 usage error. Machine output
//! (`--json`, `--format sarif`, `--dot`) goes to stdout; the human
//! report always goes to stderr so CI logs stay readable either way.

use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: cargo run -p her-analysis -- \
         check [--json | --format sarif|json|text] [--strict] [--max-wall-secs N]\n       \
         cargo run -p her-analysis -- graph --dot\n       \
         cargo run -p her-analysis -- check-edges <dump-file>\n       \
         cargo run -p her-analysis -- list"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format: Option<String> = None;
    let mut strict = false;
    let mut dot = false;
    let mut max_wall_secs: Option<u64> = None;
    let mut cmd: Option<&str> = None;
    let mut operand: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => format = Some("json".into()),
            "--format" => match it.next() {
                Some(f) if ["sarif", "json", "text"].contains(&f.as_str()) => {
                    format = Some(f.clone());
                }
                _ => return usage(),
            },
            "--strict" => strict = true,
            "--dot" => dot = true,
            "--max-wall-secs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => max_wall_secs = Some(n),
                None => return usage(),
            },
            "check" | "list" | "graph" | "check-edges" => cmd = Some(a.as_str()),
            other if cmd == Some("check-edges") && operand.is_none() => {
                operand = Some(other.to_string());
            }
            other => {
                eprintln!("her-analysis: unknown argument `{other}`");
                return usage();
            }
        }
    }
    match cmd {
        Some("list") => {
            for r in her_analysis::rules::ALL_RULES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let started = Instant::now();
            let root = her_analysis::find_root();
            let (findings, files, _) = her_analysis::check_workspace_full(&root, strict);
            match format.as_deref() {
                Some("json") => println!("{}", her_analysis::report::render_json(&findings)),
                Some("sarif") => println!("{}", her_analysis::report::render_sarif(&findings)),
                _ => {}
            }
            eprint!("{}", her_analysis::report::render_text(&findings, files));
            let elapsed = started.elapsed();
            if let Some(budget) = max_wall_secs {
                eprintln!(
                    "her-analysis: wall clock {:.2}s (budget {budget}s)",
                    elapsed.as_secs_f64()
                );
                if elapsed.as_secs() >= budget {
                    eprintln!("her-analysis: analyzer wall-clock budget exceeded");
                    return ExitCode::FAILURE;
                }
            }
            if findings.iter().any(|f| !f.waived) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Some("graph") => {
            if !dot {
                return usage();
            }
            let root = her_analysis::find_root();
            let (_, _, edges) = her_analysis::check_workspace_full(&root, false);
            print!("{}", her_analysis::lockgraph::render_dot(&edges));
            ExitCode::SUCCESS
        }
        Some("check-edges") => {
            let Some(path) = operand else { return usage() };
            let dump = match std::fs::read_to_string(&path) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("her-analysis: cannot read `{path}`: {e}");
                    return ExitCode::from(2);
                }
            };
            let root = her_analysis::find_root();
            let (_, _, edges) = her_analysis::check_workspace_full(&root, false);
            let missing = her_analysis::lockgraph::check_dynamic_subset(&dump, &edges);
            let observed = dump.lines().filter(|l| !l.trim().is_empty()).count();
            if missing.is_empty() {
                eprintln!(
                    "her-analysis: {observed} observed acquisition edge(s), all in the \
                     static graph ({} static edge(s))",
                    edges.len()
                );
                ExitCode::SUCCESS
            } else {
                for (h, a) in &missing {
                    eprintln!(
                        "her-analysis: dynamic edge `{h} -> {a}` is MISSING from the \
                         static lock graph"
                    );
                }
                eprintln!(
                    "her-analysis: {} dynamically observed edge(s) not in the static \
                     graph — the analyzer under-approximates; close the resolution gap \
                     or file the edge",
                    missing.len()
                );
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
