//! CLI: `cargo run -p her-analysis -- check [--json]`.
//!
//! Exit codes: 0 clean (waived findings allowed), 1 unwaived findings,
//! 2 usage error. `--json` emits the machine-readable report on stdout;
//! the human report always goes to stderr so CI logs stay readable
//! either way.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut cmd = None;
    for a in &args {
        match a.as_str() {
            "--json" => json = true,
            "check" | "list" => cmd = Some(a.as_str()),
            other => {
                eprintln!("her-analysis: unknown argument `{other}`");
                eprintln!("usage: cargo run -p her-analysis -- check [--json]");
                return ExitCode::from(2);
            }
        }
    }
    match cmd {
        Some("list") => {
            for r in her_analysis::rules::ALL_RULES {
                println!("{r}");
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = her_analysis::find_root();
            let (findings, files) = her_analysis::check_workspace(&root);
            if json {
                println!("{}", her_analysis::report::render_json(&findings));
            }
            eprint!("{}", her_analysis::report::render_text(&findings, files));
            if findings.iter().any(|f| !f.waived) {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => {
            eprintln!("usage: cargo run -p her-analysis -- check [--json]");
            ExitCode::from(2)
        }
    }
}
