//! Report rendering: a human summary for terminals and a line-oriented
//! JSON array for machines (CI annotations, dashboards). JSON is emitted
//! by hand — the crate is dependency-free on purpose.

use crate::rules::Finding;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The machine-readable report: a JSON array of findings, waived ones
/// included (consumers filter on `"waived"`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"waived\":{},\"message\":\"{}\"}}{}\n",
            f.rule,
            json_escape(&f.path),
            f.line,
            f.waived,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// The SARIF 2.1.0 report (static-analysis interchange: GitHub code
/// scanning, IDE ingestion). Waived findings are emitted with an
/// `inSource` suppression so downstream viewers show them as
/// intentionally accepted rather than dropping them.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \
         \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \
         \"name\": \"her-analysis\",\n          \
         \"rules\": [\n",
    );
    for (i, r) in crate::rules::ALL_RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\"}}{}\n",
            r,
            if i + 1 < crate::rules::ALL_RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let suppressions = if f.waived {
            ",\n          \"suppressions\": [{\"kind\": \"inSource\"}]"
        } else {
            ""
        };
        out.push_str(&format!(
            "        {{\n          \"ruleId\": \"{}\",\n          \
             \"level\": \"{}\",\n          \
             \"message\": {{\"text\": \"{}\"}},\n          \
             \"locations\": [{{\"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]{}\n        }}{}\n",
            f.rule,
            if f.waived { "note" } else { "error" },
            json_escape(&f.message),
            json_escape(&f.path),
            f.line.max(1),
            suppressions,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}");
    out
}

/// The human report: one `path:line: [rule] message` per finding,
/// unwaived first, then a summary line.
pub fn render_text(findings: &[Finding], files_checked: usize) -> String {
    let mut out = String::new();
    let (unwaived, waived): (Vec<_>, Vec<_>) = findings.iter().partition(|f| !f.waived);
    for f in &unwaived {
        out.push_str(&format!("{}:{}: [{}] {}\n", f.path, f.line, f.rule, f.message));
    }
    for f in &waived {
        out.push_str(&format!(
            "{}:{}: [{}] waived: {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "her-analysis: {} files checked, {} finding(s) ({} waived)\n",
        files_checked,
        findings.len(),
        waived.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(rule: &'static str, waived: bool) -> Finding {
        Finding {
            rule,
            path: "a/b.rs".into(),
            line: 3,
            message: "msg with \"quotes\"".into(),
            waived,
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let j = render_json(&[f("her::raw_sync_lock", false), f("her::panicking_decode", true)]);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\"waived\":true"));
        assert_eq!(j.matches("\"rule\"").count(), 2);
    }

    #[test]
    fn text_report_counts_waivers() {
        let t = render_text(&[f("her::raw_sync_lock", false), f("her::raw_sync_lock", true)], 7);
        assert!(t.contains("7 files checked, 2 finding(s) (1 waived)"));
        assert!(t.contains("waived: msg"));
    }
}
