//! The static lock-order pass: per-function lock summaries (which
//! `her_sync::rank` constants a function acquires, directly and through
//! calls), the global rank-acquisition digraph, and the two rules
//! derived from it — `her::static_lock_inversion` (an acquire while
//! holding an equal-or-higher rank) and `her::static_lock_cycle` (a
//! cycle anywhere in the digraph).
//!
//! The pass joins source against `her_sync::rank::ALL` (the
//! machine-readable rank table), so the analyzer and the runtime tracker
//! share one source of truth. Unlike the tracker, it sees **every**
//! configuration at once: `cfg`-gated and release-only code is analyzed
//! unconditionally (attributes are deliberately not interpreted), which
//! is exactly the gap the dynamic tracker cannot cover.
//!
//! Soundness stance (see DESIGN.md §4g for the full table): unknown
//! callees acquire nothing, so the graph under-approximates at
//! trait-object and third-party calls (`--strict` surfaces those sites);
//! it over-approximates by merging all branches and by keeping
//! let-bound guards alive to end of block. The CI consistency drill
//! (`check-edges`) asserts the dynamically observed edge set is a
//! subset of this graph.

use crate::callgraph::{self, FieldKind, FnId, Workspace};
use crate::ir::{match_bracket, FnIr};
use crate::lexer::{Tok, TokKind};
use crate::rules::{Finding, STATIC_LOCK_CYCLE, STATIC_LOCK_INVERSION, UNRESOLVED_CALLEE};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One observed (or derivable) rank-acquisition edge: `dst` was acquired
/// while `src` was held, at `path:line` inside `via`.
#[derive(Clone, Debug)]
pub struct Edge {
    pub src: u32,
    pub dst: u32,
    pub path: String,
    pub line: u32,
    pub via: String,
    /// Edge only reachable from test code — kept for the dynamic-subset
    /// check, excluded from lint rules and the DOT graph.
    pub test_only: bool,
}

/// Rank lookup tables joined from `her_sync::rank::ALL` plus
/// construction-site scans over the analyzed files.
pub struct Tables {
    /// Const ident (`SERVE_STREAM`) → order.
    pub by_const: HashMap<String, u32>,
    /// Order → display name (`serve.stream`).
    pub name_of: BTreeMap<u32, String>,
    /// Lock payload type name (`StreamSession`) → order.
    pub payload_rank: HashMap<String, u32>,
    /// Field name at a `Mutex::new(rank::…)` construction site → order.
    pub field_rank: HashMap<String, u32>,
    /// Lowercased payload names for the last-resort receiver-name
    /// affinity fallback.
    affinity: Vec<(String, u32)>,
}

/// Display name for a rank order, falling back to the number.
pub fn rank_name(tables: &Tables, order: u32) -> String {
    tables
        .name_of
        .get(&order)
        .cloned()
        .unwrap_or_else(|| format!("rank#{order}"))
}

/// Idents skipped when scanning back from a lock construction to the
/// field (or binding) it initializes.
const WRAP_IDENTS: &[&str] = &[
    "new", "Arc", "Box", "Rc", "std", "sync", "her_sync", "Mutex", "RwLock", "Some", "Ok",
];

impl Tables {
    pub fn build(ws: &Workspace) -> Self {
        let mut t = Tables {
            by_const: HashMap::new(),
            name_of: BTreeMap::new(),
            payload_rank: HashMap::new(),
            field_rank: HashMap::new(),
            affinity: Vec::new(),
        };
        for (ident, rank) in her_sync::rank::ALL {
            t.by_const.insert((*ident).to_string(), rank.order);
            t.name_of.insert(rank.order, rank.name.to_string());
        }
        let mut payload_amb: BTreeSet<String> = BTreeSet::new();
        let mut field_amb: BTreeSet<String> = BTreeSet::new();
        for file in &ws.files {
            if skip_file(&file.path) {
                continue;
            }
            let toks = &file.toks;
            for i in 0..toks.len() {
                let Some(order) = construction_at(&t, toks, i) else {
                    continue;
                };
                // Payload: first type ident after the `rank::CONST ,`.
                if let Some(p) = construction_payload(toks, i) {
                    match t.payload_rank.get(&p) {
                        Some(&o) if o != order => {
                            payload_amb.insert(p);
                        }
                        _ => {
                            t.payload_rank.insert(p, order);
                        }
                    }
                }
                // Field / binding: scan back over wrapper tokens.
                if let Some(f) = construction_target(toks, i) {
                    match t.field_rank.get(&f) {
                        Some(&o) if o != order => {
                            field_amb.insert(f);
                        }
                        _ => {
                            t.field_rank.insert(f, order);
                        }
                    }
                }
            }
        }
        for p in payload_amb {
            t.payload_rank.remove(&p);
        }
        for f in field_amb {
            t.field_rank.remove(&f);
        }
        t.affinity = t
            .payload_rank
            .iter()
            .map(|(p, &o)| (p.to_lowercase(), o))
            .collect();
        t
    }

    /// Receiver-name affinity: `session.lock()` resolves to the unique
    /// payload type whose lowercased name contains the receiver name.
    /// Requires ≥ 4 chars so one-letter closure params never match.
    fn affinity_rank(&self, recv: &str) -> Option<u32> {
        if recv.len() < 4 {
            return None;
        }
        let lc = recv.to_lowercase();
        let hits: Vec<u32> = self
            .affinity
            .iter()
            .filter(|(p, _)| p.contains(&lc))
            .map(|(_, o)| *o)
            .collect();
        match hits.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

/// `her-sync` is the facade's own implementation — its internals are
/// exempt from the pass (ranks are constructed and tested there freely).
pub fn skip_file(path: &str) -> bool {
    path.starts_with("crates/her-sync/")
}

/// `Mutex::new(rank::CONST` / `RwLock::new(rank::CONST` at `i` (the
/// `Mutex`/`RwLock` token) → the rank's order.
fn construction_at(t: &Tables, toks: &[Tok], i: usize) -> Option<u32> {
    let lock = &toks[i];
    if lock.kind != TokKind::Ident || (lock.text != "Mutex" && lock.text != "RwLock") {
        return None;
    }
    let texts: Vec<&str> = toks[i + 1..(i + 9).min(toks.len())]
        .iter()
        .map(|t| t.text.as_str())
        .collect();
    if texts.len() < 7
        || texts[0] != ":"
        || texts[1] != ":"
        || texts[2] != "new"
        || texts[3] != "("
        || texts[4] != "rank"
        || texts[5] != ":"
        || texts[6] != ":"
    {
        return None;
    }
    texts.get(7).and_then(|c| t.by_const.get(*c)).copied()
}

/// The payload type of a construction at `i`: the first type ident after
/// the rank argument's comma, if it is immediately constructed
/// (`Cell {`, `Table::default()`, `BTreeMap::new()`).
fn construction_payload(toks: &[Tok], i: usize) -> Option<String> {
    // i + 8 is the rank const; i + 9 should be `,`.
    let p = toks.get(i + 10)?;
    if toks.get(i + 9).is_none_or(|c| c.text != ",") {
        return None;
    }
    if p.kind == TokKind::Ident && p.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    {
        let next = toks.get(i + 11).map(|t| t.text.as_str());
        if matches!(next, Some("{") | Some(":")) {
            return Some(p.text.clone());
        }
    }
    None
}

/// The field (`name:`) or let-binding a construction initializes,
/// reached by scanning back over wrapper tokens from `i`.
fn construction_target(toks: &[Tok], i: usize) -> Option<String> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        let skip = (t.kind == TokKind::Punct && (t.text == ":" || t.text == "("))
            || (t.kind == TokKind::Ident && WRAP_IDENTS.contains(&t.text.as_str()));
        if skip {
            continue;
        }
        if t.kind == TokKind::Ident {
            // `field:` — the token after must be a single `:`.
            let single_colon = toks.get(j + 1).is_some_and(|c| c.text == ":")
                && toks.get(j + 2).is_none_or(|c| c.text != ":");
            if single_colon {
                return Some(t.text.clone());
            }
        }
        if t.text == "=" {
            // `let [mut] name = …`
            let mut k = j;
            while k > 0 && toks[k - 1].text == "mut" {
                k -= 1;
            }
            if k >= 1 && toks[k - 1].kind == TokKind::Ident && k >= 2 && toks[k - 2].text == "let"
            {
                return Some(toks[k - 1].text.clone());
            }
        }
        return None;
    }
    None
}

// ---------------------------------------------------------------------
// Per-function summaries
// ---------------------------------------------------------------------

/// What one function does with locks, from its body plus converged
/// callee summaries.
#[derive(Clone, Default, PartialEq)]
pub struct Summary {
    /// Ranks acquired, directly or transitively.
    pub effects: BTreeSet<u32>,
    /// Param indices whose lock (of caller-determined rank) is acquired.
    pub param_acquires: BTreeSet<usize>,
    /// Ranks held at any invocation of a callable parameter.
    pub callable_holds: BTreeSet<u32>,
    /// Signature returns a guard type.
    pub ret_guard: bool,
    /// Signature returns a lock object of this rank (callers' bindings
    /// become lock aliases).
    pub returns_lock: Option<u32>,
    /// Principal type of the return value, for chained method calls.
    pub ret_principal: Option<String>,
}

/// Where a guard-returning helper's guard comes from.
#[derive(Clone, Copy, Debug)]
enum GuardSrc {
    Rank(u32),
    Param(usize),
}

impl Summary {
    fn guard_src(&self) -> Option<GuardSrc> {
        if !self.ret_guard {
            return None;
        }
        if self.effects.len() == 1 {
            return self.effects.first().copied().map(GuardSrc::Rank);
        }
        if self.effects.is_empty() && self.param_acquires.len() == 1 {
            return self.param_acquires.first().copied().map(GuardSrc::Param);
        }
        None
    }
}

/// The pass result over a set of files.
pub struct LockAnalysis {
    pub edges: Vec<Edge>,
    pub findings: Vec<Finding>,
}

/// Converged per-function summaries (exposed for introspection/tests).
pub fn debug_summaries(ws: &Workspace) -> (Vec<Summary>, Tables) {
    let tables = Tables::build(ws);
    let sums = fixpoint(ws, &tables);
    (sums, tables)
}

/// Runs the pass: summaries to fixpoint, then an edge-emitting final
/// scan, then the digraph rules.
pub fn run(ws: &Workspace, strict: bool) -> LockAnalysis {
    let tables = Tables::build(ws);
    let sums = fixpoint(ws, &tables);
    // Final pass: edges and (optionally) strict findings.
    let mut edges: Vec<Edge> = Vec::new();
    let mut findings: Vec<Finding> = Vec::new();
    for id in 0..ws.fns.len() {
        if skip_file(&ws.file_of(id).path) {
            continue;
        }
        let out = scan_fn(ws, &tables, &sums, id, true, strict);
        edges.extend(out.edges);
        findings.extend(out.strict_findings);
    }
    // Inversions are per-SITE (a waiver on one site must not hide
    // another); the cycle rule and the exported graph use the deduped
    // edge set.
    findings.extend(inversion_findings(&tables, &edges));
    let edges = dedup_edges(edges);
    findings.extend(cycle_findings(&tables, &edges));
    LockAnalysis { edges, findings }
}

fn fixpoint(ws: &Workspace, tables: &Tables) -> Vec<Summary> {
    let mut sums: Vec<Summary> = (0..ws.fns.len()).map(|_| Summary::default()).collect();
    // Signature-derived facts are fixed up-front.
    for (id, s) in sums.iter_mut().enumerate() {
        let f = ws.fn_ir(id);
        let file = ws.file_of(id);
        if let Some(ret) = f.ret {
            let texts = || file.toks[ret.0..ret.1.min(file.toks.len())]
                .iter()
                .map(|t| t.text.as_str());
            s.ret_guard = callgraph::is_guard_type(texts());
            if let Some(payload) = callgraph::lock_payload(texts()) {
                s.returns_lock = payload.and_then(|p| tables.payload_rank.get(&p)).copied();
            }
            s.ret_principal = texts()
                .rfind(|t| {
                    t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                        && !["Arc", "Rc", "Box", "Option", "Result", "Vec"].contains(t)
                })
                .map(|t| t.to_string());
        }
    }
    // Fixpoint on effects / param_acquires / callable_holds.
    for _round in 0..64 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if skip_file(&ws.file_of(id).path) {
                continue;
            }
            let mut out = scan_fn(ws, tables, &sums, id, false, false);
            let s = &mut sums[id];
            out.effects.extend(s.effects.iter());
            out.param_acquires.extend(s.param_acquires.iter());
            out.callable_holds.extend(s.callable_holds.iter());
            if out.effects != s.effects
                || out.param_acquires != s.param_acquires
                || out.callable_holds != s.callable_holds
            {
                s.effects = out.effects;
                s.param_acquires = out.param_acquires;
                s.callable_holds = out.callable_holds;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    sums
}

/// Keeps one edge per `(src, dst)`, preferring a non-test witness.
fn dedup_edges(raw: Vec<Edge>) -> Vec<Edge> {
    let mut best: BTreeMap<(u32, u32), Edge> = BTreeMap::new();
    for e in raw {
        match best.get(&(e.src, e.dst)) {
            Some(prev) if !prev.test_only || e.test_only => {}
            _ => {
                best.insert((e.src, e.dst), e);
            }
        }
    }
    best.into_values().collect()
}

/// Per-site inversion findings over the non-test raw edges.
fn inversion_findings(tables: &Tables, edges: &[Edge]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, u32, u32, u32)> = BTreeSet::new();
    for e in edges.iter().filter(|e| !e.test_only) {
        if e.dst <= e.src && seen.insert((e.path.clone(), e.line, e.src, e.dst)) {
            out.push(Finding {
                rule: STATIC_LOCK_INVERSION,
                path: e.path.clone(),
                line: e.line,
                message: format!(
                    "`{}` acquires `{}` (rank {}) while `{}` (rank {}) is held — \
                     ranks must strictly increase on every path, including \
                     cfg-gated and release-only ones",
                    e.via,
                    rank_name(tables, e.dst),
                    e.dst,
                    rank_name(tables, e.src),
                    e.src
                ),
                waived: false,
            });
        }
    }
    out
}

/// Cycle findings over the deduped non-test edges.
fn cycle_findings(tables: &Tables, edges: &[Edge]) -> Vec<Finding> {
    let mut out = Vec::new();
    let prod: Vec<&Edge> = edges.iter().filter(|e| !e.test_only).collect();
    // Cycles: DFS over the rank digraph. Every cycle necessarily
    // contains a non-increasing edge, but the cycle finding names the
    // whole loop — the global view an edge-local message can't give.
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for e in &prod {
        adj.entry(e.src).or_default().push(e.dst);
    }
    let mut reported: BTreeSet<Vec<u32>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path = Vec::new();
        dfs_cycles(&adj, start, &mut path, &mut reported);
    }
    for cycle in reported {
        let names: Vec<String> = cycle
            .iter()
            .chain(cycle.first())
            .map(|&o| rank_name(tables, o))
            .collect();
        let witness = prod
            .iter()
            .find(|e| e.src == cycle[cycle.len() - 1] && e.dst == cycle[0])
            .or(prod.first());
        if let Some(w) = witness {
            out.push(Finding {
                rule: STATIC_LOCK_CYCLE,
                path: w.path.clone(),
                line: w.line,
                message: format!(
                    "rank digraph cycle: {} — two threads interleaving this loop \
                     can deadlock",
                    names.join(" -> ")
                ),
                waived: false,
            });
        }
    }
    out
}

fn dfs_cycles(
    adj: &BTreeMap<u32, Vec<u32>>,
    node: u32,
    path: &mut Vec<u32>,
    reported: &mut BTreeSet<Vec<u32>>,
) {
    path.push(node);
    if let Some(next) = adj.get(&node) {
        for &n in next {
            if let Some(pos) = path.iter().position(|&p| p == n) {
                // Canonicalize: rotate so the smallest rank leads.
                let mut cycle: Vec<u32> = path[pos..].to_vec();
                if let Some(min_at) = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &v)| v)
                    .map(|(i, _)| i)
                {
                    cycle.rotate_left(min_at);
                }
                reported.insert(cycle);
            } else if path.len() < 32 {
                dfs_cycles(adj, n, path, reported);
            }
        }
    }
    path.pop();
}

// ---------------------------------------------------------------------
// The body scanner
// ---------------------------------------------------------------------

/// What a local name means during a scan.
#[derive(Clone, Debug)]
enum Alias {
    /// A lock object of known rank (`let h = self.session_handle(..)`).
    LockVal(u32),
    /// A lock parameter with caller-determined rank.
    ParamLock(usize),
    /// A plain value of a known first-party type.
    Type(String),
    /// Known-unresolvable (closure params shadowing outer names).
    Opaque,
}

/// A resolved receiver/initializer expression.
enum Value {
    LockObj(u32),
    ParamLock(usize),
    Guard,
    TypeObj(String),
    Unknown,
}

/// An active held-lock region.
#[derive(Clone, Debug)]
enum Region {
    /// Let-bound guard: lives to end of its block or `drop(name)`.
    Bound { name: String, depth: u32, rank: u32 },
    /// Statement temporary (incl. if-let scrutinees, which live through
    /// the whole if/else).
    TempStmt { depth: u32, rank: u32 },
    /// Plain `if`/`while` condition temporary: dies when the body opens.
    TempCond { depth: u32, rank: u32 },
}

impl Region {
    fn rank(&self) -> u32 {
        match self {
            Region::Bound { rank, .. }
            | Region::TempStmt { rank, .. }
            | Region::TempCond { rank, .. } => *rank,
        }
    }
}

/// Guard-preserving chain methods: `.lock().unwrap_or_else(..)` still
/// yields the guard; `.lock().pop()` does not.
const PRESERVE: &[&str] = &["unwrap", "expect", "unwrap_or_else", "unwrap_or", "ok", "map_err"];

/// Method names so common on std types that a workspace fn sharing the
/// name says nothing — `--strict` skips them (a first-party method named
/// `len` called on an unknown receiver is overwhelmingly std's).
const STD_NOISE: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "insert", "remove",
    "push", "pop", "iter", "iter_mut", "into_iter", "collect", "contains", "contains_key",
    "entry", "extend", "clear", "expect", "unwrap", "unwrap_or", "unwrap_or_else", "map",
    "and_then", "or_else", "take", "replace", "as_ref", "as_mut", "to_vec", "to_string",
    "sort", "retain", "drain", "split", "join", "next", "min", "max", "abs", "rem",
];

struct Scan<'w> {
    ws: &'w Workspace,
    tables: &'w Tables,
    sums: &'w [Summary],
    file: usize,
    fn_id: FnId,
    phase_b: bool,
    strict: bool,
    effects: BTreeSet<u32>,
    param_acquires: BTreeSet<usize>,
    callable_holds: BTreeSet<u32>,
    edges: Vec<Edge>,
    strict_findings: Vec<Finding>,
}

struct ScanOut {
    effects: BTreeSet<u32>,
    param_acquires: BTreeSet<usize>,
    callable_holds: BTreeSet<u32>,
    edges: Vec<Edge>,
    strict_findings: Vec<Finding>,
}

fn scan_fn(
    ws: &Workspace,
    tables: &Tables,
    sums: &[Summary],
    id: FnId,
    phase_b: bool,
    strict: bool,
) -> ScanOut {
    let f = ws.fn_ir(id);
    let file_idx = ws.fns[id].file;
    let file = ws.file_of(id);
    let mut aliases: HashMap<String, Alias> = HashMap::new();
    for (pi, p) in f.params.iter().enumerate() {
        if p.name.is_empty() {
            continue;
        }
        let texts = || file.toks[p.ty.0.min(file.toks.len())..p.ty.1.min(file.toks.len())]
            .iter()
            .map(|t| t.text.as_str());
        if callgraph::is_guard_type(texts()) {
            aliases.insert(p.name.clone(), Alias::Opaque);
        } else if let Some(payload) = callgraph::lock_payload(texts()) {
            match payload.and_then(|pl| tables.payload_rank.get(&pl)).copied() {
                Some(r) => aliases.insert(p.name.clone(), Alias::LockVal(r)),
                None => aliases.insert(p.name.clone(), Alias::ParamLock(pi)),
            };
        } else if let Some(principal) = texts().rfind(|t| {
            t.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && !["Arc", "Rc", "Box", "Option", "Result", "Vec", "Fn", "FnMut", "FnOnce"]
                    .contains(t)
        }) {
            aliases.insert(p.name.clone(), Alias::Type(principal.to_string()));
        }
    }
    let mut s = Scan {
        ws,
        tables,
        sums,
        file: file_idx,
        fn_id: id,
        phase_b,
        strict,
        effects: BTreeSet::new(),
        param_acquires: BTreeSet::new(),
        callable_holds: BTreeSet::new(),
        edges: Vec::new(),
        strict_findings: Vec::new(),
    };
    let body = f.body;
    if body.1 > body.0 {
        s.scan_range(body.0 + 1, body.1, &mut aliases);
    }
    ScanOut {
        effects: s.effects,
        param_acquires: s.param_acquires,
        callable_holds: s.callable_holds,
        edges: s.edges,
        strict_findings: s.strict_findings,
    }
}

/// Statement shape at an acquisition site.
enum Shape {
    LetBound(String),
    CondLet,
    CondPlain,
    Other,
}

impl<'w> Scan<'w> {
    fn toks(&self) -> &'w [Tok] {
        &self.ws.files[self.file].toks
    }

    fn cur_fn(&self) -> &'w FnIr {
        self.ws.fn_ir(self.fn_id)
    }

    /// Scans `[start, end)`, mutating aliases as `let`s appear. `held`
    /// begins empty: a closure or fn body owns its own region stack
    /// (caller-held × inner-effect edges are produced at call sites from
    /// summaries instead).
    fn scan_range(&mut self, start: usize, end: usize, aliases: &mut HashMap<String, Alias>) {
        let toks = self.toks();
        let mut held: Vec<Region> = Vec::new();
        let mut depth: u32 = 0;
        let mut paren: i32 = 0;
        // (paren depth inside the call's arg list, callee callable_holds)
        let mut call_frames: Vec<(i32, BTreeSet<u32>)> = Vec::new();
        let mut i = start;
        while i < end {
            let t = &toks[i];
            match (t.kind, t.text.as_str()) {
                // Nested fn items: scanned as their own functions.
                (TokKind::Ident, "fn") => {
                    if let Some(close) = skip_nested_fn(toks, i) {
                        i = close + 1;
                        continue;
                    }
                }
                (TokKind::Punct, "{") => {
                    held.retain(|r| !matches!(r, Region::TempCond { depth: d, .. } if *d == depth));
                    depth += 1;
                }
                (TokKind::Punct, "}") => {
                    let next_is_else =
                        toks.get(i + 1).is_some_and(|n| n.text == "else");
                    held.retain(|r| match r {
                        Region::Bound { depth: d, .. } => *d < depth,
                        Region::TempStmt { depth: d, .. } => {
                            if depth <= *d {
                                false
                            } else {
                                depth != *d + 1 || next_is_else
                            }
                        }
                        Region::TempCond { depth: d, .. } => *d < depth,
                    });
                    depth = depth.saturating_sub(1);
                }
                (TokKind::Punct, ";") => {
                    held.retain(
                        |r| !matches!(r, Region::TempStmt { depth: d, .. } if *d >= depth),
                    );
                }
                (TokKind::Punct, "(") => paren += 1,
                (TokKind::Punct, ")") => {
                    paren -= 1;
                    while call_frames.last().is_some_and(|(p, _)| *p > paren) {
                        call_frames.pop();
                    }
                }
                (TokKind::Punct, "|") if closure_starts(toks, i) => {
                    if let Some((body_start, body_end, params)) = closure_extent(toks, i, end)
                    {
                        let mut inner = aliases.clone();
                        for p in params {
                            inner.insert(p, Alias::Opaque);
                        }
                        let before = self.effects.clone();
                        self.scan_range(body_start, body_end, &mut inner);
                        let cl_eff: BTreeSet<u32> =
                            self.effects.difference(&before).copied().collect();
                        // Even previously-seen ranks count as closure
                        // effects; recompute cheaply via a second pass
                        // only when needed (phase B edge precision).
                        let cl_eff = if self.phase_b {
                            self.closure_effects(body_start, body_end, aliases)
                        } else {
                            cl_eff
                        };
                        if self.phase_b {
                            for h in held_ranks(&held) {
                                for &e in &cl_eff {
                                    self.edge(h, e, toks[i].line);
                                }
                            }
                            if let Some((_, holds)) = call_frames.last() {
                                for &h in holds {
                                    for &e in &cl_eff {
                                        self.edge(h, e, toks[i].line);
                                    }
                                }
                            }
                        }
                        i = body_end;
                        continue;
                    }
                }
                (TokKind::Ident, "let") => {
                    self.bind_let_alias(i, end, aliases);
                }
                // Variant-pattern binding — `Enum::Variant(x) =>` in a
                // match arm or `… Enum::Variant(x) = …` in an if-let —
                // types `x` from the variant's payload (enums are indexed
                // as pseudo-structs).
                (TokKind::Ident, _)
                    if t.text.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                {
                    self.bind_variant_pattern(i, aliases);
                }
                (TokKind::Ident, "drop")
                    if toks.get(i + 1).is_some_and(|n| n.text == "(") =>
                {
                    if let (Some(name), Some(close)) =
                        (toks.get(i + 2), toks.get(i + 3))
                    {
                        if name.kind == TokKind::Ident && close.text == ")" {
                            if let Some(pos) = held.iter().rposition(
                                |r| matches!(r, Region::Bound { name: n, .. } if *n == name.text),
                            ) {
                                held.remove(pos);
                            }
                        }
                    }
                }
                (TokKind::Ident, _) if toks.get(i + 1).is_some_and(|n| n.text == "(") => {
                    self.handle_call(i, start, &mut held, aliases, depth, &mut call_frames, paren);
                }
                _ => {}
            }
            i += 1;
        }
    }

    /// Re-scans a closure body solely for its rank effects (no edges, no
    /// state): used in phase B where the difference trick under-counts.
    fn closure_effects(
        &mut self,
        start: usize,
        end: usize,
        aliases: &HashMap<String, Alias>,
    ) -> BTreeSet<u32> {
        let mut sub = Scan {
            ws: self.ws,
            tables: self.tables,
            sums: self.sums,
            file: self.file,
            fn_id: self.fn_id,
            phase_b: false,
            strict: false,
            effects: BTreeSet::new(),
            param_acquires: BTreeSet::new(),
            callable_holds: BTreeSet::new(),
            edges: Vec::new(),
            strict_findings: Vec::new(),
        };
        let mut inner = aliases.clone();
        sub.scan_range(start, end, &mut inner);
        self.callable_holds.extend(sub.callable_holds.iter());
        sub.effects
    }

    fn edge(&mut self, src: u32, dst: u32, line: u32) {
        let f = self.cur_fn();
        self.edges.push(Edge {
            src,
            dst,
            path: self.ws.files[self.file].path.clone(),
            line,
            via: f.name.clone(),
            test_only: f.is_test,
        });
    }

    /// Records an acquisition of `rank` at token `i`: effect, edges from
    /// every held region, and a new region shaped by the statement.
    fn acquire(
        &mut self,
        rank: u32,
        i: usize,
        stmt_start: usize,
        held: &mut Vec<Region>,
        depth: u32,
        after: usize,
    ) {
        self.effects.insert(rank);
        if self.phase_b {
            let line = self.toks()[i].line;
            for h in held_ranks(held) {
                self.edge(h, rank, line);
            }
        }
        let toks = self.toks();
        match stmt_shape(toks, stmt_start) {
            Shape::LetBound(name) if guard_kept(toks, after) => {
                held.push(Region::Bound { name, depth, rank });
            }
            Shape::CondPlain => held.push(Region::TempCond { depth, rank }),
            _ => held.push(Region::TempStmt { depth, rank }),
        }
    }

    /// A call site: `name (` at token `i`. Dispatches between primitive
    /// lock acquisition, resolved first-party calls, callable-parameter
    /// invocation, and (in strict mode) reportable unresolved calls.
    #[allow(clippy::too_many_arguments)]
    fn handle_call(
        &mut self,
        i: usize,
        range_start: usize,
        held: &mut Vec<Region>,
        aliases: &HashMap<String, Alias>,
        depth: u32,
        call_frames: &mut Vec<(i32, BTreeSet<u32>)>,
        paren: i32,
    ) {
        let toks = self.toks();
        let name = toks[i].text.as_str();
        let is_method = i > 0 && toks[i - 1].text == ".";
        let close = match_bracket(toks, i + 1, "(", ")");
        let stmt_start = stmt_start(toks, i, range_start);
        let zero_args = close == i + 2;

        // Primitive acquisition: `.lock()/.read()/.write()` on a lock.
        if is_method && zero_args && matches!(name, "lock" | "read" | "write") {
            match self.resolve_value(i.saturating_sub(2), aliases) {
                Value::LockObj(r) => {
                    self.acquire(r, i, stmt_start, held, depth, close + 1);
                    return;
                }
                Value::ParamLock(pi) => {
                    self.param_acquires.insert(pi);
                    return;
                }
                Value::TypeObj(_) => {} // fall through: helper method
                _ => {
                    // Name-affinity fallback for a bare-ident receiver.
                    if i >= 2
                        && toks[i - 2].kind == TokKind::Ident
                        && (i < 3 || toks[i - 3].text != ".")
                    {
                        if let Some(r) = self.tables.affinity_rank(&toks[i - 2].text) {
                            self.acquire(r, i, stmt_start, held, depth, close + 1);
                        }
                    }
                    return;
                }
            }
        }

        // Callable parameter invocation: `f(...)` where f is a param.
        if !is_method
            && (i == 0 || toks[i - 1].text != ":")
            && self.cur_fn().params.iter().any(|p| p.name == name)
        {
            self.callable_holds.extend(held_ranks(held));
            return;
        }

        // Resolve the callee.
        let callee: Option<FnId> = if is_method {
            match self.resolve_value(i.saturating_sub(2), aliases) {
                Value::TypeObj(ty) => self.ws.method(&ty, name),
                _ => None,
            }
        } else if i >= 2 && toks[i - 1].text == ":" && toks[i - 2].text == ":" {
            // `Type::name(` — also matches path tails like
            // `her_sync::Mutex::new` (resolves to nothing, fine).
            match toks.get(i.saturating_sub(3)) {
                Some(ty) if ty.kind == TokKind::Ident => {
                    let ty = if ty.text == "Self" {
                        self.cur_fn().impl_type.clone().unwrap_or_default()
                    } else {
                        ty.text.clone()
                    };
                    // `module::func(` — a lowercase path head is a module,
                    // so fall back to free-fn resolution.
                    self.ws.method(&ty, name).or_else(|| {
                        if ty.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
                            self.ws.free_fn(self.file, name)
                        } else {
                            None
                        }
                    })
                }
                _ => None,
            }
        } else if !is_method {
            self.ws.free_fn(self.file, name)
        } else {
            None
        };

        let Some(callee) = callee else {
            if self.phase_b
                && self.strict
                && !self.cur_fn().is_test
                && !held.is_empty()
                && self.ws.is_known_fn_name(name)
                && name != "drop"
                && !STD_NOISE.contains(&name)
            {
                let held_names: Vec<String> = held_ranks(held)
                    .iter()
                    .map(|&h| rank_name(self.tables, h))
                    .collect();
                self.strict_findings.push(Finding {
                    rule: UNRESOLVED_CALLEE,
                    path: self.ws.files[self.file].path.clone(),
                    line: toks[i].line,
                    message: format!(
                        "call to `{name}` while holding {} could not be resolved \
                         (trait object, ambiguous name, or macro) — the static lock \
                         graph assumes it acquires nothing",
                        held_names.join(", ")
                    ),
                    waived: false,
                });
            }
            return;
        };

        let sum = &self.sums[callee];
        if self.phase_b {
            let line = toks[i].line;
            for h in held_ranks(held) {
                for &e in &sum.effects {
                    self.edge(h, e, line);
                }
            }
        }
        self.effects.extend(sum.effects.iter());
        if !sum.callable_holds.is_empty() {
            call_frames.push((paren + 1, sum.callable_holds.clone()));
        }

        // Caller-determined lock params (`lock(&self.counters)`).
        // `param_acquires` indexes non-self params and `split_args`
        // sees only the parenthesized list, so method and free calls
        // share the same base.
        if !sum.param_acquires.is_empty() {
            let args = split_args(toks, i + 1, close);
            for &pi in &sum.param_acquires {
                if let Some(range) = args.get(pi) {
                    if let Some(r) = self.resolve_lock_expr(range.0, range.1, aliases) {
                        let bindable = matches!(sum.guard_src(), Some(GuardSrc::Param(p)) if p == pi);
                        self.effects.insert(r);
                        if self.phase_b {
                            let line = toks[i].line;
                            for h in held_ranks(held) {
                                self.edge(h, r, line);
                            }
                        }
                        if bindable {
                            match stmt_shape(toks, stmt_start) {
                                Shape::LetBound(name) if guard_kept(toks, close + 1) => {
                                    held.push(Region::Bound { name, depth, rank: r })
                                }
                                Shape::CondPlain => {
                                    held.push(Region::TempCond { depth, rank: r })
                                }
                                _ => held.push(Region::TempStmt { depth, rank: r }),
                            }
                        }
                    }
                }
            }
        }

        // Guard-returning helper: the call IS an acquisition region.
        if let Some(GuardSrc::Rank(r)) = sum.guard_src() {
            match stmt_shape(toks, stmt_start) {
                Shape::LetBound(name) if guard_kept(toks, close + 1) => {
                    held.push(Region::Bound { name, depth, rank: r })
                }
                Shape::CondPlain => held.push(Region::TempCond { depth, rank: r }),
                _ => held.push(Region::TempStmt { depth, rank: r }),
            }
        }
    }

    /// Resolves the expression ending at token `last` (inclusive) — a
    /// receiver chain — to a value.
    fn resolve_value(&self, last: usize, aliases: &HashMap<String, Alias>) -> Value {
        let toks = self.toks();
        // Collect chain segments right-to-left.
        enum Seg {
            Name(String),
            Call(String),
            Index,
        }
        let mut segs: Vec<Seg> = Vec::new();
        let mut j = last as isize;
        let base_ok = loop {
            if j < 0 {
                break false;
            }
            let t = &toks[j as usize];
            match t.text.as_str() {
                ")" => {
                    let open = match_back(toks, j as usize, "(", ")");
                    let Some(open) = open else { break false };
                    let m = open.checked_sub(1).map(|k| &toks[k]);
                    match m {
                        Some(m) if m.kind == TokKind::Ident => {
                            segs.push(Seg::Call(m.text.clone()));
                            let before = open as isize - 2;
                            if before >= 0 && toks[before as usize].text == "." {
                                j = before - 1;
                                continue;
                            }
                            if before >= 1
                                && toks[before as usize].text == ":"
                                && toks[(before - 1) as usize].text == ":"
                            {
                                // Type::call( — base is the type.
                                let ty = before - 2;
                                if ty >= 0 && toks[ty as usize].kind == TokKind::Ident {
                                    segs.push(Seg::Name(toks[ty as usize].text.clone()));
                                    break true;
                                }
                                break false;
                            }
                            break true; // free call base
                        }
                        _ => break false,
                    }
                }
                "]" => {
                    let Some(open) = match_back(toks, j as usize, "[", "]") else {
                        break false;
                    };
                    segs.push(Seg::Index);
                    j = open as isize - 1;
                }
                _ if t.kind == TokKind::Ident => {
                    segs.push(Seg::Name(t.text.clone()));
                    if j >= 1 && toks[(j - 1) as usize].text == "." {
                        j -= 2;
                        continue;
                    }
                    break true;
                }
                _ => break false,
            }
        };
        if !base_ok || segs.is_empty() {
            return Value::Unknown;
        }
        segs.reverse();
        // Evaluate left-to-right.
        let mut cur = Value::Unknown;
        for (si, seg) in segs.iter().enumerate() {
            let first = si == 0;
            cur = match seg {
                Seg::Name(n) if first => {
                    if n == "self" {
                        match &self.cur_fn().impl_type {
                            Some(t) => Value::TypeObj(t.clone()),
                            None => Value::Unknown,
                        }
                    } else {
                        match aliases.get(n) {
                            Some(Alias::LockVal(r)) => Value::LockObj(*r),
                            Some(Alias::ParamLock(p)) => Value::ParamLock(*p),
                            Some(Alias::Type(t)) => Value::TypeObj(t.clone()),
                            Some(Alias::Opaque) => Value::Unknown,
                            // An unaliased capitalized base is a type path
                            // (`Type::assoc(..)` chains).
                            None if n.chars().next().is_some_and(|c| c.is_ascii_uppercase()) => {
                                Value::TypeObj(n.clone())
                            }
                            None => Value::Unknown,
                        }
                    }
                }
                Seg::Name(n) => self.apply_field(&cur, n),
                // A free-call base: `health_cell().lock()`.
                Seg::Call(m) if first => {
                    match self.ws.free_fn(self.file, m).map(|c| &self.sums[c]) {
                        Some(s) => {
                            if let Some(r) = s.returns_lock {
                                Value::LockObj(r)
                            } else if s.ret_guard {
                                Value::Guard
                            } else if let Some(p) = &s.ret_principal {
                                Value::TypeObj(p.clone())
                            } else {
                                Value::Unknown
                            }
                        }
                        None => Value::Unknown,
                    }
                }
                Seg::Call(m) => {
                    let callee = match &cur {
                        Value::TypeObj(t) => self.ws.method(t, m),
                        _ => None,
                    };
                    match callee.map(|c| &self.sums[c]) {
                        Some(s) => {
                            if let Some(r) = s.returns_lock {
                                Value::LockObj(r)
                            } else if s.ret_guard {
                                Value::Guard
                            } else if let Some(p) = &s.ret_principal {
                                Value::TypeObj(p.clone())
                            } else {
                                Value::Unknown
                            }
                        }
                        None => Value::Unknown,
                    }
                }
                Seg::Index => match cur {
                    Value::LockObj(r) => Value::LockObj(r),
                    _ => Value::Unknown,
                },
            };
        }
        cur
    }

    /// Applies a `.field` step.
    fn apply_field(&self, cur: &Value, field: &str) -> Value {
        let ty = match cur {
            Value::TypeObj(t) => Some(t.as_str()),
            Value::Unknown => None,
            _ => return Value::Unknown,
        };
        match self.ws.field(ty, field) {
            Some(FieldKind::Lock(payload)) => {
                let rank = payload
                    .as_ref()
                    .and_then(|p| self.tables.payload_rank.get(p))
                    .copied()
                    .or_else(|| self.tables.field_rank.get(field).copied());
                match rank {
                    Some(r) => Value::LockObj(r),
                    None => Value::Unknown,
                }
            }
            Some(FieldKind::Plain(t)) if !t.is_empty() => Value::TypeObj(t.clone()),
            _ => {
                // Construction-derived field rank as a last resort.
                match self.tables.field_rank.get(field) {
                    Some(&r) => Value::LockObj(r),
                    None => Value::Unknown,
                }
            }
        }
    }

    /// Resolves an argument expression (`&self.kills_fired`) to a lock
    /// rank, if it is one.
    fn resolve_lock_expr(
        &self,
        start: usize,
        end: usize,
        aliases: &HashMap<String, Alias>,
    ) -> Option<u32> {
        let toks = self.toks();
        let mut a = start;
        while a < end && (toks[a].text == "&" || toks[a].text == "mut") {
            a += 1;
        }
        if a >= end {
            return None;
        }
        // The chain runs to the end of the arg (args are split on
        // top-level commas, so the whole range is one expression).
        match self.resolve_value(end - 1, aliases) {
            Value::LockObj(r) => Some(r),
            _ => match self.resolve_value(a, aliases) {
                Value::LockObj(r) => Some(r),
                _ => None,
            },
        }
    }

    /// Binds `Enum::Variant(x)` when the pattern is followed by `=>` or
    /// `=` (match arm / if-let / let-else). `x` gets the variant's
    /// payload type from the pseudo-struct field `(Enum, Variant)`.
    fn bind_variant_pattern(&self, i: usize, aliases: &mut HashMap<String, Alias>) {
        let toks = self.toks();
        let enum_name = &toks[i];
        if toks.get(i + 1).is_none_or(|t| t.text != ":")
            || toks.get(i + 2).is_none_or(|t| t.text != ":")
        {
            return;
        }
        let Some(variant) = toks.get(i + 3) else { return };
        if variant.kind != TokKind::Ident || toks.get(i + 4).is_none_or(|t| t.text != "(") {
            return;
        }
        let close = match_bracket(toks, i + 4, "(", ")");
        // Pattern, not a call: the paren group is followed by `=>` / `=`.
        let eq = toks.get(close + 1).is_some_and(|t| t.text == "=");
        if !eq {
            return;
        }
        let binding = toks[i + 5..close]
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref");
        let Some(binding) = binding else { return };
        let alias = match self.ws.field(Some(&enum_name.text), &variant.text) {
            Some(FieldKind::Plain(t)) if !t.is_empty() => Alias::Type(t.clone()),
            Some(FieldKind::Lock(payload)) => {
                match payload
                    .as_ref()
                    .and_then(|p| self.tables.payload_rank.get(p))
                    .copied()
                {
                    Some(r) => Alias::LockVal(r),
                    None => return,
                }
            }
            _ => return,
        };
        aliases.insert(binding.text.clone(), alias);
    }

    /// `let` handling: records aliases for lock-valued and typed locals.
    fn bind_let_alias(
        &mut self,
        let_idx: usize,
        end: usize,
        aliases: &mut HashMap<String, Alias>,
    ) {
        let toks = self.toks();
        let Some((name, eq)) = let_binding(toks, let_idx) else {
            return;
        };
        // Initializer: from after `=` to the statement end.
        let mut stop = eq + 1;
        let mut p = 0i32;
        let mut b = 0i32;
        let mut brace = 0i32;
        while stop < end {
            match toks[stop].text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace < 0 {
                        break;
                    }
                }
                ";" if p <= 0 && b <= 0 && brace <= 0 => break,
                "else" if p <= 0 && b <= 0 && brace <= 0 => break,
                _ => {}
            }
            stop += 1;
        }
        if let Some(v) = self.resolve_init(eq + 1, stop, aliases) {
            aliases.insert(name, v);
        }
    }

    /// Resolves a `let` initializer to an alias, or None.
    fn resolve_init(
        &self,
        start: usize,
        end: usize,
        aliases: &HashMap<String, Alias>,
    ) -> Option<Alias> {
        let toks = self.toks();
        // A ranked construction anywhere in the initializer makes the
        // binding a lock object (`Arc::new(Mutex::new(rank::X, ..))`).
        for k in start..end.min(toks.len()) {
            if let Some(order) = construction_at(self.tables, toks, k) {
                return Some(Alias::LockVal(order));
            }
        }
        let mut a = start;
        while a < end
            && matches!(toks.get(a).map(|t| t.text.as_str()), Some("&" | "mut" | "*" | "match"))
        {
            a += 1;
        }
        // Struct literal: `Type { .. }`.
        if let (Some(t0), Some(t1)) = (toks.get(a), toks.get(a + 1)) {
            if t0.kind == TokKind::Ident
                && t0.text.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && t1.text == "{"
            {
                return Some(Alias::Type(t0.text.clone()));
            }
        }
        // Otherwise: resolve the leading chain expression.
        let chain_end = chain_extent(toks, a, end)?;
        match self.resolve_value(chain_end, aliases) {
            Value::LockObj(r) => Some(Alias::LockVal(r)),
            Value::TypeObj(t) => Some(Alias::Type(t)),
            Value::ParamLock(p) => Some(Alias::ParamLock(p)),
            _ => None,
        }
    }
}

fn held_ranks(held: &[Region]) -> BTreeSet<u32> {
    held.iter().map(|r| r.rank()).collect()
}

/// Backwards bracket match: index of the `open` matching the close at
/// `at`.
fn match_back(toks: &[Tok], at: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i32;
    let mut i = at as isize;
    while i >= 0 {
        let t = &toks[i as usize].text;
        if t == close {
            depth += 1;
        } else if t == open {
            depth -= 1;
            if depth == 0 {
                return Some(i as usize);
            }
        }
        i -= 1;
    }
    None
}

/// Start of the statement containing token `i` (just after the nearest
/// `;`, `{` or `}`).
fn stmt_start(toks: &[Tok], i: usize, floor: usize) -> usize {
    let mut j = i;
    while j > floor {
        let t = &toks[j - 1].text;
        if t == ";" || t == "{" || t == "}" {
            return j;
        }
        j -= 1;
    }
    floor
}

/// Classifies the statement head for region shaping.
fn stmt_shape(toks: &[Tok], start: usize) -> Shape {
    let t0 = toks.get(start).map(|t| t.text.as_str());
    match t0 {
        Some("let") => match let_binding(toks, start) {
            Some((name, _)) => Shape::LetBound(name),
            None => Shape::Other,
        },
        Some("if") | Some("while") => {
            if toks.get(start + 1).is_some_and(|t| t.text == "let") {
                Shape::CondLet
            } else {
                Shape::CondPlain
            }
        }
        _ => Shape::Other,
    }
}

/// Parses `let [mut] name =` or `let [mut] Pattern(name) =` at `at` (the
/// `let` token). Returns `(name, index of '=')`.
fn let_binding(toks: &[Tok], at: usize) -> Option<(String, usize)> {
    let mut j = at + 1;
    if toks.get(j).is_some_and(|t| t.text == "mut") {
        j += 1;
    }
    let head = toks.get(j)?;
    if head.kind != TokKind::Ident {
        return None;
    }
    let next = toks.get(j + 1)?;
    if next.text == "=" && toks.get(j + 2).is_some_and(|t| t.text != "=") {
        return Some((head.text.clone(), j + 1));
    }
    // Pattern wrapper `Some(&mut name)` / `Ok(name)`.
    if next.text == "(" {
        let close = match_bracket(toks, j + 1, "(", ")");
        let name = toks[j + 2..close]
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut")?;
        let eq = close + 1;
        if toks.get(eq).is_some_and(|t| t.text == "=")
            && toks.get(eq + 1).is_some_and(|t| t.text != "=")
        {
            return Some((name.text.clone(), eq));
        }
        // `let Type { .. } =` and annotated `let x: T =` fall out here.
    }
    if next.text == ":" {
        // `let name: Type = …` — find the `=` at top level.
        let mut k = j + 2;
        let mut angle = 0i32;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "=" if angle <= 0 => return Some((head.text.clone(), k)),
                ";" | "{" => return None,
                _ => {}
            }
            k += 1;
        }
    }
    None
}

/// True when the value produced at `after` (index just past a call's
/// closing paren) flows unchanged to the end of the statement — i.e. a
/// `let`-bound guard really binds the guard.
fn guard_kept(toks: &[Tok], mut j: usize) -> bool {
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some(";") | Some("else") | None => return true,
            Some("?") => j += 1,
            Some(".") => {
                let m = toks.get(j + 1);
                let is_preserve = m.is_some_and(|m| PRESERVE.contains(&m.text.as_str()));
                if !is_preserve {
                    return false;
                }
                match toks.get(j + 2) {
                    Some(p) if p.text == "(" => {
                        j = match_bracket(toks, j + 2, "(", ")") + 1;
                    }
                    _ => return false,
                }
            }
            _ => return false,
        }
    }
}

/// Splits a call's argument list `( … )` into top-level comma-separated
/// `[start, end)` ranges. `open` is the `(` index, `close` its match.
fn split_args(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut p = 0i32;
    let mut b = 0i32;
    let mut brace = 0i32;
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.text.as_str() {
            "(" => p += 1,
            ")" => p -= 1,
            "[" => b += 1,
            "]" => b -= 1,
            "{" => brace += 1,
            "}" => brace -= 1,
            "," if p == 0 && b == 0 && brace == 0 => {
                out.push((start, j));
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close));
    }
    out
}

/// Whether the `|` at `i` begins a closure (vs a binary-or or a match
/// pattern alternation).
fn closure_starts(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    matches!(p.text.as_str(), "(" | "," | "=" | "{" | ";" | "return" | "move" | ">")
        && (p.text != ">" || (i >= 2 && toks[i - 2].text == "="))
}

/// Finds a closure's parameter names and body range. Returns
/// `(body_start, body_end_exclusive, params)`.
fn closure_extent(toks: &[Tok], i: usize, limit: usize) -> Option<(usize, usize, Vec<String>)> {
    // Params: up to the matching `|` (or `||` for none).
    let mut params = Vec::new();
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.text == "|") {
        j += 1;
    } else {
        let mut p = 0i32;
        let mut b = 0i32;
        let mut angle = 0i32;
        loop {
            let t = toks.get(j)?;
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => b += 1,
                "]" => b -= 1,
                "<" => angle += 1,
                ">" => angle -= 1,
                "|" if p == 0 && b == 0 && angle <= 0 => {
                    j += 1;
                    break;
                }
                _ => {
                    if t.kind == TokKind::Ident
                        && p == 0
                        && t.text != "mut"
                        && toks.get(j + 1).is_none_or(|n| n.text != ":")
                    {
                        params.push(t.text.clone());
                    } else if t.kind == TokKind::Ident
                        && t.text != "mut"
                        && toks.get(j + 1).is_some_and(|n| n.text == ":")
                    {
                        params.push(t.text.clone());
                        // Skip the type annotation to the next top-level
                        // `,` or `|`.
                    }
                }
            }
            if j >= limit {
                return None;
            }
            j += 1;
        }
    }
    // Optional `-> Type` before a braced body.
    if toks.get(j).is_some_and(|t| t.text == "-")
        && toks.get(j + 1).is_some_and(|t| t.text == ">")
    {
        while j < limit && toks[j].text != "{" {
            j += 1;
        }
    }
    if toks.get(j).is_some_and(|t| t.text == "{") {
        let close = match_bracket(toks, j, "{", "}");
        return Some((j + 1, close, params));
    }
    // Expression body: to a top-level `,` or the enclosing `)`.
    let start = j;
    let mut p = 0i32;
    let mut b = 0i32;
    let mut brace = 0i32;
    while j < limit {
        match toks[j].text.as_str() {
            "(" => p += 1,
            ")" => {
                p -= 1;
                if p < 0 {
                    return Some((start, j, params));
                }
            }
            "[" => b += 1,
            "]" => {
                b -= 1;
                if b < 0 {
                    return Some((start, j, params));
                }
            }
            "{" => brace += 1,
            "}" => {
                brace -= 1;
                if brace < 0 {
                    return Some((start, j, params));
                }
            }
            "," | ";" if p == 0 && b == 0 && brace == 0 => {
                return Some((start, j, params));
            }
            _ => {}
        }
        j += 1;
    }
    Some((start, limit, params))
}

/// The leading chain expression's last token index within
/// `[start, end)`: ident path with `.field`, `(..)`, `[..]` links.
fn chain_extent(toks: &[Tok], start: usize, end: usize) -> Option<usize> {
    let t0 = toks.get(start)?;
    if t0.kind != TokKind::Ident {
        return None;
    }
    let mut j = start;
    let mut last = start;
    loop {
        // Current token is an ident; look at what follows.
        match toks.get(j + 1).map(|t| t.text.as_str()) {
            Some(":") if toks.get(j + 2).is_some_and(|t| t.text == ":") => {
                if toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident) {
                    j += 3;
                    last = j;
                    continue;
                }
                return Some(last);
            }
            Some("(") => {
                let close = match_bracket(toks, j + 1, "(", ")");
                if close >= end {
                    return Some(last);
                }
                last = close;
                match toks.get(close + 1).map(|t| t.text.as_str()) {
                    Some(".") if toks.get(close + 2).is_some_and(|t| t.kind == TokKind::Ident) => {
                        j = close + 2;
                        last = j;
                        // A further `(` continues via the loop below.
                        if toks.get(j + 1).is_some_and(|t| t.text == "(") {
                            continue;
                        }
                        continue;
                    }
                    _ => return Some(last),
                }
            }
            Some(".") if toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident) => {
                j += 2;
                last = j;
                continue;
            }
            Some("[") => {
                let close = match_bracket(toks, j + 1, "[", "]");
                if close >= end {
                    return Some(last);
                }
                last = close;
                match toks.get(close + 1).map(|t| t.text.as_str()) {
                    Some(".") if toks.get(close + 2).is_some_and(|t| t.kind == TokKind::Ident) => {
                        j = close + 2;
                        last = j;
                        continue;
                    }
                    _ => return Some(last),
                }
            }
            _ => return Some(last),
        }
    }
}

// ---------------------------------------------------------------------
// Outputs: DOT rendering and the dynamic-subset check
// ---------------------------------------------------------------------

/// Display names straight from the rank table (no source scan needed).
pub fn rank_names() -> BTreeMap<u32, &'static str> {
    her_sync::rank::ALL
        .iter()
        .map(|(_, r)| (r.order, r.name))
        .collect()
}

/// Renders the rank-acquisition digraph as GraphViz DOT. Production
/// edges are solid; edges only reachable from test code are dashed.
/// Every rank in the table appears as a node even if no edge touches it,
/// so the graph doubles as documentation of the full hierarchy.
pub fn render_dot(edges: &[Edge]) -> String {
    let names = rank_names();
    let mut out = String::from(
        "// Generated by `cargo run -p her-analysis -- graph --dot`.\n\
         // Nodes: her_sync rank table. Solid: production acquisition\n\
         // edges; dashed: reachable from test code only.\n\
         digraph lock_ranks {\n  rankdir=LR;\n  \
         node [shape=box, fontname=\"monospace\", fontsize=10];\n",
    );
    for (order, name) in &names {
        out.push_str(&format!(
            "  r{order} [label=\"{name}\\nrank {order}\"];\n"
        ));
    }
    for e in edges {
        let style = if e.test_only { " [style=dashed]" } else { "" };
        out.push_str(&format!("  r{} -> r{}{};\n", e.src, e.dst, style));
    }
    out.push_str("}\n");
    out
}

/// The CI consistency drill: every `held acquired` pair the runtime
/// tracker observed (a `HER_SYNC_EDGE_LOG` dump) must be in the static
/// graph. Lines mentioning ranks outside the table (tests construct
/// private ranks freely) are ignored. Returns the missing pairs.
pub fn check_dynamic_subset(dump: &str, edges: &[Edge]) -> Vec<(String, String)> {
    let names = rank_names();
    let by_name: HashMap<&str, u32> = names.iter().map(|(&o, &n)| (n, o)).collect();
    let static_set: BTreeSet<(u32, u32)> = edges.iter().map(|e| (e.src, e.dst)).collect();
    let mut missing = Vec::new();
    for line in dump.lines() {
        let mut it = line.split_whitespace();
        let (Some(h), Some(a)) = (it.next(), it.next()) else {
            continue;
        };
        let (Some(&hs), Some(&as_)) = (by_name.get(h), by_name.get(a)) else {
            continue;
        };
        if !static_set.contains(&(hs, as_)) {
            missing.push((h.to_string(), a.to_string()));
        }
    }
    missing.sort();
    missing.dedup();
    missing
}

/// If a nested `fn` item starts at `i`, returns the index of its body's
/// closing brace.
fn skip_nested_fn(toks: &[Tok], i: usize) -> Option<usize> {
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    // Find the body `{` before any `;` (a `;` means no body here).
    let mut j = i + 2;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => angle += 1,
            ">" if toks[j - 1].text != "-" => angle -= 1,
            "(" => paren += 1,
            ")" => paren -= 1,
            "{" if angle <= 0 && paren == 0 => {
                return Some(match_bracket(toks, j, "{", "}"));
            }
            ";" if paren == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}
