//! A minimal Rust lexer — just enough structure for the rules in
//! [`crate::rules`]: identifiers, punctuation, string/char/number
//! literals, and comment-borne waivers. No `syn`, no precise grammar;
//! rules work on token sequences, which is robust to formatting and
//! cheap enough to lex the whole workspace in well under a second.

/// Token classes the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Mutex`, `unwrap`, ...).
    Ident,
    /// String literal; `text` holds the raw inner bytes (escapes kept
    /// verbatim — metric names never use escapes).
    Str,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) or char literal — rules ignore both, but they
    /// must be consumed correctly so quotes don't derail the lexer.
    Tick,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A waiver comment: `// #[allow(her::rule_name)] — justification`.
/// It silences findings of `rule` on its own line and the line below.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: String,
    pub line: u32,
}

/// Lexing output: the token stream plus every waiver comment seen.
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub waivers: Vec<Waiver>,
}

/// Scans comment text for `#[allow(her::rule)]` markers. `line` is the
/// line of the comment's first byte; markers deeper inside a multi-line
/// block comment are attributed to the line they actually sit on.
fn scan_waivers(comment: &str, line: u32, out: &mut Vec<Waiver>) {
    let mut rest = comment;
    let mut consumed = 0usize;
    while let Some(at) = rest.find("#[allow(her::") {
        let tail = &rest[at + "#[allow(her::".len()..];
        let end = tail
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(tail.len());
        if end > 0 && tail[end..].starts_with(")]") {
            let newlines = comment[..consumed + at]
                .bytes()
                .filter(|&c| c == b'\n')
                .count() as u32;
            out.push(Waiver {
                rule: tail[..end].to_string(),
                line: line + newlines,
            });
        }
        rest = &rest[at + 1..];
        consumed += at + 1;
    }
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut waivers = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let bump = |from: usize, to: usize, line: &mut u32| {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map(|n| i + n).unwrap_or(b.len());
                scan_waivers(&src[i..end], line, &mut waivers);
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting like Rust's.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_waivers(&src[start..i], line, &mut waivers);
                bump(start, i, &mut line);
            }
            b'"' => {
                let (text, end) = string_body(src, i + 1);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                bump(i, end, &mut line);
                i = end;
            }
            b'r' | b'b' if raw_string_start(b, i).is_some() => {
                let (hashes, body_at) = raw_string_start(b, i).unwrap_or((0, i + 1));
                let close: String =
                    std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
                let end = src[body_at..]
                    .find(&close)
                    .map(|n| body_at + n)
                    .unwrap_or(b.len());
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[body_at..end].to_string(),
                    line,
                });
                let after = (end + close.len()).min(b.len());
                bump(i, after, &mut line);
                i = after;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (text, end) = string_body(src, i + 2);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                bump(i, end, &mut line);
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'ident` NOT
                // followed by a closing quote.
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') {
                    let mut k = j;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    if b.get(k) != Some(&b'\'') {
                        toks.push(Tok {
                            kind: TokKind::Tick,
                            text: src[j..k].to_string(),
                            line,
                        });
                        i = k;
                        continue;
                    }
                }
                // Char literal: consume to the closing quote, honouring \.
                while j < b.len() {
                    if b[j] == b'\\' {
                        j += 2;
                    } else if b[j] == b'\'' {
                        j += 1;
                        break;
                    } else {
                        j += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Tick,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        j += 1;
                    } else if d == b'.'
                        && b.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        // `1.5` continues the number; `0..n` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i + 1;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    Lexed { toks, waivers }
}

/// Consumes a (non-raw) string body starting just after the opening
/// quote; returns the inner text and the index just past the closing
/// quote.
fn string_body(src: &str, from: usize) -> (String, usize) {
    let b = src.as_bytes();
    let mut j = from;
    while j < b.len() {
        if b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            return (src[from..j].to_string(), j + 1);
        } else {
            j += 1;
        }
    }
    (src[from..].to_string(), b.len())
}

/// Detects `r"`, `r#"`, `br#"` ... at `i`; returns (hash count, index of
/// the first body byte).
fn raw_string_start(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    if b[i] == b'b' {
        if b.get(j) != Some(&b'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&b'"') {
        Some((hashes, j + 1))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn tokenizes_idents_strings_and_lines() {
        let l = lex("fn main() {\n    let x = \"a b\"; // note\n}\n");
        assert_eq!(idents("fn main() { let x = 1; }"), ["fn", "main", "let", "x"]);
        let s: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, "a b");
        assert_eq!(s[0].line, 2);
    }

    #[test]
    fn lifetimes_and_chars_do_not_derail_strings() {
        let l = lex("impl<'a> X<'a> { fn f(c: char) { if c == '\"' {} let s = \"ok\"; } }");
        let strs: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["ok"]);
    }

    #[test]
    fn raw_strings_round_trip() {
        let l = lex(r####"let a = r#"has "quotes""#; let b = r"plain";"####);
        let strs: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, [r#"has "quotes""#, "plain"]);
    }

    #[test]
    fn waivers_are_collected_from_comments() {
        let l = lex("// #[allow(her::raw_sync_lock)] — justified\nlet x = 1;\n/* #[allow(her::panicking_decode)] */\n");
        let w: Vec<_> = l.waivers.iter().map(|w| (w.rule.as_str(), w.line)).collect();
        assert_eq!(w, [("raw_sync_lock", 1), ("panicking_decode", 3)]);
    }

    #[test]
    fn multiline_block_comment_waivers_land_on_their_own_line() {
        let l = lex("/* header\n   #[allow(her::raw_sync_lock)] — on line 2\n   more\n*/\nlet x = 1;\n");
        let w: Vec<_> = l.waivers.iter().map(|w| (w.rule.as_str(), w.line)).collect();
        assert_eq!(w, [("raw_sync_lock", 2)]);
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        let l = lex("/* outer /* std::sync::Mutex inner */ still comment */ fn f() {}");
        let names = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(names, ["fn", "f"]);
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        // Lock-looking text inside raw strings must stay string data —
        // the rules would otherwise see phantom `Mutex` tokens.
        let l = lex(r####"let s = r#"std::sync::Mutex::new(0).lock().unwrap()"#; let t = br"RwLock";"####);
        assert!(l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .all(|t| t.text != "Mutex" && t.text != "RwLock" && t.text != "lock"));
        let strs = l.toks.iter().filter(|t| t.kind == TokKind::Str).count();
        assert_eq!(strs, 2);
    }

    #[test]
    fn escaped_quotes_stay_inside_the_literal() {
        let l = lex(r#"let s = "a\"b"; let t = 2;"#);
        let s: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].text, r#"a\"b"#);
    }
}
