//! Seeded violations for `her::unguarded_span`: span guards dropped at
//! the call statement, producing zero-width spans.

pub struct Tracer;
pub struct Span;

impl Tracer {
    pub fn span(&self, _name: &str) -> Span {
        Span
    }
    pub fn span_ctx(&self, _name: &str, _ctx: u64) -> Span {
        Span
    }
}

pub fn dropped_immediately(t: &Tracer) {
    // Bare statement: the guard drops before the work it should cover.
    t.span("cli.load");
    do_work();
    // `let _ =` is no better — `_` drops the guard on the spot.
    let _ = t.span_ctx("serve.req", 7);
    do_work();
}

pub fn waived_site(t: &Tracer) {
    // #[allow(her::unguarded_span)] — intentionally zero-width: marks an instant
    t.span("serve.tick");
}

fn do_work() {}
