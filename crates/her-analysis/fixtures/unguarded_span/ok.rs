//! Seeded-clean fixture for `her::unguarded_span`: every span guard is
//! bound to a live binding, so its Drop closes the span where the
//! covered work actually ends.

pub struct Tracer;
pub struct Span;

impl Tracer {
    pub fn span(&self, _name: &str) -> Span {
        Span
    }
    pub fn span_ctx(&self, _name: &str, _ctx: u64) -> Span {
        Span
    }
}

pub fn guarded(t: &Tracer) {
    let _load = t.span("cli.load");
    let work = t.span_ctx("serve.req", 7);
    drop(work);
}

pub fn guarded_through_map(t: Option<&Tracer>) {
    // The common production shape: optional observability, guard bound
    // through a `map` chain that may spill over several lines.
    let _span = t.map(|o| o.span_ctx("serve.exec", 9));
    let _multi = t
        .map(|o| o.span_ctx("parallel.bsp", 11));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Test code is out of scope: a test asserting on a span's side
    // effects may drop the guard inline.
    #[test]
    fn inline_is_fine_here() {
        let t = Tracer;
        t.span("test.only");
    }
}
