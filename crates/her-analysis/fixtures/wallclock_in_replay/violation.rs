//! Seeded violations: wall-clock reads inside replay and restore paths
//! make recovery non-deterministic.

use std::time::{Instant, SystemTime};

pub struct Replayed {
    pub records: u64,
    pub stamp_micros: u128,
}

pub fn replay(journal: &[Vec<u8>], mut apply: impl FnMut(&[u8])) -> Replayed {
    let t0 = Instant::now();
    let mut records = 0;
    for rec in journal {
        apply(rec);
        records += 1;
    }
    Replayed {
        records,
        stamp_micros: t0.elapsed().as_micros(),
    }
}

pub fn restore_stamp() -> SystemTime {
    SystemTime::now()
}
