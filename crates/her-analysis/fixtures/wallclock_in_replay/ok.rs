//! Positive fixture: wall-clock reads are fine OUTSIDE replay/restore
//! functions (telemetry on the write path), and replay functions that
//! never read the clock are fine too.

use std::time::Instant;

pub fn write_with_timing(out: &mut Vec<u8>, payload: &[u8]) -> f64 {
    let t0 = Instant::now();
    out.extend_from_slice(payload);
    t0.elapsed().as_secs_f64()
}

pub fn replay(journal: &[Vec<u8>], mut apply: impl FnMut(&[u8])) -> u64 {
    let mut records = 0;
    for rec in journal {
        apply(rec);
        records += 1;
    }
    records
}
