//! Positive fixture: a decode path that degrades to errors — bounds via
//! `get`, conversions via `try_into().ok()`, no unwrap/expect/indexing.
//! Test code below may panic freely (rule excludes `mod tests`).

pub struct DecodeError(pub String);

pub fn decode_u32(buf: &[u8], pos: usize) -> Result<u32, DecodeError> {
    let end = pos
        .checked_add(4)
        .ok_or_else(|| DecodeError("offset overflow".into()))?;
    let bytes: [u8; 4] = buf
        .get(pos..end)
        .ok_or_else(|| DecodeError("short read".into()))?
        .try_into()
        .map_err(|_| DecodeError("bad width".into()))?;
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let buf = 7u32.to_le_bytes().to_vec();
        assert_eq!(decode_u32(&buf, 0).map_err(|e| e.0).unwrap(), 7);
        assert_eq!(buf[0], 7);
    }
}
