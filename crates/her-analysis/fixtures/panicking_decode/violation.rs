//! Seeded violations: unwrap, expect and slice indexing inside a decode
//! path — each aborts the process on a torn or corrupt input.

pub fn decode_header(buf: &[u8]) -> (u32, u32) {
    let len: [u8; 4] = buf[0..4].try_into().unwrap();
    let crc: [u8; 4] = buf[4..8].try_into().expect("4-byte slice");
    (u32::from_le_bytes(len), u32::from_le_bytes(crc))
}

pub fn decode_first(buf: &[u8]) -> u8 {
    buf[0]
}
