// Fixture (virtual crate `c`): the other same-named free function —
// this one acquires nothing.

pub fn shared_helper() {}
