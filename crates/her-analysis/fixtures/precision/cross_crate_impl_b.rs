// Fixture (virtual crate `b`): one of two same-named free functions.

use her_sync::{rank, Mutex};

pub struct Cell {
    pub state: u8,
}

pub fn health_cell() -> her_sync::Mutex<Cell> {
    her_sync::Mutex::new(rank::SERVE_HEALTH, Cell { state: 0 })
}

pub fn shared_helper() {
    health_cell().lock().state = 1;
}
