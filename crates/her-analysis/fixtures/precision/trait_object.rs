// Fixture: a call through a trait object while holding a lock. The
// static pass cannot resolve `dyn Hook::fire`, so the 3 -> 7 edge the
// implementation would create is ABSENT from the graph (documented
// under-approximation) and no inversion is reported even though
// `Impl::fire` acquires health. Under `--strict` the unresolved call
// site is flagged instead.

use her_sync::{rank, Mutex};

pub struct Table {
    pub entries: u64,
}

pub struct Cell {
    pub state: u8,
}

pub trait Hook {
    fn fire(&self);
}

pub struct Service {
    watchdog: her_sync::Mutex<Table>,
    health: her_sync::Mutex<Cell>,
}

impl Service {
    pub fn new() -> Self {
        Self {
            watchdog: her_sync::Mutex::new(rank::SERVE_WATCHDOG, Table { entries: 0 }),
            health: her_sync::Mutex::new(rank::SERVE_HEALTH, Cell { state: 0 }),
        }
    }

    // Holds watchdog (3) across a dynamic dispatch: whatever `hook`
    // acquires is invisible to the pass.
    pub fn run_hook(&self, hook: &dyn Hook) {
        let t = self.watchdog.lock();
        hook.fire();
        let _ = t.entries;
    }
}

pub struct HealthHook<'a> {
    svc: &'a Service,
}

impl Hook for HealthHook<'_> {
    // First-party implementation the dispatch above could reach.
    fn fire(&self) {
        self.svc.health.lock().state = 1;
    }
}
