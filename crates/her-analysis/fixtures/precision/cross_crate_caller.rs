// Fixture (virtual crate `a`): calls `shared_helper()` while holding
// the watchdog. Two other crates both define `shared_helper`, so
// resolution is ambiguous and the pass assumes the call acquires
// nothing — the possible 3 -> 7 edge is absent (documented precision
// limit; `--strict` flags the site).

use her_sync::{rank, Mutex};

pub struct Table {
    pub entries: u64,
}

pub struct Service {
    watchdog: her_sync::Mutex<Table>,
}

impl Service {
    pub fn new() -> Self {
        Self {
            watchdog: her_sync::Mutex::new(rank::SERVE_WATCHDOG, Table { entries: 0 }),
        }
    }

    pub fn run(&self) {
        let t = self.watchdog.lock();
        shared_helper();
        let _ = t.entries;
    }
}
