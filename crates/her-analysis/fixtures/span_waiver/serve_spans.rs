// Fixture: span-aware waivers. A `// #[allow(her::rule)]` sitting on
// (or directly above) an fn/impl/mod header waives every finding
// inside that item's span. A comment separated from the header by a
// blank line does NOT count.

use her_core::{Matcher, MatcherOptions};

pub struct Handler {
    m: Matcher,
}

impl Handler {
    // #[allow(her::budget_not_threaded)] — warmup path, bounded input
    pub fn waived_by_fn_header(&self) {
        let _ = self.m.try_vpair((1, 2), MatcherOptions::default());
    }

    pub fn unwaived(&self) {
        let _ = self.m.try_apair(7, MatcherOptions::default());
    }
}

// #[allow(her::budget_not_threaded)] — whole warmup module is prelaunch
mod warm {
    use her_core::{Matcher, MatcherOptions};

    pub fn nested_in_waived_mod(m: &Matcher) {
        let _ = m.try_vpair((3, 4), MatcherOptions::default());
    }
}

// #[allow(her::budget_not_threaded)] — NOT adjacent: blank line below

pub fn not_covered_by_distant_comment(m: &Matcher) {
    let _ = m.try_apair(9, MatcherOptions::default());
}
