//! Positive fixture: storage writes routed through the `Vfs` facade,
//! reads (which the rule does not police), and raw `std::fs` confined
//! to test code. None of this may trigger her::raw_fs_write.

use her_store::{Vfs, VfsFile};
use std::path::Path;
use std::sync::Arc;

pub fn checkpoint(vfs: &Arc<dyn Vfs>, dir: &Path, payload: &[u8]) -> std::io::Result<()> {
    vfs.create_dir_all(dir)?;
    let tmp = dir.join("snap.tmp");
    let mut f = vfs.create(&tmp)?;
    f.write_all(payload)?;
    f.sync_data()?;
    drop(f);
    vfs.rename(&tmp, &dir.join("snap"))?;
    vfs.sync_dir(dir);
    Ok(())
}

pub fn scan(vfs: &Arc<dyn Vfs>, path: &Path) -> std::io::Result<Vec<u8>> {
    // Reads are out of scope for the write rule.
    let bytes = std::fs::read(path)?;
    let _ = vfs.read_dir_names(path.parent().unwrap_or(Path::new(".")));
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_dir_setup() {
        // Tests build their scaffolding with raw std::fs freely.
        let dir = std::env::temp_dir().join("raw-fs-fixture");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("seed"), b"x").unwrap();
        let f = std::fs::File::create(dir.join("log")).unwrap();
        drop(f);
        std::fs::remove_dir_all(&dir).ok();
    }
}
