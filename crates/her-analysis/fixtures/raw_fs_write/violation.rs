//! Seeded violations: direct filesystem writes in durability-crate lib
//! code — `std::fs::write`, a rename, `File::create`, an
//! `OpenOptions::new` append — plus one properly waived diagnostics
//! sink.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

pub fn persist(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, payload)?;
    std::fs::rename(path, path.with_extension("done"))
}

pub fn open_segment(path: &Path) -> std::io::Result<File> {
    File::create(path)
}

pub fn append_entry(path: &Path, entry: &[u8]) -> std::io::Result<()> {
    let mut f = OpenOptions::new().create(true).append(true).open(path)?;
    f.write_all(entry)
}

pub fn debug_note(path: &Path, note: &str) -> std::io::Result<()> {
    // #[allow(her::raw_fs_write)] — fixture demonstrating a justified waiver
    std::fs::write(path, note.as_bytes())
}
