// Fixture: seeded rank inversions. `forward` establishes the legal
// 3 -> 7 edge; `release_only_regression` — compiled ONLY in release
// builds, where the dynamic tracker's debug_assertions guard never
// runs — takes them in the opposite order. The static pass analyzes
// every cfg branch, so it must report the inversion AND the resulting
// 3 -> 7 -> 3 cycle. A third, line-waived site must come back waived.

use her_sync::{rank, Mutex};

pub struct Table {
    pub entries: u64,
}

pub struct Cell {
    pub state: u8,
}

pub struct Service {
    watchdog: her_sync::Mutex<Table>,
    health: her_sync::Mutex<Cell>,
}

impl Service {
    pub fn new() -> Self {
        Self {
            watchdog: her_sync::Mutex::new(rank::SERVE_WATCHDOG, Table { entries: 0 }),
            health: her_sync::Mutex::new(rank::SERVE_HEALTH, Cell { state: 0 }),
        }
    }

    // The legal direction: watchdog (3) then health (7).
    pub fn forward(&self) {
        let t = self.watchdog.lock();
        self.health.lock().state = (t.entries % 250) as u8;
    }

    // Reaps expired entries — acquires the watchdog table.
    fn reap(&self) -> u64 {
        let mut t = self.watchdog.lock();
        t.entries = 0;
        t.entries
    }

    // Release-only path: holds health (7) and calls reap(), which
    // acquires watchdog (3). Unreachable in any debug/test run, so only
    // the static pass can see the 7 -> 3 inversion closing the cycle.
    #[cfg(not(debug_assertions))]
    pub fn release_only_regression(&self) {
        let c = self.health.lock();
        let reaped = self.reap();
        let _ = (c.state, reaped);
    }

    // Same inversion shape, deliberately waived in place.
    pub fn waived_inversion(&self) {
        let c = self.health.lock();
        // #[allow(her::static_lock_inversion)] — startup only, single-threaded
        let t = self.watchdog.lock();
        let _ = (c.state, t.entries);
    }
}
