// Fixture: rank-ordered acquisition — every path acquires strictly
// increasing ranks, directly and through helpers, so the lock pass must
// produce an acyclic graph with zero findings.

use her_sync::{rank, Mutex, MutexGuard};

pub struct Table {
    pub entries: u64,
}

pub struct Cell {
    pub state: u8,
}

pub struct Service {
    watchdog: her_sync::Mutex<Table>,
    health: her_sync::Mutex<Cell>,
}

impl Service {
    pub fn new() -> Self {
        Self {
            watchdog: her_sync::Mutex::new(rank::SERVE_WATCHDOG, Table { entries: 0 }),
            health: her_sync::Mutex::new(rank::SERVE_HEALTH, Cell { state: 0 }),
        }
    }

    // A guard-returning helper: callers of `lock()` acquire the watchdog
    // rank at their own site.
    fn lock(&self) -> MutexGuard<'_, Table> {
        self.watchdog.lock()
    }

    // Direct nesting, increasing: watchdog (3) then health (7).
    pub fn tick(&self) {
        let mut t = self.lock();
        t.entries += 1;
        self.publish(t.entries);
    }

    // Indirect second acquisition through a helper call.
    fn publish(&self, n: u64) {
        let mut c = self.health.lock();
        c.state = (n % 250) as u8;
    }

    // Temporaries in sequence hold nothing across statements.
    pub fn sequential(&self) {
        self.lock().entries += 1;
        self.health.lock().state = 0;
        let again = self.lock();
        drop(again);
        self.publish(0);
    }
}
