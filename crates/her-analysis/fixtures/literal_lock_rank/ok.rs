//! Positive fixture: ranks taken from the central table, plus the one
//! place ad-hoc ranks are fine — test code. None of this may trigger
//! her::literal_lock_rank.

use her_sync::{rank, Mutex};

pub struct Gate {
    queue: Mutex<Vec<u32>>,
    journal: Mutex<Vec<u8>>,
}

impl Gate {
    pub fn new() -> Self {
        Gate {
            queue: Mutex::new(rank::SERVE_ADMISSION, Vec::new()),
            journal: Mutex::new(rank::SERVE_STREAM, Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_order_probe() {
        // Tests may mint throwaway ranks to probe the tracker itself.
        let probe = her_sync::Mutex::new(her_sync::Rank::new(99, "test.order"), 0u32);
        drop(probe.lock());
    }
}
