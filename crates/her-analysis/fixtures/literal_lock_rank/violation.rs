//! Seeded violations: ranks invented at use sites — a plain
//! `Rank::new`, a fully-qualified one, and one properly waived site.

use her_sync::{Mutex, Rank};

pub struct Caches {
    hot: Mutex<Vec<u32>>,
    cold: Mutex<Vec<u32>>,
}

impl Caches {
    pub fn new() -> Self {
        Caches {
            hot: Mutex::new(Rank::new(17, "cache.hot"), Vec::new()),
            cold: Mutex::new(her_sync::Rank::new(18, "cache.cold"), Vec::new()),
        }
    }
}

// #[allow(her::literal_lock_rank)] — fixture demonstrating a justified waiver
pub const SCRATCH: Rank = Rank::new(63, "fixture.scratch");
