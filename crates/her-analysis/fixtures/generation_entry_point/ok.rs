//! Positive fixture: the shared generation is observed only at the
//! declared non-recursive entry points.

pub struct Matcher {
    seen_generation: u64,
}

impl Matcher {
    pub fn try_match(&mut self, shared: &her_core::SharedScores) -> bool {
        self.sync_shared_generation(shared);
        true
    }

    fn sync_shared_generation(&mut self, shared: &her_core::SharedScores) {
        self.seen_generation = shared.generation();
    }

    pub fn restore(&mut self, shared: &her_core::SharedScores) {
        self.seen_generation = shared.generation();
    }
}
