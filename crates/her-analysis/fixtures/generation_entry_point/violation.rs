//! Seeded violation: reading the shared generation mid-recursion. An
//! `invalidate()` racing this read tears the traversal's score view.

pub struct Matcher {
    seen_generation: u64,
}

impl Matcher {
    fn recursive_step(&mut self, shared: &her_core::SharedScores, depth: u32) -> bool {
        if self.seen_generation != shared.generation() {
            return false;
        }
        depth == 0 || self.recursive_step(shared, depth - 1)
    }
}
