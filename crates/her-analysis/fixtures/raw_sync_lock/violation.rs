//! Seeded violations: raw std locks via a use-group, an inline path,
//! and one properly waived site.

use std::sync::{Arc, Mutex};

pub struct Bad {
    inner: Mutex<Vec<u32>>,
    // Inline path form, no import:
    slow: std::sync::RwLock<u32>,
}

// #[allow(her::raw_sync_lock)] — fixture demonstrating a justified waiver
use std::sync::MutexGuard;

pub fn share(b: Bad) -> Arc<Bad> {
    Arc::new(b)
}
