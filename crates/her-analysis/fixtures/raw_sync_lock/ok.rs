//! Positive fixture: locking through the facade, plus std::sync items
//! that are NOT locks — none of this may trigger her::raw_sync_lock.

use her_sync::{rank, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

pub struct State {
    counter: AtomicU64,
    table: Mutex<Vec<u32>>,
    index: RwLock<Vec<u32>>,
}

impl State {
    pub fn new() -> Arc<Self> {
        let (_tx, _rx) = mpsc::channel::<u32>();
        Arc::new(State {
            counter: AtomicU64::new(0),
            table: Mutex::new(rank::FAULT_KILLS, Vec::new()),
            index: RwLock::new(rank::PARTITION, Vec::new()),
        })
    }

    pub fn bump(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }
}
