// Fixture: serving-path matcher calls that correctly thread a budget or
// deadline — zero `her::budget_not_threaded` findings expected.

impl Handler {
    fn run_vpair(&self, tuple: TupleRef, max_calls: u64, deadline: Option<Instant>) -> Reply {
        let run = self
            .her
            .try_vpair(tuple, self.matcher_opts(max_calls, deadline));
        reply(run)
    }

    fn run_apair(&self, max_calls: u64, deadline: Option<Instant>) -> Reply {
        let (matches, exhausted, stats, ticket) = self.her.try_apair_stats_pooled(
            self.pool,
            self.budget(max_calls, deadline),
            CancelToken::new(),
            self.ctx,
        );
        reply4(matches, exhausted, stats, ticket)
    }

    fn run_explicit(&self) -> Reply {
        let opts = MatcherOptions {
            budget: Budget::max_calls(10_000),
            ..Default::default()
        };
        let (matches, exhausted) = self.her.try_apair(opts);
        reply2(matches, exhausted)
    }
}
