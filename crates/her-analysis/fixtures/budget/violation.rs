// Fixture: serving-path matcher calls that DROP the request budget —
// unbounded matcher work under an admission slot. Two unwaived sites
// plus one waived warmup path.

impl Handler {
    fn run_vpair(&self, tuple: TupleRef) -> Reply {
        let run = self.her.try_vpair(tuple, MatcherOptions::default());
        reply(run)
    }

    fn run_apair(&self) -> Reply {
        let (matches, exhausted) = self.her.try_apair(Default::default());
        reply2(matches, exhausted)
    }

    fn warmup(&self) {
        // #[allow(her::budget_not_threaded)] — startup prewarm over a bounded seed set
        let _ = self.her.try_apair_stats(MatcherOptions::default());
    }
}
