//! Positive fixture: preregistered literal names only (the test registry
//! contains scores.embed_calls and scores.shared_hits).

pub fn wire(obs: &her_obs::Obs) {
    obs.registry.counter("scores.embed_calls").inc();
    obs.registry.counter("scores.shared_hits").add(2);
}
