//! Seeded violations: an unpreregistered literal name, an uncheckable
//! dynamic name, and a properly waived dynamic forwarding site.

pub fn wire(obs: &her_obs::Obs, kind: &str) {
    obs.registry.counter("scores.typo_metric").inc();
    let name = format!("fault.{kind}");
    obs.registry.counter(&name).inc();
    // #[allow(her::unregistered_metric)] — forwards `fault.<kind>`, every kind in names::ALL
    obs.registry.counter(&format!("fault.{kind}")).inc();
}
