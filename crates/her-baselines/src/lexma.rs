//! The LexMa baseline \[82\]: per-cell lexical matching.
//!
//! LexMa maps each table cell to knowledge-graph entities purely by lexical
//! techniques, independently of the other cells. §VII explains why this
//! fails for tuple matching: the cells of one tuple map to disconnected
//! entities ("London" the UK city vs "London" in Canada), so deciding which
//! single entity the *tuple* denotes has very low precision. We reproduce
//! the mechanism: a tuple "matches" a vertex whenever *any* of its cell
//! values lexically matches the vertex label.

use crate::common::{EntityLinker, LinkContext};
use crate::strsim::levenshtein_sim;
use her_graph::VertexId;
use her_rdb::TupleRef;

/// The LexMa entity linker.
pub struct LexMa {
    /// Lexical similarity above which a cell matches a label.
    pub cell_threshold: f64,
}

impl LexMa {
    /// Creates LexMa with its standard near-exact threshold.
    pub fn new() -> Self {
        Self {
            cell_threshold: 0.85,
        }
    }

    /// Whether a cell value lexically matches a label (case-insensitive
    /// near-equality).
    pub fn cell_matches(&self, cell: &str, label: &str) -> bool {
        let c = cell.to_lowercase();
        let l = label.to_lowercase();
        c == l || levenshtein_sim(&c, &l) >= self.cell_threshold
    }

    /// The tuple's cell values (rendered scalars only).
    fn cells(&self, ctx: &LinkContext<'_>, t: TupleRef) -> Vec<String> {
        ctx.db
            .tuple(t)
            .values()
            .iter()
            .filter_map(|v| v.as_label())
            .collect()
    }
}

impl Default for LexMa {
    fn default() -> Self {
        Self::new()
    }
}

impl EntityLinker for LexMa {
    fn name(&self) -> &'static str {
        "LexMa"
    }

    /// Purely lexical: no training.
    fn train(&mut self, _ctx: &LinkContext<'_>, _train: &[(TupleRef, VertexId, bool)]) {}

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        // An entity's lexical surface forms: its own label plus its 1-hop
        // neighbour labels (names/aliases hang off the entity vertex).
        let interner = ctx.interner();
        let mut surfaces = vec![interner.resolve(ctx.g.label(v)).to_owned()];
        surfaces.extend(
            ctx.g
                .children(v)
                .iter()
                .map(|&c| interner.resolve(ctx.g.label(c)).to_owned()),
        );
        self.cells(ctx, t)
            .iter()
            .any(|c| surfaces.iter().any(|s| self.cell_matches(c, s)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;
    use her_rdb::rdb2rdf::canonicalize_with_interner;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    fn setup() -> (Database, her_rdb::rdb2rdf::CanonicalGraph, her_graph::Graph, TupleRef, Vec<VertexId>) {
        let mut s = Schema::new();
        let r = s.add_relation(RelationSchema::new("place", &["city", "country"]));
        let mut db = Database::new(s);
        let t = db.insert(
            r,
            Tuple::new(vec![Value::str("London"), Value::str("UK")]),
        );
        let mut b = GraphBuilder::new();
        let london_uk = b.add_vertex("London");
        let london_ca = b.add_vertex("London"); // the Ontario one
        let uk = b.add_vertex("UK");
        let paris = b.add_vertex("Paris");
        let (g, gi) = b.build();
        let cg = canonicalize_with_interner(&db, gi);
        (db, cg, g, t, vec![london_uk, london_ca, uk, paris])
    }

    #[test]
    fn cell_matching_is_near_exact() {
        let l = LexMa::new();
        assert!(l.cell_matches("London", "london"));
        assert!(l.cell_matches("Addidas", "Adidas"));
        assert!(!l.cell_matches("London", "Paris"));
    }

    #[test]
    fn ambiguity_produces_false_positives() {
        // The mechanism the paper criticises: the tuple "matches" both
        // Londons AND the UK vertex (its country cell), i.e. precision dies.
        let (db, cg, g, t, vs) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let l = LexMa::new();
        assert!(l.predict(&ctx, t, vs[0]));
        assert!(l.predict(&ctx, t, vs[1])); // wrong London
        assert!(l.predict(&ctx, t, vs[2])); // the country, not the city
        assert!(!l.predict(&ctx, t, vs[3]));
    }

    #[test]
    fn vpair_returns_all_lexical_hits() {
        let (db, cg, g, t, _) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let l = LexMa::new();
        assert_eq!(l.vpair(&ctx, t).len(), 3);
    }
}
