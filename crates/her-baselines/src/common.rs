//! Shared infrastructure: entity profiles, the 2-hop flattening of graph
//! vertices, and the [`EntityLinker`] trait all baselines implement.

use her_graph::{Graph, Interner, VertexId};
use her_rdb::rdb2rdf::CanonicalGraph;
use her_rdb::{Database, TupleRef};

/// A schema-agnostic entity profile: name-value pairs (JedAI's input
/// representation, also the feature-table rows of MAG/DEEP).
#[derive(Clone, Debug, PartialEq)]
pub struct Profile {
    /// `(attribute/path name, value)` pairs.
    pub fields: Vec<(String, String)>,
}

impl Profile {
    /// All values joined into one document (for schema-agnostic methods).
    pub fn text(&self) -> String {
        let mut s = String::new();
        for (_, v) in &self.fields {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(v);
        }
        s
    }

    /// The value of the first field named `name`.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the profile has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// Builds the profile of a tuple: its relation's attribute names paired
/// with rendered values (references render the referenced tuple's first
/// textual attribute, mimicking how export tools denormalise).
pub fn tuple_profile(db: &Database, t: TupleRef) -> Profile {
    let rs = db.schema().relation(t.relation as usize);
    let tuple = db.tuple(t);
    let mut fields = Vec::with_capacity(rs.arity());
    for (i, v) in tuple.values().iter().enumerate() {
        let name = rs.attrs()[i].clone();
        match v {
            her_rdb::Value::Ref(r) => {
                // Denormalise one level: first non-null scalar of the target.
                let target = db.tuple(*r);
                if let Some(label) = target.values().iter().find_map(|tv| tv.as_label()) {
                    fields.push((name, label));
                }
            }
            other => {
                if let Some(label) = other.as_label() {
                    fields.push((name, label));
                }
            }
        }
    }
    Profile { fields }
}

/// Flattens a graph vertex into a pseudo-tuple via its 2-hop neighbourhood
/// (§VII: "we took v along with its 2-hop neighbors and flattened them into
/// a tuple"). Field names are the dot-joined edge labels of the path.
pub fn vertex_profile(g: &Graph, interner: &Interner, v: VertexId) -> Profile {
    let mut fields = Vec::new();
    fields.push(("_label".to_owned(), interner.resolve(g.label(v)).to_owned()));
    for (labels, target) in her_graph::traverse::two_hop(g, v) {
        let name = labels
            .iter()
            .map(|&l| interner.resolve(l))
            .collect::<Vec<_>>()
            .join(".");
        fields.push((name, interner.resolve(g.label(target)).to_owned()));
    }
    Profile { fields }
}

/// Everything a linker needs to see: the database, its canonical graph
/// (with the shared interner) and the data graph.
pub struct LinkContext<'a> {
    /// The relational database `D`.
    pub db: &'a Database,
    /// `G_D` + tuple↔vertex mapping + shared interner.
    pub cg: &'a CanonicalGraph,
    /// The data graph `G`.
    pub g: &'a Graph,
}

impl<'a> LinkContext<'a> {
    /// The shared interner.
    pub fn interner(&self) -> &Interner {
        &self.cg.interner
    }

    /// Profile of tuple `t`.
    pub fn tuple_profile(&self, t: TupleRef) -> Profile {
        tuple_profile(self.db, t)
    }

    /// Profile of graph vertex `v` (2-hop flattening).
    pub fn vertex_profile(&self, v: VertexId) -> Profile {
        vertex_profile(self.g, self.interner(), v)
    }
}

/// The uniform interface the evaluation harness drives: train on annotated
/// tuple/vertex pairs, then predict pairs (SPair) or scan (VPair).
pub trait EntityLinker {
    /// Display name used in the reproduced tables.
    fn name(&self) -> &'static str;

    /// Supervised training (no-op for rule-based methods).
    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]);

    /// SPair: does tuple `t` match vertex `v`?
    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool;

    /// VPair: all matching vertices for `t`. Default: scan every vertex.
    fn vpair(&self, ctx: &LinkContext<'_>, t: TupleRef) -> Vec<VertexId> {
        ctx.g
            .vertices()
            .filter(|&v| self.predict(ctx, t, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;
    use her_rdb::rdb2rdf::canonicalize_with_interner;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Tuple, Value};

    pub(crate) fn test_db() -> (Database, TupleRef, TupleRef) {
        let mut s = Schema::new();
        let brand = s.add_relation(RelationSchema::new("brand", &["name", "country"]));
        let item = s.add_relation(
            RelationSchema::new("item", &["name", "color", "brand"]).with_foreign_key("brand", brand),
        );
        let mut db = Database::new(s);
        let b = db.insert(
            brand,
            Tuple::new(vec![Value::str("Acme"), Value::str("Germany")]),
        );
        let t = db.insert(
            item,
            Tuple::new(vec![
                Value::str("Dame Shoes"),
                Value::str("white"),
                Value::Ref(b),
            ]),
        );
        (db, t, b)
    }

    #[test]
    fn tuple_profile_renders_scalars_and_refs() {
        let (db, t, _) = test_db();
        let p = tuple_profile(&db, t);
        assert_eq!(p.get("name"), Some("Dame Shoes"));
        assert_eq!(p.get("color"), Some("white"));
        // FK denormalised to the brand's first scalar value.
        assert_eq!(p.get("brand"), Some("Acme"));
        assert!(p.text().contains("white"));
    }

    #[test]
    fn tuple_profile_skips_nulls() {
        let mut s = Schema::new();
        let r = s.add_relation(RelationSchema::new("r", &["a", "b"]));
        let mut db = Database::new(s);
        let t = db.insert(r, Tuple::new(vec![Value::Null, Value::str("x")]));
        let p = tuple_profile(&db, t);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("b"), Some("x"));
    }

    #[test]
    fn vertex_profile_flattens_two_hops() {
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("item");
        let brand = b.add_vertex("Acme");
        let country = b.add_vertex("Germany");
        let deep = b.add_vertex("Europe");
        b.add_edge(v, brand, "brandName");
        b.add_edge(brand, country, "brandCountry");
        b.add_edge(country, deep, "isIn"); // 3 hops away: invisible
        let (g, i) = b.build();
        let p = vertex_profile(&g, &i, v);
        assert_eq!(p.get("_label"), Some("item"));
        assert_eq!(p.get("brandName"), Some("Acme"));
        assert_eq!(p.get("brandName.brandCountry"), Some("Germany"));
        assert_eq!(p.get("brandName.brandCountry.isIn"), None, "2-hop cap");
    }

    #[test]
    fn link_context_profiles() {
        let (db, t, _) = test_db();
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("item");
        let n = b.add_vertex("Dame Shoes");
        b.add_edge(v, n, "name");
        let (g, gi) = b.build();
        let cg = canonicalize_with_interner(&db, gi);
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        assert_eq!(ctx.tuple_profile(t).get("name"), Some("Dame Shoes"));
        assert_eq!(ctx.vertex_profile(v).get("name"), Some("Dame Shoes"));
    }
}
