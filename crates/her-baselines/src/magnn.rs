//! The MAGNN baseline \[37\]: metapath-aggregated neighbourhood embeddings.
//!
//! MAGNN learns vertex embeddings by aggregating attribute information
//! along metapaths and scores pairs by embedding similarity. Our stand-in
//! reproduces the aggregation structure: a vertex's embedding combines its
//! own label vector with decayed means over its 1-hop and 2-hop
//! neighbourhoods, each hop conditioned on the edge label ("metapath")
//! through which it is reached. Pairs are scored by cosine, thresholded on
//! the training data (the paper applies random parameter search on the
//! validation set — here the threshold is the searched parameter).
//!
//! The paper's criticism carries over: embeddings summarise *local*
//! neighbourhoods, so entities distinguished only by deeper structure
//! collapse to similar vectors.

use crate::common::{EntityLinker, LinkContext};
use her_embed::vec_ops::{add_scaled, cos_to_unit, cosine, normalize};
use her_embed::SentenceModel;
use her_graph::{Graph, Interner, VertexId};
use her_rdb::TupleRef;

/// The MAGNN entity linker.
pub struct Magnn {
    encoder: SentenceModel,
    /// Hop decay weights (self, 1-hop, 2-hop).
    weights: [f32; 3],
    /// Decision threshold; tuned in `train`.
    pub threshold: f32,
}

impl Magnn {
    /// Creates the model with `dim`-dimensional label embeddings.
    pub fn new(dim: usize) -> Self {
        Self {
            encoder: SentenceModel::new(dim),
            weights: [1.0, 0.6, 0.3],
            threshold: 0.5,
        }
    }

    /// Metapath-aggregated embedding of `v` in `g`.
    pub fn embed_vertex(&self, g: &Graph, interner: &Interner, v: VertexId) -> Vec<f32> {
        let mut out = self.encoder.embed(interner.resolve(g.label(v)));
        for x in out.iter_mut() {
            *x *= self.weights[0];
        }
        // 1-hop aggregation, conditioned on the metapath (edge label).
        let mut hop1 = vec![0.0f32; out.len()];
        let mut n1 = 0.0f32;
        for (l, c) in g.out_edges(v) {
            let mut piece = self.encoder.embed(interner.resolve(g.label(c)));
            let rel = self.encoder.embed(interner.resolve(l));
            add_scaled(&mut piece, &rel, 0.5);
            normalize(&mut piece);
            add_scaled(&mut hop1, &piece, 1.0);
            n1 += 1.0;
            // 2-hop continuation of the metapath.
            for (l2, c2) in g.out_edges(c) {
                let mut p2 = self.encoder.embed(interner.resolve(g.label(c2)));
                let r2 = self.encoder.embed(interner.resolve(l2));
                add_scaled(&mut p2, &r2, 0.5);
                normalize(&mut p2);
                add_scaled(&mut hop1, &p2, self.weights[2] / self.weights[1]);
                n1 += self.weights[2] / self.weights[1];
            }
        }
        if n1 > 0.0 {
            add_scaled(&mut out, &hop1, self.weights[1] / n1);
        }
        normalize(&mut out);
        out
    }

    /// Similarity of a `G_D` vertex and a `G` vertex.
    pub fn score(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> f32 {
        let u = ctx.cg.vertex_of(t);
        let eu = self.embed_vertex(&ctx.cg.graph, ctx.interner(), u);
        let ev = self.embed_vertex(ctx.g, ctx.interner(), v);
        cos_to_unit(cosine(&eu, &ev))
    }
}

impl Default for Magnn {
    fn default() -> Self {
        Self::new(64)
    }
}

impl EntityLinker for Magnn {
    fn name(&self) -> &'static str {
        "MAGNN"
    }

    /// Threshold search on the training annotations (the stand-in for the
    /// paper's random parameter search).
    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]) {
        if train.is_empty() {
            return;
        }
        let scored: Vec<(f32, bool)> = train
            .iter()
            .map(|&(t, v, m)| (self.score(ctx, t, v), m))
            .collect();
        // Pick the threshold maximising F-measure over observed scores.
        let mut best = (self.threshold, -1.0f64);
        for &(s, _) in &scored {
            let th = s - 1e-6;
            let (mut tp, mut fp, mut fn_) = (0, 0, 0);
            for &(x, m) in &scored {
                match (x >= th, m) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
            let p = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
            let r = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
            let f = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
            if f > best.1 {
                best = (th, f);
            }
        }
        self.threshold = best.0;
    }

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        self.score(ctx, t, v) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;
    use her_rdb::rdb2rdf::canonicalize_with_interner;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    fn setup() -> (Database, her_rdb::rdb2rdf::CanonicalGraph, Graph, Vec<TupleRef>, Vec<VertexId>) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let t1 = db.insert(
            item,
            Tuple::new(vec![Value::str("Dame Shoes"), Value::str("white")]),
        );
        let t2 = db.insert(
            item,
            Tuple::new(vec![Value::str("Runner Pro"), Value::str("red")]),
        );
        let mut b = GraphBuilder::new();
        let mut add_entity = |name: &str, color: &str| {
            let v = b.add_vertex("item");
            let n = b.add_vertex(name);
            let c = b.add_vertex(color);
            b.add_edge(v, n, "name");
            b.add_edge(v, c, "hasColor");
            v
        };
        let v1 = add_entity("Dame Shoes", "white");
        let v2 = add_entity("Runner Pro", "red");
        let (g, gi) = b.build();
        let cg = canonicalize_with_interner(&db, gi);
        (db, cg, g, vec![t1, t2], vec![v1, v2])
    }

    #[test]
    fn embedding_reflects_neighbourhood() {
        let (_db, cg, g, _, vs) = setup();
        let m = Magnn::default();
        let e1 = m.embed_vertex(&g, &cg.interner, vs[0]);
        let e2 = m.embed_vertex(&g, &cg.interner, vs[1]);
        // Same root label, different attributes → similar but not identical.
        let sim = cosine(&e1, &e2);
        assert!(sim < 0.999);
        assert!(sim > 0.2);
    }

    #[test]
    fn true_pairs_score_above_cross_pairs() {
        let (db, cg, g, ts, vs) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let m = Magnn::default();
        assert!(m.score(&ctx, ts[0], vs[0]) > m.score(&ctx, ts[0], vs[1]));
        assert!(m.score(&ctx, ts[1], vs[1]) > m.score(&ctx, ts[1], vs[0]));
    }

    #[test]
    fn threshold_training_separates() {
        let (db, cg, g, ts, vs) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let mut m = Magnn::default();
        let train = vec![
            (ts[0], vs[0], true),
            (ts[1], vs[1], true),
            (ts[0], vs[1], false),
            (ts[1], vs[0], false),
        ];
        m.train(&ctx, &train);
        assert!(m.predict(&ctx, ts[0], vs[0]));
        assert!(!m.predict(&ctx, ts[0], vs[1]));
    }
}
