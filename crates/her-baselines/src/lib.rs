//! The comparison methods of the HER evaluation (§VII "Baselines"),
//! rebuilt mechanism-faithfully:
//!
//! | paper baseline | module | mechanism reproduced |
//! |---|---|---|
//! | MAGNN \[37\] | [`magnn`] | metapath-aggregated neighbourhood embeddings, cosine scoring |
//! | Bsim \[33\] | [`bsim`] | bounded simulation of `G_D` as a pattern over `G`, with the memory blow-up the paper reports as OM |
//! | JedAI \[69\] | [`jedai`] | schema-agnostic profiles, character 4-grams with TF-IDF weights and cosine similarity |
//! | Magellan (MAG) \[48\] | [`magellan`] | similarity feature tables + a random forest ([`forest`]) |
//! | DeepMatcher (DEEP) \[62\] | [`deep`] | embedding features + an MLP classifier |
//! | LexMa \[82\] | [`lexma`] | per-cell lexical matching, majority entity vote |
//! | MTab / bbw / LinkingPark | [`cell`] | spell-checker-assisted cell matching stand-ins (2T task) |
//!
//! The relational systems (JedAI, MAG, DEEP) see graph vertices through the
//! 2-hop flattening of §VII: a vertex `v` is packed into a pseudo-tuple of
//! `(path label, target label)` fields ([`common::vertex_profile`]). This
//! is exactly the representational handicap the paper identifies: multi-hop
//! properties beyond 2 hops and recursive structure are invisible to them.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod bsim;
pub mod cell;
pub mod common;
pub mod deep;
pub mod forest;
pub mod instrument;
pub mod jedai;
pub mod lexma;
pub mod magellan;
pub mod magnn;
pub mod strsim;

pub use common::{EntityLinker, LinkContext, Profile};
pub use instrument::Instrumented;
