//! Cell-Entity Annotation (CEA) matchers for the SemTab 2T task (§VII).
//!
//! Table V (bottom) compares HER against the SemTab 2020 top challengers on
//! the "Tough Tables" dataset, whose difficulty is *heavy misspelling*: the
//! top-3 systems (MTab, bbw, LinkingPark) all embed purpose-built spell
//! checkers, while LexMa (and HER, built for tuple matching) do not. We
//! reproduce that mechanism spectrum with one configurable matcher:
//!
//! - edit-tolerant candidate generation (the "spell checker"), and
//! - row-context scoring (other cells of the row must appear near the
//!   candidate entity), which is what separates MTab/bbw/LP from LexMa.

use crate::common::LinkContext;
use crate::strsim::{levenshtein, levenshtein_sim};
use her_graph::VertexId;
use her_rdb::TupleRef;

/// Configuration of a CEA matcher.
#[derive(Clone, Debug)]
pub struct CellMatcherConfig {
    /// Display name in Table V.
    pub name: &'static str,
    /// Maximum edit distance the spell checker corrects (0 = no checker).
    pub max_edit: usize,
    /// Weight of row-context agreement in candidate scoring.
    pub context_weight: f64,
}

/// MTab stand-in: aggressive spell checking + strong context.
pub fn mtab() -> CellMatcher {
    CellMatcher {
        cfg: CellMatcherConfig {
            name: "MTab",
            max_edit: 3,
            context_weight: 1.0,
        },
    }
}

/// bbw stand-in: meta-lookup spell checking + context.
pub fn bbw() -> CellMatcher {
    CellMatcher {
        cfg: CellMatcherConfig {
            name: "bbw",
            max_edit: 2,
            context_weight: 0.8,
        },
    }
}

/// LinkingPark stand-in: shallower spell checking, weaker context.
pub fn linking_park() -> CellMatcher {
    CellMatcher {
        cfg: CellMatcherConfig {
            name: "LP",
            max_edit: 1,
            context_weight: 0.4,
        },
    }
}

/// LexMa in cell mode: lexical only — no spell checker, no context.
pub fn lexma_cell() -> CellMatcher {
    CellMatcher {
        cfg: CellMatcherConfig {
            name: "LexMa",
            max_edit: 0,
            context_weight: 0.0,
        },
    }
}

/// A CEA matcher: maps each cell of a tuple to its best graph vertex.
pub struct CellMatcher {
    cfg: CellMatcherConfig,
}

impl CellMatcher {
    /// The matcher's display name.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    /// Annotates each scalar cell of `t` (by column index) with the best
    /// candidate vertex, or no entry when nothing plausible exists.
    pub fn annotate(&self, ctx: &LinkContext<'_>, t: TupleRef) -> Vec<(usize, VertexId)> {
        let tuple = ctx.db.tuple(t);
        let cells: Vec<(usize, String)> = tuple
            .values()
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_label().map(|l| (i, l)))
            .collect();
        let mut out = Vec::new();
        for (col, cell) in &cells {
            let mut best: Option<(VertexId, f64)> = None;
            for v in ctx.g.vertices() {
                let label = ctx.interner().resolve(ctx.g.label(v));
                let lex = self.lexical_score(cell, label);
                if lex <= 0.0 {
                    continue;
                }
                let context = if self.cfg.context_weight > 0.0 {
                    self.context_score(ctx, v, &cells, *col)
                } else {
                    0.0
                };
                let score = lex + self.cfg.context_weight * context;
                if best.is_none_or(|(_, b)| score > b) {
                    best = Some((v, score));
                }
            }
            if let Some((v, _)) = best {
                out.push((*col, v));
            }
        }
        out
    }

    /// Lexical score with optional spell correction: 1 for (near-)exact,
    /// partial credit within the edit budget, 0 beyond it.
    fn lexical_score(&self, cell: &str, label: &str) -> f64 {
        let c = cell.to_lowercase();
        let l = label.to_lowercase();
        if c == l {
            return 1.0;
        }
        if self.cfg.max_edit == 0 {
            // No spell checker: only near-exact matches count.
            return if levenshtein_sim(&c, &l) >= 0.95 { 0.95 } else { 0.0 };
        }
        let d = levenshtein(&c, &l);
        if d <= self.cfg.max_edit {
            1.0 - d as f64 / (self.cfg.max_edit + 1) as f64
        } else {
            0.0
        }
    }

    /// Row context: fraction of the row's *other* cells that lexically
    /// appear in the candidate's 2-hop neighbourhood labels.
    fn context_score(
        &self,
        ctx: &LinkContext<'_>,
        v: VertexId,
        cells: &[(usize, String)],
        current_col: usize,
    ) -> f64 {
        let hood: Vec<String> = her_graph::traverse::two_hop(ctx.g, v)
            .into_iter()
            .map(|(_, t)| ctx.interner().resolve(ctx.g.label(t)).to_lowercase())
            .collect();
        let others: Vec<&String> = cells
            .iter()
            .filter(|(c, _)| *c != current_col)
            .map(|(_, s)| s)
            .collect();
        if others.is_empty() {
            return 0.0;
        }
        let hits = others
            .iter()
            .filter(|cell| {
                let c = cell.to_lowercase();
                hood.iter()
                    .any(|h| *h == c || levenshtein_sim(h, &c) >= 0.8)
            })
            .count();
        hits as f64 / others.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;
    use her_rdb::rdb2rdf::canonicalize_with_interner;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    /// A row ("Germny", "Berlin") with typos, and a graph with the country
    /// entity connected to its capital plus a decoy "Germany" person name.
    fn setup() -> (Database, her_rdb::rdb2rdf::CanonicalGraph, her_graph::Graph, TupleRef, VertexId, VertexId) {
        let mut s = Schema::new();
        let r = s.add_relation(RelationSchema::new("row", &["country", "capital"]));
        let mut db = Database::new(s);
        let t = db.insert(
            r,
            Tuple::new(vec![Value::str("Germny"), Value::str("Berlin")]),
        );
        let mut b = GraphBuilder::new();
        let germany = b.add_vertex("Germany");
        let berlin = b.add_vertex("Berlin");
        b.add_edge(germany, berlin, "capital");
        let decoy = b.add_vertex("Germanu"); // a different misspelled thing
        let nowhere = b.add_vertex("Atlantis");
        b.add_edge(decoy, nowhere, "capital");
        let (g, gi) = b.build();
        let cg = canonicalize_with_interner(&db, gi);
        (db, cg, g, t, germany, berlin)
    }

    #[test]
    fn spell_checker_recovers_typo() {
        let (db, cg, g, t, germany, berlin) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let ann = mtab().annotate(&ctx, t);
        assert!(ann.contains(&(0, germany)), "{ann:?}");
        assert!(ann.contains(&(1, berlin)));
    }

    #[test]
    fn no_spell_checker_misses_typo() {
        let (db, cg, g, t, _, berlin) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let ann = lexma_cell().annotate(&ctx, t);
        // "Germny" cannot be matched without correction; "Berlin" can.
        assert!(!ann.iter().any(|(c, _)| *c == 0), "{ann:?}");
        assert!(ann.contains(&(1, berlin)));
    }

    #[test]
    fn context_disambiguates_between_corrections() {
        // Both "Germany" and "Germanu" are within edit 2 of "Germny"; only
        // "Germany" has Berlin (the other row cell) in its neighbourhood.
        let (db, cg, g, t, germany, _) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let ann = mtab().annotate(&ctx, t);
        let cell0 = ann.iter().find(|(c, _)| *c == 0).map(|(_, v)| *v);
        assert_eq!(cell0, Some(germany));
    }

    #[test]
    fn matcher_names_for_table5() {
        assert_eq!(mtab().name(), "MTab");
        assert_eq!(bbw().name(), "bbw");
        assert_eq!(linking_park().name(), "LP");
        assert_eq!(lexma_cell().name(), "LexMa");
    }
}
