//! Observability wrapper for baselines: [`Instrumented`] decorates any
//! [`EntityLinker`] with the same metric namespace HER's own engines use,
//! so benchmark comparisons are apples-to-apples — every method reports
//! `baseline.<name>.predictions`, `baseline.<name>.vpair_runs` and the
//! `baseline.<name>.predict_us` latency histogram into one shared
//! [`her_obs::Registry`].

use crate::common::{EntityLinker, LinkContext};
use her_graph::VertexId;
use her_rdb::TupleRef;
use std::sync::Arc;
use std::time::Instant;

/// An [`EntityLinker`] that counts and times every call on its way to the
/// wrapped method. Handles are resolved once at construction, so the
/// per-call overhead is a relaxed atomic bump.
pub struct Instrumented<L> {
    inner: L,
    predictions: Arc<her_obs::Counter>,
    vpair_runs: Arc<her_obs::Counter>,
    trains: Arc<her_obs::Counter>,
    predict_us: Arc<her_obs::Histogram>,
    vpair_us: Arc<her_obs::Histogram>,
}

impl<L: EntityLinker> Instrumented<L> {
    /// Wraps `inner`, registering its metrics (keyed by
    /// [`EntityLinker::name`]) in `obs`'s registry.
    pub fn new(inner: L, obs: &her_obs::Obs) -> Self {
        let name = inner.name();
        let r = &obs.registry;
        Self {
            predictions: // #[allow(her::unregistered_metric)] — `baseline.<linker>.predictions` family, per-baseline cardinality
            r.counter(&format!("baseline.{name}.predictions")),
            vpair_runs: // #[allow(her::unregistered_metric)] — `baseline.<linker>.vpair_runs` family, per-baseline cardinality
            r.counter(&format!("baseline.{name}.vpair_runs")),
            trains: // #[allow(her::unregistered_metric)] — `baseline.<linker>.trains` family, per-baseline cardinality
            r.counter(&format!("baseline.{name}.trains")),
            predict_us: // #[allow(her::unregistered_metric)] — `baseline.<linker>.predict_us` family, per-baseline cardinality
            r.histogram(&format!("baseline.{name}.predict_us")),
            vpair_us: // #[allow(her::unregistered_metric)] — `baseline.<linker>.vpair_us` family, per-baseline cardinality
            r.histogram(&format!("baseline.{name}.vpair_us")),
            inner,
        }
    }

    /// The wrapped linker.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Unwraps back into the inner linker.
    pub fn into_inner(self) -> L {
        self.inner
    }
}

impl<L: EntityLinker> EntityLinker for Instrumented<L> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]) {
        self.trains.inc();
        self.inner.train(ctx, train);
    }

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        let t0 = Instant::now();
        let out = self.inner.predict(ctx, t, v);
        self.predictions.inc();
        self.predict_us.observe(t0.elapsed().as_micros() as u64);
        out
    }

    fn vpair(&self, ctx: &LinkContext<'_>, t: TupleRef) -> Vec<VertexId> {
        // Delegate to the baseline's own (possibly blocked/optimised)
        // scan rather than the trait default, so the wrapper never
        // changes *what* runs — only what gets counted.
        let t0 = Instant::now();
        let out = self.inner.vpair(ctx, t);
        self.vpair_runs.inc();
        self.vpair_us.observe(t0.elapsed().as_micros() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::Graph;

    /// A linker with a degenerate rule (every pair matches) and a custom
    /// `vpair` so delegation is observable.
    struct Always;

    impl EntityLinker for Always {
        fn name(&self) -> &'static str {
            "always"
        }
        fn train(&mut self, _: &LinkContext<'_>, _: &[(TupleRef, VertexId, bool)]) {}
        fn predict(&self, _: &LinkContext<'_>, _: TupleRef, _: VertexId) -> bool {
            true
        }
        fn vpair(&self, ctx: &LinkContext<'_>, _: TupleRef) -> Vec<VertexId> {
            // Custom scan: only the first vertex (≠ trait default).
            ctx.g.vertices().take(1).collect()
        }
    }

    fn ctx_fixture() -> (her_rdb::Database, Graph, her_rdb::rdb2rdf::CanonicalGraph, TupleRef)
    {
        use her_rdb::schema::{RelationSchema, Schema};
        use her_rdb::{Database, Tuple, Value};
        let mut s = Schema::new();
        let r = s.add_relation(RelationSchema::new("item", &["name"]));
        let mut db = Database::new(s);
        let t = db.insert(r, Tuple::new(vec![Value::str("x")]));
        let mut b = her_graph::GraphBuilder::new();
        let v = b.add_vertex("item");
        let n = b.add_vertex("x");
        b.add_edge(v, n, "name");
        let (g, gi) = b.build();
        let cg = her_rdb::rdb2rdf::canonicalize_with_interner(&db, gi);
        (db, g, cg, t)
    }

    #[test]
    fn counts_and_delegates() {
        let (db, g, cg, t) = ctx_fixture();
        let ctx = LinkContext {
            db: &db,
            cg: &cg,
            g: &g,
        };
        let obs = her_obs::Obs::new();
        let mut linker = Instrumented::new(Always, &obs);
        linker.train(&ctx, &[]);
        let v = g.vertices().next().expect("fixture has vertices");
        assert!(linker.predict(&ctx, t, v));
        assert!(linker.predict(&ctx, t, v));
        // Delegates to the custom vpair, not the scan-all default.
        assert_eq!(linker.vpair(&ctx, t).len(), 1);
        let snap = obs.registry.snapshot();
        if her_obs::ENABLED {
            assert_eq!(snap.counter("baseline.always.predictions"), 2);
            assert_eq!(snap.counter("baseline.always.vpair_runs"), 1);
            assert_eq!(snap.counter("baseline.always.trains"), 1);
            let h = snap
                .histogram("baseline.always.predict_us")
                .expect("predict_us registered");
            assert_eq!(h.count, 2);
        }
        assert_eq!(linker.name(), "always");
    }
}
