//! The Magellan (MAG) baseline \[48\]: feature tables + a random forest.
//!
//! §VII configures Magellan with "its random forest model with feature
//! tables". Each candidate pair is turned into a row of string-similarity
//! features between the tuple profile and the 2-hop-flattened vertex
//! profile; a bagged random forest classifies the row. The structural
//! limitation the paper exploits is inherited faithfully: anything more
//! than 2 hops from the vertex (and any recursive structure) never enters
//! the feature table.

use crate::common::{EntityLinker, LinkContext, Profile};
use crate::forest::{ForestConfig, RandomForest};
use crate::strsim::{levenshtein_sim, token_jaccard};
use her_graph::VertexId;
use her_rdb::TupleRef;

/// Feature vector of a profile pair (fixed width so the forest can train).
pub fn pair_features(a: &Profile, b: &Profile) -> Vec<f64> {
    // Best-alignment statistics: for each field of `a`, the best value
    // similarity over fields of `b`.
    let mut best: Vec<f64> = Vec::with_capacity(a.len());
    let mut exact = 0usize;
    for (_, va) in &a.fields {
        let mut m = 0.0f64;
        for (_, vb) in &b.fields {
            let s = levenshtein_sim(va, vb);
            if s > m {
                m = s;
            }
            if va.eq_ignore_ascii_case(vb) {
                exact += 1;
                m = 1.0;
                break;
            }
        }
        best.push(m);
    }
    let n = best.len().max(1) as f64;
    let mean_best = best.iter().sum::<f64>() / n;
    let max_best = best.iter().cloned().fold(0.0, f64::max);
    let min_best = best.iter().cloned().fold(1.0, f64::min);
    let frac_exact = exact as f64 / n;
    let ta = a.text();
    let tb = b.text();
    let jac = token_jaccard(&ta, &tb);
    let len_ratio = {
        let (la, lb) = (ta.len() as f64, tb.len() as f64);
        if la.max(lb) == 0.0 {
            1.0
        } else {
            la.min(lb) / la.max(lb)
        }
    };
    vec![mean_best, max_best, min_best, frac_exact, jac, len_ratio]
}

/// The MAG entity linker.
pub struct Magellan {
    forest: Option<RandomForest>,
    cfg: ForestConfig,
}

impl Magellan {
    /// Creates an untrained MAG with the given forest configuration.
    pub fn new(cfg: ForestConfig) -> Self {
        Self { forest: None, cfg }
    }

    /// Match probability for a pair (0.5 when untrained).
    pub fn score(&self, a: &Profile, b: &Profile) -> f64 {
        match &self.forest {
            Some(f) => f.predict(&pair_features(a, b)),
            None => 0.5,
        }
    }
}

impl Default for Magellan {
    fn default() -> Self {
        Self::new(ForestConfig::default())
    }
}

impl EntityLinker for Magellan {
    fn name(&self) -> &'static str {
        "MAG"
    }

    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]) {
        if train.is_empty() {
            return;
        }
        let xs: Vec<Vec<f64>> = train
            .iter()
            .map(|&(t, v, _)| pair_features(&ctx.tuple_profile(t), &ctx.vertex_profile(v)))
            .collect();
        let ys: Vec<bool> = train.iter().map(|&(_, _, m)| m).collect();
        self.forest = Some(RandomForest::fit(&xs, &ys, &self.cfg));
    }

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        self.score(&ctx.tuple_profile(t), &ctx.vertex_profile(v)) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fields: &[(&str, &str)]) -> Profile {
        Profile {
            fields: fields
                .iter()
                .map(|(n, v)| ((*n).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    #[test]
    fn features_have_fixed_width_and_range() {
        let a = profile(&[("name", "Dame Shoes"), ("color", "white")]);
        let b = profile(&[("_label", "item"), ("name", "Dame Shoes")]);
        let f = pair_features(&a, &b);
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|x| (0.0..=1.0).contains(x)), "{f:?}");
    }

    #[test]
    fn identical_profiles_score_higher_features() {
        let a = profile(&[("name", "Dame Shoes"), ("color", "white")]);
        let same = pair_features(&a, &a);
        let diff = pair_features(&a, &profile(&[("name", "Runner"), ("color", "red")]));
        assert!(same[0] > diff[0]); // mean best sim
        assert!(same[3] > diff[3]); // exact fraction
    }

    #[test]
    fn untrained_scores_half() {
        let m = Magellan::default();
        let a = profile(&[("x", "1")]);
        assert_eq!(m.score(&a, &a), 0.5);
    }

    #[test]
    fn forest_learns_separation() {
        // Train directly on profiles (bypassing LinkContext plumbing).
        let mut m = Magellan::default();
        let mk = |n: &str, c: &str| profile(&[("name", n), ("color", c)]);
        let names = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (i, n) in names.iter().enumerate() {
            let a = mk(n, "white");
            xs.push(pair_features(&a, &a));
            ys.push(true);
            let other = mk(names[(i + 1) % names.len()], "red");
            xs.push(pair_features(&a, &other));
            ys.push(false);
        }
        m.forest = Some(RandomForest::fit(&xs, &ys, &ForestConfig::default()));
        let q = mk("golf", "white");
        assert!(m.score(&q, &q) > 0.5);
        assert!(m.score(&q, &mk("hotel", "red")) < 0.5);
    }
}
