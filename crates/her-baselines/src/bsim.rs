//! The Bsim baseline: bounded simulation \[33\].
//!
//! Bounded simulation treats `G_D` as a *graph pattern* and computes its
//! maximum match in `G`: a relation `sim(u) ⊆ V` per pattern vertex such
//! that every edge `u → u'` of the pattern is matched by a path of length
//! ≤ `bound` from each `v ∈ sim(u)` to some `v' ∈ sim(u')`. It is
//! non-parametric (exact label comparison, no scores) and must materialise
//! candidate sets for *every* `G_D` vertex simultaneously — the memory
//! blow-up that makes the paper report OM on all datasets. We reproduce
//! that honestly with an explicit budget: exceeding it returns
//! [`BsimError::OutOfBudget`], which the evaluation reports as OM.

use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Bounded-simulation configuration.
#[derive(Clone, Copy, Debug)]
pub struct BsimConfig {
    /// Maximum path length matching one pattern edge.
    pub bound: usize,
    /// Budget on `Σ_u |sim(u)|` (candidate-set memory).
    pub budget: usize,
}

impl Default for BsimConfig {
    fn default() -> Self {
        Self {
            bound: 2,
            budget: 2_000_000,
        }
    }
}

/// Failure modes of bounded simulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BsimError {
    /// The candidate sets exceeded the memory budget (reported as OM).
    OutOfBudget {
        /// Total candidate entries required.
        needed: usize,
        /// The configured budget.
        budget: usize,
    },
}

impl std::fmt::Display for BsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BsimError::OutOfBudget { needed, budget } => {
                write!(f, "bounded simulation out of memory: needs {needed} candidate entries, budget {budget}")
            }
        }
    }
}

impl std::error::Error for BsimError {}

/// Computes the maximum bounded simulation of pattern `G_D` in `G`.
/// Labels match exactly (interned equality). Returns `sim` or an OM error.
pub fn bounded_simulation(
    gd: &Graph,
    g: &Graph,
    cfg: &BsimConfig,
) -> Result<FxHashMap<VertexId, Vec<VertexId>>, BsimError> {
    // Initial candidates: exact label equality.
    let mut by_label: FxHashMap<her_graph::LabelId, Vec<VertexId>> = FxHashMap::default();
    for v in g.vertices() {
        by_label.entry(g.label(v)).or_default().push(v);
    }
    let mut sim: FxHashMap<VertexId, FxHashSet<VertexId>> = FxHashMap::default();
    let mut total = 0usize;
    for u in gd.vertices() {
        let cands: FxHashSet<VertexId> = by_label
            .get(&gd.label(u))
            .map(|vs| vs.iter().copied().collect())
            .unwrap_or_default();
        total += cands.len();
        if total > cfg.budget {
            return Err(BsimError::OutOfBudget {
                needed: total,
                budget: cfg.budget,
            });
        }
        sim.insert(u, cands);
    }

    // Fixpoint refinement: drop v from sim(u) unless every pattern edge
    // u → u' is witnessed by a ≤bound path from v to some v' ∈ sim(u').
    let mut changed = true;
    while changed {
        changed = false;
        for u in gd.vertices() {
            let children: Vec<VertexId> = gd.children(u).to_vec();
            if children.is_empty() {
                continue;
            }
            let current: Vec<VertexId> = sim[&u].iter().copied().collect();
            for v in current {
                let reach = bounded_reachable(g, v, cfg.bound);
                let ok = children.iter().all(|u_child| {
                    sim[u_child].iter().any(|v_child| reach.contains(v_child))
                });
                if !ok {
                    if let Some(s) = sim.get_mut(&u) {
                        s.remove(&v);
                    }
                    changed = true;
                }
            }
        }
    }

    Ok(sim
        .into_iter()
        .map(|(u, s)| {
            let mut v: Vec<VertexId> = s.into_iter().collect();
            v.sort();
            (u, v)
        })
        .collect())
}

/// Vertices reachable from `v` within `bound` edges (excluding `v` unless
/// on a short cycle).
fn bounded_reachable(g: &Graph, v: VertexId, bound: usize) -> FxHashSet<VertexId> {
    let mut out = FxHashSet::default();
    let mut queue = VecDeque::new();
    queue.push_back((v, 0usize));
    while let Some((cur, d)) = queue.pop_front() {
        if d == bound {
            continue;
        }
        for &c in g.children(cur) {
            if out.insert(c) {
                queue.push_back((c, d + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::{GraphBuilder, Interner};

    /// Pattern: item → white. Graph: item → white (direct) and item → x → white.
    fn graphs() -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let uw = b.add_vertex("white");
        b.add_edge(u, uw, "color");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v1 = b2.add_vertex("item"); // direct
        let w1 = b2.add_vertex("white");
        b2.add_edge(v1, w1, "hasColor");
        let v2 = b2.add_vertex("item"); // 2-hop
        let mid = b2.add_vertex("shade");
        let w2 = b2.add_vertex("white");
        b2.add_edge(v2, mid, "colorInfo");
        b2.add_edge(mid, w2, "value");
        let v3 = b2.add_vertex("item"); // no white at all
        let r = b2.add_vertex("red");
        b2.add_edge(v3, r, "hasColor");
        let (g, interner) = b2.build();
        (gd, g, interner, vec![u, uw], vec![v1, v2, v3])
    }

    #[test]
    fn matches_edges_to_bounded_paths() {
        let (gd, g, _, us, vs) = graphs();
        let sim = bounded_simulation(&gd, &g, &BsimConfig { bound: 2, budget: 1000 }).unwrap();
        let item_sim = &sim[&us[0]];
        assert!(item_sim.contains(&vs[0]), "direct edge");
        assert!(item_sim.contains(&vs[1]), "2-hop path within bound");
        assert!(!item_sim.contains(&vs[2]), "no white descendant");
    }

    #[test]
    fn bound_one_rejects_two_hop() {
        let (gd, g, _, us, vs) = graphs();
        let sim = bounded_simulation(&gd, &g, &BsimConfig { bound: 1, budget: 1000 }).unwrap();
        let item_sim = &sim[&us[0]];
        assert!(item_sim.contains(&vs[0]));
        assert!(!item_sim.contains(&vs[1]));
    }

    #[test]
    fn budget_exceeded_reports_om() {
        let (gd, g, _, _, _) = graphs();
        let err = bounded_simulation(&gd, &g, &BsimConfig { bound: 2, budget: 2 }).unwrap_err();
        match err {
            BsimError::OutOfBudget { needed, budget } => {
                assert!(needed > budget);
                assert_eq!(budget, 2);
            }
        }
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn fixpoint_cascades_removals() {
        // Pattern chain a → b → c; graph has a → b but b lacks c: the
        // removal of b must cascade and empty sim(a).
        let mut bld = GraphBuilder::new();
        let a = bld.add_vertex("a");
        let b = bld.add_vertex("b");
        let c = bld.add_vertex("c");
        bld.add_edge(a, b, "e");
        bld.add_edge(b, c, "e");
        let (gd, i) = bld.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let ga = b2.add_vertex("a");
        let gb = b2.add_vertex("b");
        b2.add_edge(ga, gb, "e");
        let (g, _) = b2.build();
        let sim = bounded_simulation(&gd, &g, &BsimConfig::default()).unwrap();
        assert!(sim[&a].is_empty());
        assert!(sim[&b].is_empty());
        assert!(sim[&c].is_empty());
    }

    #[test]
    fn exact_labels_only() {
        // "White" vs "white": bounded simulation is not semantic.
        let mut bld = GraphBuilder::new();
        let u = bld.add_vertex("White");
        let (gd, i) = bld.build();
        let mut b2 = GraphBuilder::with_interner(i);
        b2.add_vertex("white");
        let (g, _) = b2.build();
        let sim = bounded_simulation(&gd, &g, &BsimConfig::default()).unwrap();
        assert!(sim[&u].is_empty());
    }
}
