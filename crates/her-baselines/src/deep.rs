//! The DeepMatcher (DEEP) baseline \[62\]: embedding features + an MLP.
//!
//! §VII configures DeepMatcher with its "best hybrid model". Our stand-in
//! embeds both profiles (tuple vs 2-hop-flattened vertex) with the hashed
//! sentence encoder, builds `[v1 ⊙ v2, |v1 − v2|, cos]` interaction
//! features, and classifies with a small feed-forward network — the same
//! attribute-summarise-then-compare architecture, minus the GPU.

use crate::common::{EntityLinker, LinkContext, Profile};
use her_embed::mlp::Mlp;
use her_embed::vec_ops::{abs_diff, cos_to_unit, cosine, hadamard};
use her_embed::SentenceModel;
use her_graph::VertexId;
use her_rdb::TupleRef;

/// The DEEP entity linker.
pub struct DeepMatcher {
    encoder: SentenceModel,
    mlp: Mlp,
    dim: usize,
    epochs: usize,
    seed: u64,
    trained: bool,
}

impl DeepMatcher {
    /// Creates an untrained DEEP with `dim`-dimensional embeddings.
    pub fn new(dim: usize, seed: u64) -> Self {
        Self {
            encoder: SentenceModel::new(dim),
            mlp: Mlp::new(&[2 * dim + 1, 32, 1], seed),
            dim,
            epochs: 120,
            seed,
            trained: false,
        }
    }

    fn features(&self, a: &Profile, b: &Profile) -> Vec<f32> {
        let va = self.encoder.embed(&a.text());
        let vb = self.encoder.embed(&b.text());
        let mut f = hadamard(&va, &vb);
        f.extend(abs_diff(&va, &vb));
        f.push(cos_to_unit(cosine(&va, &vb)));
        f
    }

    /// Match probability for a profile pair.
    pub fn score(&self, a: &Profile, b: &Profile) -> f32 {
        let f = self.features(a, b);
        if self.trained {
            self.mlp.predict(&f)
        } else {
            // Untrained fallback: the cosine feature alone.
            f[2 * self.dim]
        }
    }
}

impl Default for DeepMatcher {
    fn default() -> Self {
        Self::new(64, 0xdee9)
    }
}

impl EntityLinker for DeepMatcher {
    fn name(&self) -> &'static str {
        "DEEP"
    }

    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]) {
        if train.is_empty() {
            return;
        }
        let examples: Vec<(Vec<f32>, f32)> = train
            .iter()
            .map(|&(t, v, m)| {
                (
                    self.features(&ctx.tuple_profile(t), &ctx.vertex_profile(v)),
                    if m { 1.0 } else { 0.0 },
                )
            })
            .collect();
        self.mlp.fit(&examples, self.epochs, 0.15, self.seed ^ 0x51);
        self.trained = true;
    }

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        self.score(&ctx.tuple_profile(t), &ctx.vertex_profile(v)) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(fields: &[(&str, &str)]) -> Profile {
        Profile {
            fields: fields
                .iter()
                .map(|(n, v)| ((*n).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    #[test]
    fn untrained_uses_cosine_prior() {
        let d = DeepMatcher::default();
        let a = profile(&[("name", "Dame Shoes white")]);
        let b = profile(&[("name", "Dame Shoes white")]);
        let c = profile(&[("name", "completely unrelated thing")]);
        assert!(d.score(&a, &b) > 0.9);
        assert!(d.score(&a, &c) < d.score(&a, &b));
    }

    #[test]
    fn scores_are_probabilities() {
        let d = DeepMatcher::default();
        let a = profile(&[("x", "alpha beta")]);
        let b = profile(&[("y", "gamma")]);
        let s = d.score(&a, &b);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn training_separates_classes() {
        // Train directly through the internal pieces: pairs of identical
        // texts are positive, disjoint texts negative.
        let mut d = DeepMatcher::new(32, 7);
        let words = ["red shoe", "blue hat", "green coat", "white sock", "black belt"];
        let mut examples = Vec::new();
        for (i, w) in words.iter().enumerate() {
            let a = profile(&[("name", w)]);
            examples.push((d.features(&a, &a), 1.0));
            let other = profile(&[("name", words[(i + 2) % words.len()])]);
            examples.push((d.features(&a, &other), 0.0));
        }
        d.mlp.fit(&examples, 300, 0.2, 9);
        d.trained = true;
        let q = profile(&[("name", "purple scarf")]);
        assert!(d.score(&q, &q) > 0.5);
        let far = profile(&[("name", "orange glove")]);
        assert!(d.score(&q, &far) < d.score(&q, &q));
    }
}
