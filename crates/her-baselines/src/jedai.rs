//! The JedAI baseline \[69\]: rule-based, schema-agnostic ER.
//!
//! §VII configures JedAI with the "budget- and schema-agnostic workflow"
//! using "character 4-grams with TF-IDF weights and cosine similarity",
//! which "requires no parameter fine-tuning". Entities become name-value
//! profiles; similarity is TF-IDF 4-gram cosine over the concatenated
//! values; the decision threshold is the workflow's fixed 0.5.

use crate::common::{EntityLinker, LinkContext, Profile};
use crate::strsim::TfIdf;
use her_graph::VertexId;
use her_rdb::TupleRef;

/// The JedAI entity linker.
pub struct JedAi {
    tfidf: Option<TfIdf>,
    /// Decision threshold (the workflow default).
    pub threshold: f64,
    /// Cap on the number of documents used to fit IDF (keeps the
    /// "no fine-tuning" workflow tractable on large graphs).
    pub fit_cap: usize,
}

impl JedAi {
    /// Creates the default (0.5-threshold) workflow.
    pub fn new() -> Self {
        Self {
            tfidf: None,
            threshold: 0.5,
            fit_cap: 20_000,
        }
    }

    /// Similarity of two profiles in the fitted space (0 until fitted).
    pub fn score(&self, a: &Profile, b: &Profile) -> f64 {
        match &self.tfidf {
            Some(t) => t.cosine(&a.text(), &b.text()),
            None => 0.0,
        }
    }

    /// Fits the TF-IDF space over the corpus of all entity texts.
    pub fn fit(&mut self, ctx: &LinkContext<'_>) {
        let mut corpus: Vec<String> = Vec::new();
        for (t, _) in ctx.db.tuples() {
            corpus.push(ctx.tuple_profile(t).text());
            if corpus.len() >= self.fit_cap / 2 {
                break;
            }
        }
        let budget = self.fit_cap.saturating_sub(corpus.len());
        for v in ctx.g.vertices().take(budget) {
            corpus.push(ctx.vertex_profile(v).text());
        }
        self.tfidf = Some(TfIdf::fit(corpus.iter().map(|s| s.as_str()), 4));
    }
}

impl Default for JedAi {
    fn default() -> Self {
        Self::new()
    }
}

impl EntityLinker for JedAi {
    fn name(&self) -> &'static str {
        "JedAI"
    }

    /// Fits the unsupervised TF-IDF space, then (a strengthening over the
    /// paper's fixed-0.5 workflow) picks the similarity threshold that
    /// maximises F on the training annotations, so the rule-based method
    /// is never handicapped by an ill-calibrated default.
    fn train(&mut self, ctx: &LinkContext<'_>, train: &[(TupleRef, VertexId, bool)]) {
        self.fit(ctx);
        if train.is_empty() {
            return;
        }
        let scored: Vec<(f64, bool)> = train
            .iter()
            .map(|&(t, v, m)| {
                (
                    self.score(&ctx.tuple_profile(t), &ctx.vertex_profile(v)),
                    m,
                )
            })
            .collect();
        let mut best = (self.threshold, -1.0f64);
        for &(s, _) in &scored {
            let th = s - 1e-9;
            let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
            for &(x, m) in &scored {
                match (x >= th, m) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
            let p = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
            let r = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
            let f = if p + r == 0.0 { 0.0 } else { 2.0 * p * r / (p + r) };
            if f > best.1 {
                best = (th, f);
            }
        }
        self.threshold = best.0;
    }

    fn predict(&self, ctx: &LinkContext<'_>, t: TupleRef, v: VertexId) -> bool {
        self.score(&ctx.tuple_profile(t), &ctx.vertex_profile(v)) >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;
    use her_rdb::rdb2rdf::canonicalize_with_interner;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    fn setup() -> (Database, her_rdb::rdb2rdf::CanonicalGraph, her_graph::Graph, Vec<TupleRef>, Vec<VertexId>) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let t1 = db.insert(
            item,
            Tuple::new(vec![Value::str("Dame Basketball Shoes"), Value::str("white")]),
        );
        let t2 = db.insert(
            item,
            Tuple::new(vec![Value::str("Trail Running Boots"), Value::str("green")]),
        );
        let mut b = GraphBuilder::new();
        let v1 = b.add_vertex("item");
        let n1 = b.add_vertex("Dame Basketball Shoes");
        let c1 = b.add_vertex("white");
        b.add_edge(v1, n1, "name");
        b.add_edge(v1, c1, "hasColor");
        let v2 = b.add_vertex("item");
        let n2 = b.add_vertex("Trail Running Boots");
        let c2 = b.add_vertex("green");
        b.add_edge(v2, n2, "name");
        b.add_edge(v2, c2, "hasColor");
        let (g, gi) = b.build();
        let cg = canonicalize_with_interner(&db, gi);
        (db, cg, g, vec![t1, t2], vec![v1, v2])
    }

    #[test]
    fn matches_same_text_entities() {
        let (db, cg, g, ts, vs) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let mut j = JedAi::new();
        j.train(&ctx, &[]);
        assert!(j.predict(&ctx, ts[0], vs[0]));
        assert!(j.predict(&ctx, ts[1], vs[1]));
        assert!(!j.predict(&ctx, ts[0], vs[1]));
        assert!(!j.predict(&ctx, ts[1], vs[0]));
    }

    #[test]
    fn unfitted_scores_zero() {
        let j = JedAi::new();
        let p = Profile {
            fields: vec![("a".into(), "x".into())],
        };
        assert_eq!(j.score(&p, &p), 0.0);
    }

    #[test]
    fn vpair_scans_vertices() {
        let (db, cg, g, ts, vs) = setup();
        let ctx = LinkContext { db: &db, cg: &cg, g: &g };
        let mut j = JedAi::new();
        j.train(&ctx, &[]);
        let found = j.vpair(&ctx, ts[0]);
        assert!(found.contains(&vs[0]));
        assert!(!found.contains(&vs[1]));
    }
}
