//! Decision trees and random forests (the learning core of the Magellan
//! baseline, which the paper configures with "its random forest model with
//! feature tables").
//!
//! CART-style axis-aligned trees with Gini impurity, grown on bootstrap
//! samples with per-split feature subsampling (√d), majority-vote bagging.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A binary decision tree over dense `f64` feature vectors.
#[derive(Clone, Debug)]
pub struct Tree {
    nodes: Vec<Node>,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// Training configuration.
#[derive(Clone, Copy, Debug)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            trees: 16,
            max_depth: 6,
            min_samples: 4,
            seed: 0xf0_7e57,
        }
    }
}

impl Tree {
    fn fit(
        xs: &[Vec<f64>],
        ys: &[bool],
        idx: &[usize],
        cfg: &ForestConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut nodes = Vec::new();
        Self::grow(xs, ys, idx, cfg, rng, 0, &mut nodes);
        Tree { nodes }
    }

    fn grow(
        xs: &[Vec<f64>],
        ys: &[bool],
        idx: &[usize],
        cfg: &ForestConfig,
        rng: &mut StdRng,
        depth: usize,
        nodes: &mut Vec<Node>,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| ys[i]).count();
        let prob = if idx.is_empty() {
            0.5
        } else {
            pos as f64 / idx.len() as f64
        };
        let pure = pos == 0 || pos == idx.len();
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples || pure {
            nodes.push(Node::Leaf { prob });
            return nodes.len() - 1;
        }
        let d = xs[0].len();
        // √d feature subsample per split.
        let m = ((d as f64).sqrt().ceil() as usize).clamp(1, d);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        for _ in 0..m {
            let f = rng.gen_range(0..d);
            // Candidate thresholds: midpoints of a few sampled values.
            let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            for w in vals.windows(2) {
                let t = (w[0] + w[1]) / 2.0;
                let g = split_gini(xs, ys, idx, f, t);
                if best.is_none_or(|(_, _, bg)| g < bg) {
                    best = Some((f, t, g));
                }
            }
        }
        let (feature, threshold) = match best {
            Some((f, t, _)) => (f, t),
            None => {
                nodes.push(Node::Leaf { prob });
                return nodes.len() - 1;
            }
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| xs[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            nodes.push(Node::Leaf { prob });
            return nodes.len() - 1;
        }
        let me = nodes.len();
        nodes.push(Node::Leaf { prob }); // placeholder
        let left = Self::grow(xs, ys, &li, cfg, rng, depth + 1, nodes);
        let right = Self::grow(xs, ys, &ri, cfg, rng, depth + 1, nodes);
        nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }

    /// Probability of the positive class.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }
}

fn split_gini(xs: &[Vec<f64>], ys: &[bool], idx: &[usize], f: usize, t: f64) -> f64 {
    let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
    for &i in idx {
        let left = xs[i][f] <= t;
        match (left, ys[i]) {
            (true, true) => lp += 1,
            (true, false) => ln += 1,
            (false, true) => rp += 1,
            (false, false) => rn += 1,
        }
    }
    let gini = |p: usize, n: usize| {
        let total = p + n;
        if total == 0 {
            return 0.0;
        }
        let fp = p as f64 / total as f64;
        2.0 * fp * (1.0 - fp)
    };
    let total = idx.len() as f64;
    ((lp + ln) as f64 / total) * gini(lp, ln) + ((rp + rn) as f64 / total) * gini(rp, rn)
}

/// A bagged random forest.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<Tree>,
}

impl RandomForest {
    /// Fits `cfg.trees` trees on bootstrap samples of `(xs, ys)`.
    ///
    /// # Panics
    /// Panics on empty or ragged training data.
    pub fn fit(xs: &[Vec<f64>], ys: &[bool], cfg: &ForestConfig) -> Self {
        assert!(!xs.is_empty(), "need training data");
        assert_eq!(xs.len(), ys.len());
        let d = xs[0].len();
        assert!(xs.iter().all(|x| x.len() == d), "ragged feature vectors");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let trees = (0..cfg.trees)
            .map(|_| {
                let idx: Vec<usize> = (0..xs.len()).map(|_| rng.gen_range(0..xs.len())).collect();
                Tree::fit(xs, ys, &idx, cfg, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean positive-class probability across trees.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Hard classification at 0.5.
    pub fn classify(&self, x: &[f64]) -> bool {
        self.predict(x) >= 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn threshold_data() -> (Vec<Vec<f64>>, Vec<bool>) {
        // Positive iff feature 0 > 0.5 (feature 1 is noise).
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a: f64 = rng.gen();
            let b: f64 = rng.gen();
            xs.push(vec![a, b]);
            ys.push(a > 0.5);
        }
        (xs, ys)
    }

    #[test]
    fn learns_simple_threshold() {
        let (xs, ys) = threshold_data();
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        assert!(f.classify(&[0.9, 0.1]));
        assert!(!f.classify(&[0.1, 0.9]));
        assert!(f.predict(&[0.95, 0.5]) > 0.8);
        assert!(f.predict(&[0.05, 0.5]) < 0.2);
    }

    #[test]
    fn learns_conjunction() {
        // Positive iff both features high — needs depth ≥ 2.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let a = i as f64 / 20.0;
                let b = j as f64 / 20.0;
                xs.push(vec![a, b]);
                ys.push(a > 0.6 && b > 0.6);
            }
        }
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        assert!(f.classify(&[0.9, 0.9]));
        assert!(!f.classify(&[0.9, 0.1]));
        assert!(!f.classify(&[0.1, 0.9]));
    }

    #[test]
    fn deterministic_given_seed() {
        let (xs, ys) = threshold_data();
        let cfg = ForestConfig::default();
        let f1 = RandomForest::fit(&xs, &ys, &cfg);
        let f2 = RandomForest::fit(&xs, &ys, &cfg);
        assert_eq!(f1.predict(&[0.42, 0.42]), f2.predict(&[0.42, 0.42]));
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let xs = vec![vec![0.1], vec![0.2], vec![0.3]];
        let ys = vec![true, true, true];
        let f = RandomForest::fit(&xs, &ys, &ForestConfig::default());
        assert!(f.predict(&[0.15]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "training data")]
    fn empty_training_panics() {
        let _ = RandomForest::fit(&[], &[], &ForestConfig::default());
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_features_panic() {
        let _ = RandomForest::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[true, false],
            &ForestConfig::default(),
        );
    }
}
