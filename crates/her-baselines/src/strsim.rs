//! String similarity primitives shared by the rule-based and feature-based
//! baselines.

use her_graph::hash::FxHashMap;

/// Levenshtein edit distance (iterative two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Levenshtein similarity in `[0, 1]`: `1 − dist / max_len`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaccard similarity of whitespace-token sets (lowercased).
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: std::collections::BTreeSet<String> =
        a.split_whitespace().map(|t| t.to_lowercase()).collect();
    let sb: std::collections::BTreeSet<String> =
        b.split_whitespace().map(|t| t.to_lowercase()).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Character n-grams of a lowercased string (overlapping, no padding).
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = s.to_lowercase().chars().collect();
    if chars.len() < n {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![chars.iter().collect()];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// A TF-IDF vector space over character n-grams, built from a corpus of
/// documents (JedAI's "character 4-grams with TF-IDF weights and cosine
/// similarity" configuration).
#[derive(Clone, Debug)]
pub struct TfIdf {
    n: usize,
    idf: FxHashMap<String, f64>,
    docs: usize,
}

impl TfIdf {
    /// Fits IDF weights on a corpus of documents.
    pub fn fit<'a>(corpus: impl IntoIterator<Item = &'a str>, n: usize) -> Self {
        let mut df: FxHashMap<String, usize> = FxHashMap::default();
        let mut docs = 0usize;
        for doc in corpus {
            docs += 1;
            let mut seen = std::collections::BTreeSet::new();
            for g in char_ngrams(doc, n) {
                seen.insert(g);
            }
            for g in seen {
                *df.entry(g).or_insert(0) += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|(g, d)| (g, ((docs as f64 + 1.0) / (d as f64 + 1.0)).ln() + 1.0))
            .collect();
        Self { n, idf, docs }
    }

    /// Number of fitted documents.
    pub fn corpus_size(&self) -> usize {
        self.docs
    }

    /// The sparse TF-IDF vector of a document.
    pub fn vector(&self, doc: &str) -> FxHashMap<String, f64> {
        let mut tf: FxHashMap<String, f64> = FxHashMap::default();
        for g in char_ngrams(doc, self.n) {
            *tf.entry(g).or_insert(0.0) += 1.0;
        }
        for (g, w) in tf.iter_mut() {
            // Unknown n-grams get the maximal IDF (as rare as possible).
            let idf = self
                .idf
                .get(g)
                .copied()
                .unwrap_or_else(|| (self.docs as f64 + 1.0).ln() + 1.0);
            *w *= idf;
        }
        tf
    }

    /// Cosine similarity of two documents in the fitted space.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vector(a);
        let vb = self.vector(b);
        let mut dot = 0.0;
        for (g, wa) in &va {
            if let Some(wb) = vb.get(g) {
                dot += wa * wb;
            }
        }
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_sim_range() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("a", "a"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("Adidas", "Addidas");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn jaccard_token_sets() {
        assert_eq!(token_jaccard("red shoe", "red shoe"), 1.0);
        assert_eq!(token_jaccard("red shoe", "blue hat"), 0.0);
        assert!((token_jaccard("red shoe", "RED hat") - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(token_jaccard("", ""), 1.0);
    }

    #[test]
    fn ngrams_extraction() {
        assert_eq!(char_ngrams("abcd", 3), vec!["abc", "bcd"]);
        assert_eq!(char_ngrams("ab", 4), vec!["ab"]); // shorter than n
        assert!(char_ngrams("", 4).is_empty());
    }

    #[test]
    fn tfidf_identical_docs_score_one() {
        let t = TfIdf::fit(["dame shoes", "running shoes", "red hat"], 4);
        assert!((t.cosine("dame shoes", "dame shoes") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tfidf_discriminates() {
        let t = TfIdf::fit(["dame basketball shoes", "running shoes", "red hat"], 4);
        let close = t.cosine("dame basketball shoes", "dame basketball shoes d7");
        let far = t.cosine("dame basketball shoes", "red hat");
        assert!(close > far);
        assert!(close > 0.5);
        assert!(far < 0.2);
    }

    #[test]
    fn tfidf_downweights_common_grams() {
        // "shoe" appears in every doc; distinctive prefix matters more.
        let t = TfIdf::fit(["alpha shoes", "bravo shoes", "gamma shoes"], 4);
        let common_only = t.cosine("alpha shoes", "bravo shoes");
        let distinctive = t.cosine("alpha shoes", "alpha boots");
        assert!(distinctive > common_only);
    }

    #[test]
    fn tfidf_empty_docs() {
        let t = TfIdf::fit(["x"], 4);
        assert_eq!(t.cosine("", "anything"), 0.0);
    }
}
