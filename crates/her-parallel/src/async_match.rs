//! Asynchronous `PAllMatch` (§VI-B, Remark 1).
//!
//! The paper notes that `PAllMatch` "can work asynchronously" under the
//! adaptive asynchronous parallel model (AAP \[34\]): workers need not wait
//! at superstep barriers — each processes verification requests and
//! invalidations as they arrive. Because invalidation is monotone (a pair
//! flips `true → false` at most once at its owner), the fixpoint is the
//! same as the bulk-synchronous run's.
//!
//! Workers run on OS threads connected by `crossbeam` channels.
//!
//! # Termination
//!
//! Termination uses an in-flight message counter plus an *initial-pass
//! barrier*. A message is accounted *before* it is sent and released
//! *after* it is fully processed (including the sends it triggers), so the
//! counter can never read zero while work is still implied. The barrier —
//! a count of workers that have finished their first local pass — closes
//! the startup race where an early worker observes `in_flight == 0`
//! before a slower peer's initial pass has produced its first request.
//! Quiescence is `started == n && in_flight == 0`.
//!
//! A *liveness watchdog* guards the counter: if `in_flight > 0` but no
//! worker has made progress for [`crate::ParallelConfig::watchdog`], the
//! run aborts and returns what it has, rather than hanging on a message
//! that will never arrive (see [`crate::fault::MessageFate::BlackHole`]).
//!
//! # Worker recovery
//!
//! Each worker's event loop runs under `catch_unwind`. On a panic the
//! thread survives as a *tombstone*: it reports the death to the
//! supervisor (the spawning thread), which reassigns the dead fragment to
//! survivors ([`crate::partition::SharedPartition::reassign`]) and sends
//! them `Adopt` messages (the dead worker's candidate roots, to be
//! re-verified) plus a `PeerDied` broadcast that makes every survivor
//! replay its pending verification requests to the new owners. The
//! tombstone then drains its queue, forwarding late requests to the new
//! owners so the in-flight accounting stays exact. Monotone invalidation
//! makes all of this safe — see the crate docs for the argument.

use crate::fault::{FaultPlan, MessageFate};
use crate::pallmatch::ParallelConfig;
use crate::partition::{partition_round_robin, SharedPartition};
use her_core::index::InvertedIndex;
use her_core::paramatch::{Matcher, MatcherOptions, PairKey};
use her_core::params::Params;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, VertexId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone)]
enum Msg {
    /// "I assumed (u, v); please verify" — carries the requester id.
    Request { pair: PairKey, from: usize },
    /// "(u, v) is invalid."
    Invalid { pair: PairKey },
    /// Recovery: take ownership of `vertices` and re-verify `roots`.
    Adopt {
        vertices: Arc<FxHashSet<VertexId>>,
        roots: Vec<PairKey>,
    },
    /// Recovery: a peer died; replay pending requests on `reassigned`.
    PeerDied {
        reassigned: Arc<FxHashSet<VertexId>>,
    },
}

/// Worker → supervisor notices.
enum Ctrl {
    /// `id` panicked; `roots` are its candidate pairs needing a new home.
    Died { id: usize, roots: Vec<PairKey> },
    /// An `Adopt` reached a worker that had itself died; its roots need
    /// re-homing to the current owners.
    Orphans { roots: Vec<PairKey> },
}

/// Statistics of an asynchronous run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncStats {
    /// Verification requests exchanged.
    pub requests: u64,
    /// Invalidations exchanged.
    pub invalidations: u64,
    /// Workers lost to panics and recovered from.
    pub deaths: usize,
    /// True when the liveness watchdog aborted the run (results partial).
    pub aborted: bool,
}

/// Send attempts per message before the transport escalates to a worker
/// panic (and thereby into the recovery path).
const MAX_SEND_ATTEMPTS: usize = 8;

fn backoff(attempt: usize) -> Duration {
    Duration::from_micros(50u64 << attempt.min(6))
}

/// Counters and flags shared by workers, tombstones and the supervisor.
struct Shared {
    in_flight: AtomicI64,
    /// Workers (dead or alive) whose initial pass is accounted for.
    started: AtomicUsize,
    /// Milliseconds since `t0` of the last observed progress.
    last_progress: AtomicU64,
    abort: AtomicBool,
    t0: Instant,
    n: usize,
}

impl Shared {
    fn touch(&self) {
        self.last_progress
            .store(self.t0.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn stalled_for(&self) -> Duration {
        let last = self.last_progress.load(Ordering::Relaxed);
        self.t0
            .elapsed()
            .saturating_sub(Duration::from_millis(last))
    }

    fn quiescent(&self) -> bool {
        self.started.load(Ordering::SeqCst) == self.n
            && self.in_flight.load(Ordering::SeqCst) == 0
    }
}

struct AsyncWorker<'g> {
    id: usize,
    matcher: Matcher<'g>,
    part: SharedPartition,
    fault: FaultPlan,
    senders: Vec<crossbeam::channel::Sender<Msg>>,
    shared: Arc<Shared>,
    roots: Vec<PairKey>,
    requested: FxHashSet<PairKey>,
    served: FxHashMap<PairKey, Vec<usize>>,
    notified: FxHashSet<(PairKey, usize)>,
    /// Sends held back by an injected delay fault (already accounted in
    /// the in-flight counter; flushed when the queue runs dry).
    deferred: Vec<(usize, Msg)>,
    stats: AsyncStats,
    /// Event counter: the initial pass is event 1, each processed message
    /// one more — the async analogue of a superstep for kill faults.
    events: usize,
    initial_done: bool,
    /// In-flight slots held by the message currently being processed;
    /// released by the tombstone if a panic interrupts processing.
    pending_sub: i64,
}

impl<'g> AsyncWorker<'g> {
    fn eval(&mut self, u: VertexId, v: VertexId) {
        self.fault.maybe_poison((u, v));
        let _ = self.matcher.is_match(u, v);
    }

    /// Bumps a `fault.*` counter (injected-fault paths only, never hot).
    fn fault_count(&self, name: &str) {
        if let Some(obs) = self.matcher.obs() {
            // #[allow(her::unregistered_metric)] — forwards literal `fault.*` names, all in names::ALL
            obs.registry.counter(name).inc();
        }
    }

    /// Accounts and sends one protocol message through the fault plan,
    /// retrying dropped attempts with exponential backoff. Exhausting the
    /// retries panics — the death is then handled like any other.
    fn send(&mut self, dest: usize, msg: Msg) {
        if !self.fault.is_armed() {
            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
            if let Some(s) = self.senders.get(dest) {
                let _ = s.send(msg);
            }
            return;
        }
        for attempt in 0..MAX_SEND_ATTEMPTS {
            match self.fault.fate(self.id) {
                MessageFate::Deliver => {
                    self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    if let Some(s) = self.senders.get(dest) {
                        let _ = s.send(msg);
                    }
                    return;
                }
                MessageFate::Duplicate => {
                    self.fault_count("fault.duplicated");
                    self.shared.in_flight.fetch_add(2, Ordering::SeqCst);
                    if let Some(s) = self.senders.get(dest) {
                        let _ = s.send(msg.clone());
                        let _ = s.send(msg);
                    }
                    return;
                }
                MessageFate::Delay => {
                    self.fault_count("fault.delayed");
                    self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    self.deferred.push((dest, msg));
                    return;
                }
                MessageFate::BlackHole => {
                    // Accounted but never sent: the counter cannot drain,
                    // which is exactly what the watchdog exists to catch.
                    self.fault_count("fault.blackholed");
                    self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                MessageFate::Drop => {
                    self.fault_count("fault.dropped");
                    std::thread::sleep(backoff(attempt));
                }
            }
        }
        panic!("send to worker {dest} failed after {MAX_SEND_ATTEMPTS} attempts");
    }

    /// Re-evaluates everything an adoption purge may have touched: our own
    /// roots and every pair served for others.
    fn reverify_all(&mut self) {
        let todo: Vec<PairKey> = self
            .roots
            .iter()
            .chain(self.served.keys())
            .copied()
            .collect();
        for (u, v) in todo {
            self.eval(u, v);
        }
    }

    /// Drains fresh assumptions into requests and serve-verdicts into
    /// invalidations.
    fn flush(&mut self) {
        loop {
            let mut self_owned: Vec<PairKey> = Vec::new();
            for pair in self.matcher.take_new_assumptions() {
                if self.requested.insert(pair) {
                    let owner = self.part.owner(pair.1);
                    if owner == self.id {
                        // An adoption raced ahead of this assumption: we
                        // own the vertex now, so verify it ourselves.
                        self.requested.remove(&pair);
                        self_owned.push(pair);
                    } else {
                        self.stats.requests += 1;
                        self.send(
                            owner,
                            Msg::Request {
                                pair,
                                from: self.id,
                            },
                        );
                    }
                }
            }
            if self_owned.is_empty() {
                break;
            }
            // Self-heal: adopt the vertices and re-verify authoritatively.
            let vs: FxHashSet<VertexId> = self_owned.iter().map(|p| p.1).collect();
            self.matcher.adopt_border(&vs);
            for (u, v) in self_owned {
                self.eval(u, v);
            }
            self.reverify_all();
            // The re-verification may assume about further borders; loop.
            // Terminates: each pass strictly shrinks the border set.
        }
        let mut newly: Vec<(PairKey, usize)> = Vec::new();
        for (pair, requesters) in &self.served {
            if self.matcher.cached(pair.0, pair.1) == Some(false) {
                for &r in requesters {
                    if !self.notified.contains(&(*pair, r)) {
                        newly.push((*pair, r));
                    }
                }
            }
        }
        for (pair, r) in newly {
            if self.notified.insert((pair, r)) {
                self.stats.invalidations += 1;
                self.send(r, Msg::Invalid { pair });
            }
        }
    }

    fn process(&mut self, msg: Msg) {
        match msg {
            Msg::Invalid { pair } => self.matcher.apply_invalidation(pair.0, pair.1),
            Msg::Request { pair, from } => {
                self.eval(pair.0, pair.1);
                self.served.entry(pair).or_default().push(from);
            }
            Msg::Adopt { vertices, roots } => {
                self.matcher.adopt_border(&vertices);
                self.requested.retain(|p| !vertices.contains(&p.1));
                for r in roots {
                    if !self.roots.contains(&r) {
                        self.roots.push(r);
                    }
                }
                self.reverify_all();
            }
            Msg::PeerDied { reassigned } => {
                let replay: Vec<PairKey> = self
                    .requested
                    .iter()
                    .filter(|p| reassigned.contains(&p.1))
                    .copied()
                    .collect();
                for pair in replay {
                    let owner = self.part.owner(pair.1);
                    if owner == self.id {
                        // We adopted the vertex; the Adopt (ordered before
                        // this broadcast) already re-verified it.
                        self.requested.remove(&pair);
                    } else {
                        self.stats.requests += 1;
                        self.send(
                            owner,
                            Msg::Request {
                                pair,
                                from: self.id,
                            },
                        );
                    }
                }
            }
        }
        self.flush();
    }

    /// The worker's event loop: initial local pass, then message-driven
    /// IncPSim until global quiescence (or abort).
    fn run(&mut self, rx: &crossbeam::channel::Receiver<Msg>) {
        self.events = 1;
        self.fault.maybe_kill(self.id, self.events);
        for (u, v) in self.roots.clone() {
            self.eval(u, v);
        }
        self.flush();
        self.initial_done = true;
        self.shared.started.fetch_add(1, Ordering::SeqCst);
        self.shared.touch();
        loop {
            if self.shared.abort.load(Ordering::Relaxed) {
                break;
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(msg) => {
                    self.pending_sub = 1;
                    self.events += 1;
                    self.fault.maybe_kill(self.id, self.events);
                    self.process(msg);
                    self.shared.touch();
                    self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                    self.pending_sub = 0;
                }
                Err(_) => {
                    if !self.deferred.is_empty() {
                        // Release delay-faulted sends (already accounted).
                        for (dest, msg) in std::mem::take(&mut self.deferred) {
                            let _ = self.senders[dest].send(msg);
                        }
                        continue;
                    }
                    if self.shared.quiescent() {
                        break;
                    }
                }
            }
        }
    }

    /// Post-panic tombstone: report the death (account-before-release, so
    /// the counter never reads zero mid-recovery), then keep the channel
    /// drained — forwarding late requests to the vertices' new owners —
    /// until global quiescence.
    fn tombstone(
        &mut self,
        rx: &crossbeam::channel::Receiver<Msg>,
        ctrl: &crossbeam::channel::Sender<Ctrl>,
        retired: &AtomicBool,
    ) {
        self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
        let _ = ctrl.send(Ctrl::Died {
            id: self.id,
            roots: std::mem::take(&mut self.roots),
        });
        if !self.initial_done {
            self.initial_done = true;
            self.shared.started.fetch_add(1, Ordering::SeqCst);
        }
        if self.pending_sub > 0 {
            self.shared.in_flight.fetch_sub(self.pending_sub, Ordering::SeqCst);
            self.pending_sub = 0;
        }
        self.shared.touch();
        // Wait until the supervisor has reassigned our vertices, so
        // forwards observe the post-recovery owners.
        while !retired.load(Ordering::Acquire) {
            if self.shared.abort.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
        loop {
            if self.shared.abort.load(Ordering::Relaxed) {
                return;
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(msg) => {
                    self.shared.touch();
                    match msg {
                        Msg::Request { pair, from } => {
                            // Forward 1:1 — the message keeps its slot.
                            let dest = self.part.owner(pair.1);
                            let _ = self.senders[dest].send(Msg::Request { pair, from });
                        }
                        Msg::Adopt { roots, .. } => {
                            self.shared.in_flight.fetch_add(1, Ordering::SeqCst);
                            let _ = ctrl.send(Ctrl::Orphans { roots });
                            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                        Msg::Invalid { .. } | Msg::PeerDied { .. } => {
                            // Addressed to our discarded state: moot.
                            self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
                Err(_) => {
                    if self.shared.quiescent() {
                        return;
                    }
                }
            }
        }
    }
}

/// Asynchronous `AllParaMatch`: same inputs and result as
/// [`crate::pallmatch()`], but workers communicate through channels without
/// superstep barriers. Tolerates worker panics (see the module docs); on a
/// watchdog abort the result is partial and [`AsyncStats::aborted`] is set.
pub fn pallmatch_async(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
) -> (Vec<PairKey>, AsyncStats) {
    let n = cfg.workers.max(1);
    let fixed = partition_round_robin(g, n);
    let borders = fixed.all_borders(g);
    let part = SharedPartition::new(fixed.clone());
    let sel_g = crate::pallmatch::precompute_selections_pub(g, params, n);
    let sel_d = crate::pallmatch::precompute_selections_pub(gd, params, n);

    // Shared score layer, pre-warmed exactly as in the BSP engine so the
    // asynchronous workers never embed inside their event loops.
    let shared_scores = cfg.shared_scores.then(|| {
        crate::pallmatch::build_shared_scores(gd, g, interner, params, [&sel_d, &sel_g], cfg, n)
    });

    // Candidate roots per worker (as in the BSP version).
    let index = cfg.use_blocking.then(|| InvertedIndex::build(g, interner));
    let sigma = params.thresholds.sigma;
    let mut roots_per_worker: Vec<Vec<PairKey>> = vec![Vec::new(); n];
    {
        let mut probe = Matcher::with_options(
            gd,
            g,
            interner,
            params,
            MatcherOptions {
                obs: cfg.obs.clone(),
                shared_scores: shared_scores.clone(),
                ..Default::default()
            },
        );
        for &u in tuple_vertices {
            let pool: Vec<VertexId> = match &index {
                Some(idx) => {
                    idx.candidates(&her_core::index::blocking_query(gd, interner, u))
                }
                None => g.vertices().collect(),
            };
            for v in pool {
                if probe.hv_pair(u, v) >= sigma {
                    roots_per_worker[fixed.owner(v)].push((u, v));
                }
            }
        }
    }
    for roots in roots_per_worker.iter_mut() {
        roots.sort_by_key(|&(u, v)| (gd.degree(u) + g.degree(v), u, v));
    }

    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..n).map(|_| crossbeam::channel::unbounded::<Msg>()).unzip();
    let (ctrl_tx, ctrl_rx) = crossbeam::channel::unbounded::<Ctrl>();
    let shared = Arc::new(Shared {
        in_flight: AtomicI64::new(0),
        started: AtomicUsize::new(0),
        last_progress: AtomicU64::new(0),
        abort: AtomicBool::new(false),
        t0: Instant::now(),
        n,
    });
    let retired: Vec<Arc<AtomicBool>> =
        (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();

    let (results, deaths, aborted) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|id| {
                let rx = receivers[id].clone();
                let ctrl = ctrl_tx.clone();
                let retired = Arc::clone(&retired[id]);
                let mut worker = AsyncWorker {
                    id,
                    matcher: Matcher::with_options(
                        gd,
                        g,
                        interner,
                        params,
                        MatcherOptions {
                            obs: cfg.obs.clone(),
                            shared_scores: shared_scores.clone(),
                            ..Default::default()
                        },
                    )
                    .with_border(borders[id].clone())
                    .with_selections(sel_d.clone(), sel_g.clone()),
                    part: part.clone(),
                    fault: cfg.fault.clone(),
                    senders: senders.clone(),
                    shared: Arc::clone(&shared),
                    roots: std::mem::take(&mut roots_per_worker[id]),
                    requested: FxHashSet::default(),
                    served: FxHashMap::default(),
                    notified: FxHashSet::default(),
                    deferred: Vec::new(),
                    stats: AsyncStats::default(),
                    events: 0,
                    initial_done: false,
                    pending_sub: 0,
                };
                scope.spawn(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(|| worker.run(&rx)));
                    if outcome.is_err() {
                        worker.tombstone(&rx, &ctrl, &retired);
                        return (Vec::new(), worker.stats);
                    }
                    let mut out = Vec::new();
                    for &(u, v) in &worker.roots {
                        if worker.matcher.cached(u, v) == Some(true) {
                            out.push((u, v));
                        }
                    }
                    (out, worker.stats)
                })
            })
            .collect();

        // Supervisor: performs recovery on death notices and watches
        // liveness until global quiescence.
        let mut deaths = 0usize;
        let mut alive = vec![true; n];
        loop {
            match ctrl_rx.recv_timeout(Duration::from_millis(1)) {
                Ok(Ctrl::Died { id, roots }) => {
                    deaths += 1;
                    alive[id] = false;
                    if let Some(obs) = &cfg.obs {
                        obs.registry.counter("async.worker_deaths").inc();
                        obs.tracer
                            .event("async.worker_death", &format!("worker={id}"));
                    }
                    let survivors: Vec<usize> =
                        (0..n).filter(|&i| alive[i]).collect();
                    assert!(!survivors.is_empty(), "all workers died; cannot recover");
                    let groups = part.reassign(id, &survivors);
                    let reassigned: Arc<FxHashSet<VertexId>> = Arc::new(
                        groups.iter().flat_map(|(_, vs)| vs.iter().copied()).collect(),
                    );
                    for (owner, vs) in groups {
                        let rts: Vec<PairKey> = roots
                            .iter()
                            .filter(|p| part.owner(p.1) == owner)
                            .copied()
                            .collect();
                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                        let _ = senders[owner].send(Msg::Adopt {
                            vertices: Arc::new(vs.into_iter().collect()),
                            roots: rts,
                        });
                    }
                    for &s in &survivors {
                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                        let _ = senders[s].send(Msg::PeerDied {
                            reassigned: Arc::clone(&reassigned),
                        });
                    }
                    retired[id].store(true, Ordering::Release);
                    if let Some(obs) = &cfg.obs {
                        obs.registry.counter("async.recoveries").inc();
                        obs.tracer.event(
                            "async.recovery",
                            &format!("worker={id} survivors={}", survivors.len()),
                        );
                    }
                    shared.touch();
                    // Release the Died notice only now: recovery messages
                    // are accounted, so the counter stayed positive.
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Ok(Ctrl::Orphans { roots }) => {
                    for &(u, v) in &roots {
                        let owner = part.owner(v);
                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                        let _ = senders[owner].send(Msg::Adopt {
                            vertices: Arc::new(FxHashSet::default()),
                            roots: vec![(u, v)],
                        });
                    }
                    shared.touch();
                    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                Err(_) => {
                    if shared.quiescent() {
                        break;
                    }
                    if shared.in_flight.load(Ordering::SeqCst) > 0
                        && shared.stalled_for() > cfg.watchdog
                    {
                        // Liveness watchdog: something is accounted but
                        // will never be processed. Abort rather than hang.
                        if let Some(obs) = &cfg.obs {
                            obs.registry.counter("async.watchdog_aborts").inc();
                            obs.tracer.event("async.watchdog_abort", "");
                        }
                        shared.abort.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
        }
        let results: Vec<(Vec<PairKey>, AsyncStats)> =
            handles.into_iter().map(|h| h.join().expect("panic escaped catch_unwind")).collect();
        (results, deaths, shared.abort.load(Ordering::SeqCst))
    });

    let mut all = Vec::new();
    let mut stats = AsyncStats {
        deaths,
        aborted,
        ..Default::default()
    };
    for (r, s) in results {
        all.extend(r);
        stats.requests += s.requests;
        stats.invalidations += s.invalidations;
    }
    all.sort();
    all.dedup();
    if let Some(obs) = &cfg.obs {
        let r = &obs.registry;
        r.counter("async.runs").inc();
        r.counter("async.requests").add(stats.requests);
        r.counter("async.invalidations").add(stats.invalidations);
    }
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pallmatch::pallmatch;
    use her_core::params::Thresholds;
    use her_graph::GraphBuilder;

    /// Same fixture as the BSP tests: entities with non-leaf brand
    /// sub-entities so cross-worker traffic occurs.
    fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>) {
        let colors = ["white", "red", "blue", "green"];
        let brands = ["Acme", "Globex", "Initech"];
        let countries = ["Germany", "Vietnam", "Japan"];
        let build = |shared: Option<Interner>| {
            let mut b = match shared {
                Some(i) => GraphBuilder::with_interner(i),
                None => GraphBuilder::new(),
            };
            let mut roots = Vec::new();
            for i in 0..m {
                let root = b.add_vertex("item");
                let c = b.add_vertex(colors[i % colors.len()]);
                let name = b.add_vertex(&format!("entity {i}"));
                let brand = b.add_vertex(brands[i % brands.len()]);
                let country = b.add_vertex(countries[i % countries.len()]);
                b.add_edge(root, c, "color");
                b.add_edge(root, name, "name");
                b.add_edge(root, brand, "brand");
                b.add_edge(brand, country, "country");
                roots.push(root);
            }
            let (g, i) = b.build();
            (g, i, roots)
        };
        let (gd, i1, us) = build(None);
        let (g, interner, _) = build(Some(i1));
        (gd, g, interner, us)
    }

    #[test]
    fn async_equals_bsp() {
        let (gd, g, interner, us) = dataset(10);
        let p = Params::untrained(64, 91).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let cfg = ParallelConfig {
            workers: 3,
            use_blocking: false,
            ..Default::default()
        };
        let (bsp, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);
        let (asynchronous, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg);
        assert_eq!(asynchronous, bsp);
        assert_eq!(stats.deaths, 0);
        assert!(!stats.aborted);
    }

    #[test]
    fn async_single_worker() {
        let (gd, g, interner, us) = dataset(6);
        let p = Params::untrained(64, 93).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let cfg = ParallelConfig {
            workers: 1,
            use_blocking: false,
            ..Default::default()
        };
        let (r, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg);
        assert!(!r.is_empty());
        assert_eq!(stats.requests, 0, "single worker has no remote borders");
    }

    #[test]
    fn async_deterministic_result_across_worker_counts() {
        let (gd, g, interner, us) = dataset(8);
        let p = Params::untrained(64, 95).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let mut results = Vec::new();
        for workers in [1, 2, 4] {
            let cfg = ParallelConfig {
                workers,
                use_blocking: false,
                ..Default::default()
            };
            results.push(pallmatch_async(&gd, &g, &interner, &p, &us, &cfg).0);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }
}
