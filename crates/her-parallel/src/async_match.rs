//! Asynchronous `PAllMatch` (§VI-B, Remark 1).
//!
//! The paper notes that `PAllMatch` "can work asynchronously" under the
//! adaptive asynchronous parallel model (AAP \[34\]): workers need not wait
//! at superstep barriers — each processes verification requests and
//! invalidations as they arrive. Because invalidation is monotone (a pair
//! flips `true → false` at most once at its owner), the fixpoint is the
//! same as the bulk-synchronous run's.
//!
//! Workers run on OS threads connected by `crossbeam` channels.
//! Termination uses an in-flight message counter: a message is accounted
//! *before* it is sent and released *after* it is processed, so
//! `in_flight == 0` with all workers idle implies global quiescence.

use crate::partition::partition_round_robin;
use crate::pallmatch::ParallelConfig;
use her_core::index::InvertedIndex;
use her_core::paramatch::{Matcher, PairKey};
use her_core::params::Params;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, VertexId};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum Msg {
    Request { pair: PairKey, from: usize },
    Invalid { pair: PairKey },
}

/// Statistics of an asynchronous run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncStats {
    /// Verification requests exchanged.
    pub requests: u64,
    /// Invalidations exchanged.
    pub invalidations: u64,
}

/// Asynchronous `AllParaMatch`: same inputs and result as
/// [`crate::pallmatch()`], but workers communicate through channels without
/// superstep barriers.
pub fn pallmatch_async(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
) -> (Vec<PairKey>, AsyncStats) {
    let n = cfg.workers.max(1);
    let part = partition_round_robin(g, n);
    let borders = part.all_borders(g);
    let sel_g = crate::pallmatch::precompute_selections_pub(g, params, n);
    let sel_d = crate::pallmatch::precompute_selections_pub(gd, params, n);

    // Candidate roots per worker (as in the BSP version).
    let index = cfg.use_blocking.then(|| InvertedIndex::build(g, interner));
    let sigma = params.thresholds.sigma;
    let mut roots_per_worker: Vec<Vec<PairKey>> = vec![Vec::new(); n];
    {
        let mut probe = Matcher::new(gd, g, interner, params);
        for &u in tuple_vertices {
            let pool: Vec<VertexId> = match &index {
                Some(idx) => {
                    idx.candidates(&her_core::index::blocking_query(gd, interner, u))
                }
                None => g.vertices().collect(),
            };
            for v in pool {
                if probe.hv_pair(u, v) >= sigma {
                    roots_per_worker[part.owner(v)].push((u, v));
                }
            }
        }
    }
    for roots in roots_per_worker.iter_mut() {
        roots.sort_by_key(|&(u, v)| (gd.degree(u) + g.degree(v), u, v));
    }

    let (senders, receivers): (Vec<_>, Vec<_>) =
        (0..n).map(|_| crossbeam::channel::unbounded::<Msg>()).unzip();
    let in_flight = Arc::new(AtomicI64::new(0));

    let results: Vec<(Vec<PairKey>, AsyncStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|id| {
                let rx = receivers[id].clone();
                let senders = senders.clone();
                let border = borders[id].clone();
                let roots = std::mem::take(&mut roots_per_worker[id]);
                let in_flight = Arc::clone(&in_flight);
                let part = &part;
                let sel_d = sel_d.clone();
                let sel_g = sel_g.clone();
                scope.spawn(move || {
                    let mut matcher = Matcher::new(gd, g, interner, params)
                        .with_border(border)
                        .with_selections(sel_d, sel_g);
                    let mut stats = AsyncStats::default();
                    let mut requested: FxHashSet<PairKey> = FxHashSet::default();
                    let mut served: FxHashMap<PairKey, Vec<usize>> = FxHashMap::default();
                    let mut notified: FxHashSet<PairKey> = FxHashSet::default();

                    let flush = |matcher: &mut Matcher<'_>,
                                     requested: &mut FxHashSet<PairKey>,
                                     served: &FxHashMap<PairKey, Vec<usize>>,
                                     notified: &mut FxHashSet<PairKey>,
                                     stats: &mut AsyncStats| {
                        for pair in matcher.take_new_assumptions() {
                            if requested.insert(pair) {
                                let owner = part.owner(pair.1);
                                if owner != id {
                                    stats.requests += 1;
                                    in_flight.fetch_add(1, Ordering::SeqCst);
                                    let _ = senders[owner].send(Msg::Request { pair, from: id });
                                }
                            }
                        }
                        let mut newly = Vec::new();
                        for (pair, who) in served.iter() {
                            if !notified.contains(pair)
                                && matcher.cached(pair.0, pair.1) == Some(false)
                            {
                                newly.push((*pair, who.clone()));
                            }
                        }
                        for (pair, who) in newly {
                            notified.insert(pair);
                            for w in who {
                                stats.invalidations += 1;
                                in_flight.fetch_add(1, Ordering::SeqCst);
                                let _ = senders[w].send(Msg::Invalid { pair });
                            }
                        }
                    };

                    // Initial local pass.
                    for &(u, v) in &roots {
                        let _ = matcher.is_match(u, v);
                    }
                    flush(&mut matcher, &mut requested, &served, &mut notified, &mut stats);

                    // Event loop until global quiescence.
                    loop {
                        match rx.recv_timeout(Duration::from_millis(1)) {
                            Ok(msg) => {
                                match msg {
                                    Msg::Invalid { pair } => {
                                        matcher.apply_invalidation(pair.0, pair.1)
                                    }
                                    Msg::Request { pair, from } => {
                                        let _ = matcher.is_match(pair.0, pair.1);
                                        served.entry(pair).or_default().push(from);
                                    }
                                }
                                flush(
                                    &mut matcher,
                                    &mut requested,
                                    &served,
                                    &mut notified,
                                    &mut stats,
                                );
                                in_flight.fetch_sub(1, Ordering::SeqCst);
                            }
                            Err(_) => {
                                // Idle: if nothing is in flight anywhere, done.
                                if in_flight.load(Ordering::SeqCst) == 0 {
                                    break;
                                }
                            }
                        }
                    }

                    let mut out = Vec::new();
                    for &(u, v) in &roots {
                        if matcher.cached(u, v) == Some(true) {
                            out.push((u, v));
                        }
                    }
                    (out, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut all = Vec::new();
    let mut stats = AsyncStats::default();
    for (r, s) in results {
        all.extend(r);
        stats.requests += s.requests;
        stats.invalidations += s.invalidations;
    }
    all.sort();
    all.dedup();
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pallmatch::pallmatch;
    use her_core::params::Thresholds;
    use her_graph::GraphBuilder;

    /// Same fixture as the BSP tests: entities with non-leaf brand
    /// sub-entities so cross-worker traffic occurs.
    fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>) {
        let colors = ["white", "red", "blue", "green"];
        let brands = ["Acme", "Globex", "Initech"];
        let countries = ["Germany", "Vietnam", "Japan"];
        let build = |shared: Option<Interner>| {
            let mut b = match shared {
                Some(i) => GraphBuilder::with_interner(i),
                None => GraphBuilder::new(),
            };
            let mut roots = Vec::new();
            for i in 0..m {
                let root = b.add_vertex("item");
                let c = b.add_vertex(colors[i % colors.len()]);
                let name = b.add_vertex(&format!("entity {i}"));
                let brand = b.add_vertex(brands[i % brands.len()]);
                let country = b.add_vertex(countries[i % countries.len()]);
                b.add_edge(root, c, "color");
                b.add_edge(root, name, "name");
                b.add_edge(root, brand, "brand");
                b.add_edge(brand, country, "country");
                roots.push(root);
            }
            let (g, i) = b.build();
            (g, i, roots)
        };
        let (gd, i1, us) = build(None);
        let (g, interner, _) = build(Some(i1));
        (gd, g, interner, us)
    }

    #[test]
    fn async_equals_bsp() {
        let (gd, g, interner, us) = dataset(10);
        let p = Params::untrained(64, 91).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let cfg = ParallelConfig {
            workers: 3,
            use_blocking: false,
            ..Default::default()
        };
        let (bsp, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);
        let (asynchronous, _) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg);
        assert_eq!(asynchronous, bsp);
    }

    #[test]
    fn async_single_worker() {
        let (gd, g, interner, us) = dataset(6);
        let p = Params::untrained(64, 93).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let cfg = ParallelConfig {
            workers: 1,
            use_blocking: false,
            ..Default::default()
        };
        let (r, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg);
        assert!(!r.is_empty());
        assert_eq!(stats.requests, 0, "single worker has no remote borders");
    }

    #[test]
    fn async_deterministic_result_across_worker_counts() {
        let (gd, g, interner, us) = dataset(8);
        let p = Params::untrained(64, 95).with_thresholds(Thresholds::new(0.9, 0.05, 5));
        let mut results = Vec::new();
        for workers in [1, 2, 4] {
            let cfg = ParallelConfig {
                workers,
                use_blocking: false,
                ..Default::default()
            };
            results.push(pallmatch_async(&gd, &g, &interner, &p, &us, &cfg).0);
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
    }
}
