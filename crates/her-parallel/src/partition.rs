//! Edge-cut partitioning of a graph into `n` fragments (§VI-B).
//!
//! Each vertex is *owned* by exactly one worker. A fragment `F_i` consists
//! of the owned vertices `V_i` plus the *border nodes* `O_i`: vertices not
//! in `V_i` that are targets of edges from `V_i` (their data — out-edges —
//! lives at their owner). Border nodes are where supersteps synchronise.

use her_graph::hash::FxHashSet;
use her_graph::{Graph, VertexId};
use her_sync::{rank, RwLock, RwLockReadGuard};

/// An assignment of every vertex to one of `n` workers.
#[derive(Clone, Debug)]
pub struct Partition {
    owner: Vec<u32>,
    n: usize,
}

impl Partition {
    /// Reconstructs a partition from a raw owner array (checkpoint
    /// restore). `None` if any owner is out of range for `n` workers.
    pub fn from_owners(owner: Vec<u32>, n: usize) -> Option<Partition> {
        if n == 0 || owner.iter().any(|&o| o as usize >= n) {
            return None;
        }
        Some(Partition { owner, n })
    }

    /// The raw owner array (vertex index → worker), for serialization.
    pub fn owners(&self) -> &[u32] {
        &self.owner
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.n
    }

    /// The worker owning `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner[v.index()] as usize
    }

    /// The vertices owned by worker `i`, in id order.
    pub fn owned(&self, i: usize) -> Vec<VertexId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o as usize == i)
            .map(|(v, _)| VertexId(v as u32))
            .collect()
    }

    /// The border set `O_i` of worker `i` in `g`: non-owned targets of
    /// edges whose source worker `i` owns.
    pub fn border(&self, g: &Graph, i: usize) -> FxHashSet<VertexId> {
        let mut out = FxHashSet::default();
        for v in g.vertices() {
            if self.owner(v) != i {
                continue;
            }
            for &c in g.children(v) {
                if self.owner(c) != i {
                    out.insert(c);
                }
            }
        }
        out
    }

    /// Workers (other than the owner) that have `v` in their border set —
    /// i.e. the recipients of status updates about `v`.
    pub fn border_holders(&self, g: &Graph, v: VertexId) -> Vec<usize> {
        // Holders are owners of v's in-neighbours; computed by scanning is
        // O(E) per call, so callers should precompute with `all_borders`.
        let mut holders = FxHashSet::default();
        for u in g.vertices() {
            if g.children(u).contains(&v) {
                let o = self.owner(u);
                if o != self.owner(v) {
                    holders.insert(o);
                }
            }
        }
        let mut out: Vec<usize> = holders.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// All border sets at once (one scan of the edges).
    pub fn all_borders(&self, g: &Graph) -> Vec<FxHashSet<VertexId>> {
        let mut out = vec![FxHashSet::default(); self.n];
        for v in g.vertices() {
            let ov = self.owner(v);
            for &c in g.children(v) {
                if self.owner(c) != ov {
                    out[ov].insert(c);
                }
            }
        }
        out
    }
}

/// A [`Partition`] behind a reader/writer lock, shared by workers and the
/// recovery supervisor: when a worker dies its vertices are *reassigned* to
/// survivors, and every later `owner` lookup (request routing, replay)
/// observes the new assignment.
#[derive(Clone, Debug)]
pub struct SharedPartition {
    inner: std::sync::Arc<RwLock<Partition>>,
}

impl SharedPartition {
    /// Wraps a fixed partition for shared fault-tolerant use.
    pub fn new(p: Partition) -> Self {
        Self {
            inner: std::sync::Arc::new(RwLock::new(rank::PARTITION, p)),
        }
    }

    /// Number of workers (the original `n`, including dead ones).
    pub fn workers(&self) -> usize {
        self.read().n
    }

    /// The current owner of `v`.
    pub fn owner(&self, v: VertexId) -> usize {
        self.read().owner(v)
    }

    /// A point-in-time copy of the assignment.
    pub fn snapshot(&self) -> Partition {
        self.read().clone()
    }

    /// Reassigns every vertex owned by `dead` across `survivors`,
    /// round-robin by vertex id (deterministic, balanced). Returns the
    /// reassigned vertices grouped by their new owner, in survivor order.
    ///
    /// # Panics
    /// Panics if `survivors` is empty — a cluster with no live worker
    /// cannot recover.
    pub fn reassign(&self, dead: usize, survivors: &[usize]) -> Vec<(usize, Vec<VertexId>)> {
        assert!(
            !survivors.is_empty(),
            "cannot reassign worker {dead}: no survivors"
        );
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut groups: Vec<(usize, Vec<VertexId>)> =
            survivors.iter().map(|&s| (s, Vec::new())).collect();
        for (i, o) in guard.owner.iter_mut().enumerate() {
            if *o as usize == dead {
                let slot = i % survivors.len();
                *o = survivors[slot] as u32;
                groups[slot].1.push(VertexId(i as u32));
            }
        }
        groups
    }

    fn read(&self) -> RwLockReadGuard<'_, Partition> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Round-robin (modulo) vertex partitioning — balanced and deterministic,
/// the baseline strategy used by the evaluation (§VII uses edge-cut \[21\];
/// the strategy only affects communication volume, not correctness).
pub fn partition_round_robin(g: &Graph, n: usize) -> Partition {
    assert!(n >= 1, "need at least one worker");
    Partition {
        owner: g.vertices().map(|v| v.0 % n as u32).collect(),
        n,
    }
}

/// Contiguous-range partitioning: keeps neighbourhoods (which builders lay
/// out contiguously) on one worker, minimising cut edges for entity-star
/// graphs.
pub fn partition_ranges(g: &Graph, n: usize) -> Partition {
    assert!(n >= 1, "need at least one worker");
    let total = g.vertex_count();
    let chunk = total.div_ceil(n.max(1)).max(1);
    Partition {
        owner: g
            .vertices()
            .map(|v| (v.index() / chunk).min(n - 1) as u32)
            .collect(),
        n,
    }
}

/// Greedy balanced edge-cut (after \[21\]'s objective): vertices are
/// visited in BFS order from high-degree seeds and each goes to the worker
/// holding most of its already-placed neighbours, subject to a balance cap
/// of `ceil(1.05 · |V|/n)`. Cuts far fewer edges than round-robin on
/// entity-star graphs, which translates directly into fewer border nodes
/// and less BSP message traffic.
pub fn partition_greedy(g: &Graph, n: usize) -> Partition {
    assert!(n >= 1, "need at least one worker");
    let total = g.vertex_count();
    let cap = ((total as f64 / n as f64) * 1.05).ceil().max(1.0) as usize;
    const UNASSIGNED: u32 = u32::MAX;
    let mut owner = vec![UNASSIGNED; total];
    let mut load = vec![0usize; n];

    // Undirected adjacency for affinity scoring.
    let mut neighbours: Vec<Vec<VertexId>> = vec![Vec::new(); total];
    for v in g.vertices() {
        for &c in g.children(v) {
            neighbours[v.index()].push(c);
            neighbours[c.index()].push(v);
        }
    }

    // Visit order: BFS from highest-degree unvisited vertices.
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_by_key(|&v| std::cmp::Reverse(neighbours[v.index()].len()));
    let mut visited = vec![false; total];
    let mut next_worker = 0usize;
    for &seed in &order {
        if visited[seed.index()] {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([seed]);
        visited[seed.index()] = true;
        while let Some(v) = queue.pop_front() {
            // Affinity: neighbours already placed per worker.
            let mut affinity = vec![0usize; n];
            for &nb in &neighbours[v.index()] {
                let o = owner[nb.index()];
                if o != UNASSIGNED {
                    affinity[o as usize] += 1;
                }
            }
            let mut best = usize::MAX;
            let mut best_score = (0usize, usize::MAX);
            for w in 0..n {
                if load[w] >= cap {
                    continue;
                }
                // Prefer high affinity, then low load; round-robin start.
                let candidate = (affinity[w], load[w]);
                if best == usize::MAX
                    || candidate.0 > best_score.0
                    || (candidate.0 == best_score.0 && candidate.1 < best_score.1)
                {
                    best = w;
                    best_score = candidate;
                }
            }
            let chosen = if best == usize::MAX {
                // Everyone at cap (rounding): spill round-robin.
                let w = next_worker % n;
                next_worker += 1;
                w
            } else {
                best
            };
            owner[v.index()] = chosen as u32;
            load[chosen] += 1;
            for &nb in &neighbours[v.index()] {
                if !visited[nb.index()] {
                    visited[nb.index()] = true;
                    queue.push_back(nb);
                }
            }
        }
    }
    Partition { owner, n }
}

/// Number of edges whose endpoints live on different workers.
pub fn cut_edges(g: &Graph, part: &Partition) -> usize {
    g.edges()
        .filter(|&(s, _, t)| part.owner(s) != part.owner(t))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;

    fn chain(n: usize) -> Graph {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(&format!("n{i}"))).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], "next");
        }
        b.build().0
    }

    #[test]
    fn every_vertex_owned_exactly_once() {
        let g = chain(10);
        for part in [partition_round_robin(&g, 3), partition_ranges(&g, 3)] {
            let mut seen = [false; 10];
            for i in 0..3 {
                for v in part.owned(i) {
                    assert!(!seen[v.index()], "vertex owned twice");
                    seen[v.index()] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn border_nodes_are_cross_edge_targets() {
        let g = chain(6);
        let part = partition_ranges(&g, 2); // 0-2 | 3-5
        let b0 = part.border(&g, 0);
        assert_eq!(b0.len(), 1);
        assert!(b0.contains(&VertexId(3)));
        assert!(part.border(&g, 1).is_empty()); // no edges back
    }

    #[test]
    fn all_borders_matches_individual() {
        let g = chain(9);
        let part = partition_round_robin(&g, 3);
        let all = part.all_borders(&g);
        for (i, borders) in all.iter().enumerate() {
            assert_eq!(*borders, part.border(&g, i), "worker {i}");
        }
    }

    #[test]
    fn border_holders_point_back() {
        let g = chain(6);
        let part = partition_ranges(&g, 2);
        // Vertex 3 is held as border by worker 0 (edge 2→3).
        assert_eq!(part.border_holders(&g, VertexId(3)), vec![0]);
        assert!(part.border_holders(&g, VertexId(1)).is_empty());
    }

    #[test]
    fn single_worker_has_no_borders() {
        let g = chain(5);
        let part = partition_round_robin(&g, 1);
        assert!(part.border(&g, 0).is_empty());
        assert_eq!(part.owned(0).len(), 5);
    }

    #[test]
    fn round_robin_balances() {
        let g = chain(100);
        let part = partition_round_robin(&g, 4);
        for i in 0..4 {
            assert_eq!(part.owned(i).len(), 25);
        }
    }

    /// Entity stars: 30 entities of 6 vertices each.
    fn stars() -> Graph {
        let mut b = GraphBuilder::new();
        for i in 0..30 {
            let root = b.add_vertex(&format!("e{i}"));
            for j in 0..5 {
                let c = b.add_vertex(&format!("a{i}_{j}"));
                b.add_edge(root, c, "attr");
            }
        }
        b.build().0
    }

    #[test]
    fn greedy_assigns_every_vertex() {
        let g = stars();
        let part = partition_greedy(&g, 4);
        let total: usize = (0..4).map(|i| part.owned(i).len()).sum();
        assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn greedy_is_balanced() {
        let g = stars();
        let part = partition_greedy(&g, 4);
        let cap = ((g.vertex_count() as f64 / 4.0) * 1.05).ceil() as usize;
        for i in 0..4 {
            assert!(part.owned(i).len() <= cap + 1, "worker {i} overloaded");
        }
    }

    #[test]
    fn greedy_cuts_fewer_edges_than_round_robin() {
        let g = stars();
        let greedy = cut_edges(&g, &partition_greedy(&g, 4));
        let rr = cut_edges(&g, &partition_round_robin(&g, 4));
        assert!(
            greedy < rr / 2,
            "greedy cut {greedy} edges, round-robin {rr}"
        );
    }

    #[test]
    fn greedy_keeps_whole_stars_together_mostly() {
        let g = stars();
        let part = partition_greedy(&g, 3);
        // A star is "split" if its attributes span workers.
        let mut split = 0;
        for e in 0..30u32 {
            let root = VertexId(e * 6);
            let o = part.owner(root);
            if g.children(root).iter().any(|&c| part.owner(c) != o) {
                split += 1;
            }
        }
        assert!(split <= 4, "{split} of 30 stars split");
    }

    #[test]
    fn cut_edges_counts_correctly() {
        let g = stars();
        let one = partition_round_robin(&g, 1);
        assert_eq!(cut_edges(&g, &one), 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let g = chain(3);
        let _ = partition_round_robin(&g, 0);
    }

    #[test]
    fn reassign_moves_every_dead_vertex_to_a_survivor() {
        let g = chain(12);
        let part = SharedPartition::new(partition_round_robin(&g, 3));
        let before = part.snapshot();
        let dead_vertices = before.owned(1);
        let groups = part.reassign(1, &[0, 2]);
        let moved: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(moved, dead_vertices.len());
        for v in g.vertices() {
            assert_ne!(part.owner(v), 1, "vertex {v:?} still owned by the dead");
        }
        // Deterministic: a second shared view built the same way agrees.
        let part2 = SharedPartition::new(partition_round_robin(&g, 3));
        let groups2 = part2.reassign(1, &[0, 2]);
        assert_eq!(
            groups.iter().map(|(o, vs)| (*o, vs.clone())).collect::<Vec<_>>(),
            groups2.iter().map(|(o, vs)| (*o, vs.clone())).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "no survivors")]
    fn reassign_without_survivors_panics() {
        let g = chain(4);
        let part = SharedPartition::new(partition_round_robin(&g, 2));
        let _ = part.reassign(0, &[]);
    }
}
