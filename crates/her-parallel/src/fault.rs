//! Deterministic fault injection for the parallel engines.
//!
//! A [`FaultPlan`] is a seeded script of failures threaded through
//! [`crate::ParallelConfig`]: worker panics at a chosen superstep, per-pair
//! "poisoned" evaluations that panic once, and a seeded per-worker stream of
//! message fates (drop / duplicate / delay / black-hole). The plan is
//! `Clone`-shared across workers: once-only faults (kills, poisons) fire
//! exactly once no matter how many clones observe them.
//!
//! Fault semantics mirror real failure modes and are what the recovery
//! machinery is tested against:
//!
//! - **Kill / poison** → the worker panics; the supervisor catches the
//!   unwind, reassigns the fragment to survivors and replays pending
//!   verification requests. Poisons fire only on the *first* evaluation of
//!   the pair (a transient, data-dependent crash), so the adopting worker
//!   re-evaluates it successfully.
//! - **Drop** → one *send attempt* fails visibly; the transport retries
//!   with bounded backoff, so a dropped attempt delays but never loses a
//!   message. Exhausted retries escalate to a worker panic — i.e. back into
//!   the recovery path.
//! - **Duplicate** → the message is delivered twice. Safe because both
//!   request serving and invalidation are idempotent.
//! - **Delay** → delivery is deferred (next superstep under BSP, a short
//!   hold in the async engine). Safe because the fixpoint is
//!   order-insensitive (§VI-B Remark 1).
//! - **Black hole** → the transport reports success but the message
//!   vanishes. *Not* recoverable by retry — this exists to exercise the
//!   liveness watchdog, which must terminate the run instead of hanging on
//!   the in-flight counter.
//!
//! Recovery/control messages are never faulted; only protocol traffic
//! (requests and invalidations) passes through [`FaultPlan::fate`].

use her_core::paramatch::PairKey;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_sync::{rank, Mutex, MutexGuard};
use std::sync::Arc;

/// What the transport should do with one delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver normally.
    Deliver,
    /// Fail this attempt visibly; the sender should retry.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Deliver late.
    Delay,
    /// Report success but never deliver (exercises the watchdog).
    BlackHole,
}

#[derive(Debug)]
struct State {
    kills_fired: Mutex<FxHashSet<(usize, usize)>>,
    poison_fired: Mutex<FxHashSet<PairKey>>,
    counters: Mutex<FxHashMap<usize, u64>>,
}

impl Default for State {
    fn default() -> Self {
        State {
            kills_fired: Mutex::new(rank::FAULT_KILLS, FxHashSet::default()),
            poison_fired: Mutex::new(rank::FAULT_POISON, FxHashSet::default()),
            counters: Mutex::new(rank::FAULT_COUNTERS, FxHashMap::default()),
        }
    }
}

/// A seeded, deterministic script of injected faults. The default plan is
/// inert: no kills, no poisons, every message delivered.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    delay_p: f64,
    black_hole_p: f64,
    kills: Vec<(usize, usize)>,
    poisoned: Vec<PairKey>,
    state: Arc<State>,
}

impl FaultPlan {
    /// An inert plan whose message-fate stream is derived from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Schedules worker `worker` to panic at the start of `superstep`
    /// (1-based; the async engine counts its initial pass as superstep 1
    /// and each processed message as one further step).
    pub fn kill_worker(mut self, worker: usize, superstep: usize) -> Self {
        self.kills.push((worker, superstep));
        self
    }

    /// Makes the first evaluation of `pair` panic (a transient,
    /// data-dependent crash); later evaluations succeed.
    pub fn poison_pair(mut self, pair: PairKey) -> Self {
        self.poisoned.push(pair);
        self
    }

    /// Probability that a send attempt fails visibly (retried).
    pub fn drop_messages(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Probability that a message is delivered twice.
    pub fn duplicate_messages(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Probability that a message is delivered late.
    pub fn delay_messages(mut self, p: f64) -> Self {
        self.delay_p = p;
        self
    }

    /// Probability that a message silently vanishes after a successful
    /// send. Unrecoverable by design — pair with a watchdog test.
    pub fn black_hole_messages(mut self, p: f64) -> Self {
        self.black_hole_p = p;
        self
    }

    /// True when any fault can fire (lets hot paths skip the hooks).
    pub fn is_armed(&self) -> bool {
        !self.kills.is_empty()
            || !self.poisoned.is_empty()
            || self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.black_hole_p > 0.0
    }

    /// Panics (once per scheduled entry) if `worker` is scripted to die at
    /// `superstep`.
    pub fn maybe_kill(&self, worker: usize, superstep: usize) {
        if self.kills.contains(&(worker, superstep)) {
            let fresh = lock(&self.state.kills_fired).insert((worker, superstep));
            if fresh {
                panic!("injected fault: worker {worker} killed at superstep {superstep}");
            }
        }
    }

    /// Panics on the first evaluation of a poisoned pair.
    pub fn maybe_poison(&self, pair: PairKey) {
        if self.poisoned.contains(&pair) {
            let fresh = lock(&self.state.poison_fired).insert(pair);
            if fresh {
                panic!("injected fault: poisoned pair {pair:?}");
            }
        }
    }

    /// The fate of `worker`'s next send attempt. Per-worker streams are a
    /// pure function of `(seed, worker, attempt index)`, so a run replayed
    /// with the same plan sees the same fates in the same per-worker order.
    pub fn fate(&self, worker: usize) -> MessageFate {
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 && self.black_hole_p == 0.0
        {
            return MessageFate::Deliver;
        }
        let attempt = {
            let mut counters = lock(&self.state.counters);
            let c = counters.entry(worker).or_insert(0);
            *c += 1;
            *c
        };
        let bits = splitmix(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(worker as u64 + 1))
                .wrapping_add(attempt),
        );
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.drop_p {
            MessageFate::Drop
        } else if u < self.drop_p + self.dup_p {
            MessageFate::Duplicate
        } else if u < self.drop_p + self.dup_p + self.delay_p {
            MessageFate::Delay
        } else if u < self.drop_p + self.dup_p + self.delay_p + self.black_hole_p {
            MessageFate::BlackHole
        } else {
            MessageFate::Deliver
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::VertexId;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_armed());
        plan.maybe_kill(0, 1);
        plan.maybe_poison((VertexId(0), VertexId(1)));
        for w in 0..4 {
            for _ in 0..100 {
                assert_eq!(plan.fate(w), MessageFate::Deliver);
            }
        }
    }

    #[test]
    fn kill_fires_exactly_once_across_clones() {
        let plan = FaultPlan::seeded(7).kill_worker(2, 3);
        let copy = plan.clone();
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| copy.maybe_kill(2, 3)));
        assert!(caught.is_err(), "first observation must panic");
        // The original clone shares the fired-flag: no second panic.
        plan.maybe_kill(2, 3);
        plan.maybe_kill(0, 3); // unscripted worker unaffected
    }

    #[test]
    fn poison_fires_once_then_clears() {
        let pair = (VertexId(4), VertexId(9));
        let plan = FaultPlan::seeded(1).poison_pair(pair);
        let caught =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| plan.maybe_poison(pair)));
        assert!(caught.is_err());
        plan.maybe_poison(pair); // transient: second evaluation succeeds
    }

    #[test]
    fn fate_stream_is_seed_deterministic() {
        let stream = |seed| {
            let plan = FaultPlan::seeded(seed)
                .drop_messages(0.2)
                .duplicate_messages(0.2)
                .delay_messages(0.2);
            (0..64).map(|_| plan.fate(1)).collect::<Vec<_>>()
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43), "different seeds should diverge");
        let mix = stream(42);
        assert!(mix.contains(&MessageFate::Deliver));
        assert!(mix.contains(&MessageFate::Drop));
        assert!(mix.contains(&MessageFate::Duplicate));
        assert!(mix.contains(&MessageFate::Delay));
        assert!(!mix.contains(&MessageFate::BlackHole));
    }
}
