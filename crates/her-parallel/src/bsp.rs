//! A minimal Bulk Synchronous Parallel runner (Valiant's model, §VI-B).
//!
//! Computation proceeds in *supersteps*: every worker processes its inbox
//! and produces addressed outbound messages; a barrier routes all messages;
//! the run terminates at the fixpoint where no worker emits anything.
//! Workers execute on scoped OS threads — shared-nothing in the sense that
//! they communicate only through messages, while immutable inputs (graphs,
//! models) are shared read-only, the shared-memory analogue of GRAPE's
//! setup.

/// A BSP worker: consumes an inbox, emits `(destination, message)` pairs.
pub trait Worker: Send {
    /// Message type exchanged at superstep barriers.
    type Msg: Send;

    /// Executes one superstep. The first superstep receives an empty inbox.
    fn superstep(&mut self, inbox: Vec<Self::Msg>) -> Vec<(usize, Self::Msg)>;
}

/// Timing of one superstep: how busy the workers were and how skewed
/// the barrier was (slowest minus fastest — time the fast workers spent
/// waiting), plus the message volume routed at its barrier.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SuperstepStat {
    /// Busy time of the slowest participating worker.
    pub busy_max_secs: f64,
    /// Busy time of the fastest participating worker.
    pub busy_min_secs: f64,
    /// Summed busy time across participating workers.
    pub busy_total_secs: f64,
    /// Workers that executed this superstep (live ones, under
    /// [`run_supervised`]).
    pub workers: usize,
    /// Messages routed at this superstep's barrier.
    pub messages: usize,
}

impl SuperstepStat {
    /// Barrier skew: time the fastest worker waited for the slowest.
    pub fn skew_secs(&self) -> f64 {
        (self.busy_max_secs - self.busy_min_secs).max(0.0)
    }
}

/// Timing of a BSP run, used to *simulate* a multi-machine cluster on a
/// single host: under BSP, wall-clock per superstep is the slowest worker
/// (all others wait at the barrier), so the simulated parallel runtime is
/// `Σ_supersteps max_i busy(i)` — the critical path.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Simulated cluster wall-clock: per-superstep maximum worker time.
    pub critical_path_secs: f64,
    /// Total CPU time across all workers.
    pub total_busy_secs: f64,
    /// Per-superstep breakdown, in execution order (one entry per
    /// superstep).
    pub per_superstep: Vec<SuperstepStat>,
}

/// Runs workers to the message fixpoint; returns the number of supersteps
/// executed (at least 1).
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run<W: Worker>(workers: &mut [W]) -> usize {
    run_timed(workers).supersteps
}

/// As [`run`], additionally measuring per-worker busy time to derive the
/// BSP critical path.
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run_timed<W: Worker>(workers: &mut [W]) -> RunStats {
    run_inner(workers, false)
}

/// Cluster *simulation*: executes the logically-concurrent workers one at a
/// time so each superstep's per-worker busy time is measured without CPU
/// contention — on an oversubscribed (or single-core) host, thread
/// interleaving would otherwise inflate every worker's wall-clock to the
/// whole superstep. The returned critical path is the faithful estimate of
/// an `n`-machine BSP cluster's wall-clock.
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run_simulated<W: Worker>(workers: &mut [W]) -> RunStats {
    run_inner(workers, true)
}

/// A worker loss observed at a superstep barrier.
#[derive(Debug)]
pub struct Death<M> {
    /// Which worker panicked.
    pub worker: usize,
    /// The superstep (1-based) during which it panicked.
    pub superstep: usize,
    /// The inbox it had consumed when it died — the supervisor can replay
    /// these messages to survivors.
    pub lost_inbox: Vec<M>,
}

/// Recovery hooks for [`run_supervised`]. Both run at the barrier, with no
/// worker thread live, so they may mutate any worker.
pub trait Supervisor<W: Worker> {
    /// Handles a worker death: reassign its work to `alive` workers and
    /// return messages to inject into the next superstep (each must be
    /// addressed to a live worker, possibly via [`Supervisor::reroute`]).
    fn on_death(
        &mut self,
        workers: &mut [W],
        death: Death<W::Msg>,
        alive: &[usize],
    ) -> Vec<(usize, W::Msg)>;

    /// Re-addresses a message whose destination is dead. `None` drops it.
    fn reroute(&mut self, workers: &mut [W], msg: W::Msg) -> Option<(usize, W::Msg)>;
}

/// Statistics of a supervised run.
#[derive(Clone, Debug, Default)]
pub struct SupervisedStats {
    /// The underlying BSP timing/counters.
    pub run: RunStats,
    /// Workers lost (and recovered from) during the run.
    pub deaths: usize,
    /// `true` when the run was halted by a [`BarrierControl::Stop`] from
    /// the barrier hook rather than reaching the message fixpoint.
    pub stopped_early: bool,
}

/// What the barrier hook sees at each superstep boundary: a quiescent
/// point — no worker thread is live, every message is routed, every death
/// is recovered. The durable engine checkpoints here.
pub struct BarrierInfo<'a, W: Worker> {
    /// The superstep (1-based, absolute across resumes) that just
    /// completed.
    pub superstep: usize,
    /// All workers, post-superstep and post-recovery.
    pub workers: &'a [W],
    /// The routed inboxes the *next* superstep would consume.
    pub inboxes: &'a [Vec<W::Msg>],
    /// `true` when no messages are pending and no recovery happened —
    /// the run is about to terminate at this barrier.
    pub fixpoint: bool,
}

/// The barrier hook's verdict: keep running or halt at this barrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierControl {
    /// Proceed to the next superstep (or terminate if at the fixpoint).
    Continue,
    /// Halt now; [`SupervisedStats::stopped_early`] is set. Used by the
    /// durable engine's crash drill (`--stop-after-supersteps`).
    Stop,
}

/// Saved position of an interrupted run: the superstep counter and the
/// routed inboxes captured at a barrier, to be re-injected on resume.
#[derive(Clone, Debug)]
pub struct ResumeState<M> {
    /// The superstep the checkpoint was taken at; the resumed run
    /// continues with superstep `superstep + 1`.
    pub superstep: usize,
    /// One inbox per worker, exactly as routed at the checkpoint barrier.
    pub inboxes: Vec<Vec<M>>,
}

/// As [`run_timed`]/[`run_simulated`] (`sequential` selects which), but
/// each worker's superstep runs under `catch_unwind`: a panicking worker is
/// marked dead, the supervisor's [`Supervisor::on_death`] reassigns its
/// work, and messages addressed to it are re-routed. The surviving fleet
/// runs on to the fixpoint.
///
/// Replay safety is the paper's §VI-B Remark 1 argument: assumption
/// invalidation is monotone (`true → false`, at most once per pair at its
/// owner), so the fixpoint is unique and independent of message order and
/// of *which* worker verifies a pair. Re-verifying a dead worker's pairs on
/// an adopting survivor — even ones the dead worker had already served —
/// can only reproduce or re-derive the same verdicts, never diverge.
///
/// # Panics
/// Panics if a message is addressed out of range, or if every worker dies.
pub fn run_supervised<W, S>(
    workers: &mut [W],
    supervisor: &mut S,
    sequential: bool,
) -> SupervisedStats
where
    W: Worker,
    W::Msg: Clone,
    S: Supervisor<W>,
{
    run_supervised_resumable(workers, supervisor, sequential, None, &mut |_| {
        BarrierControl::Continue
    })
}

/// As [`run_supervised`], with two durability extensions:
///
/// - `resume` seeds the superstep counter and per-worker inboxes from a
///   checkpoint taken at a barrier, so the run re-enters BSP exactly where
///   it left off (workers must have been restored to their checkpointed
///   state by the caller);
/// - `barrier_hook` runs at every superstep barrier — a quiescent point
///   where no worker thread is live and all messages are routed — and may
///   observe the whole fleet (e.g. to write a checkpoint) or halt the run
///   with [`BarrierControl::Stop`].
///
/// The hook is also called at the fixpoint barrier (with
/// [`BarrierInfo::fixpoint`] set) before the run returns. On a resumed
/// run, [`RunStats::per_superstep`] covers only the supersteps executed
/// *after* the resume point, while [`RunStats::supersteps`] stays
/// absolute.
///
/// # Panics
/// As [`run_supervised`]; additionally if `resume` carries a wrong number
/// of inboxes.
pub fn run_supervised_resumable<W, S>(
    workers: &mut [W],
    supervisor: &mut S,
    sequential: bool,
    resume: Option<ResumeState<W::Msg>>,
    barrier_hook: &mut dyn FnMut(BarrierInfo<'_, W>) -> BarrierControl,
) -> SupervisedStats
where
    W: Worker,
    W::Msg: Clone,
    S: Supervisor<W>,
{
    use std::panic::{catch_unwind, AssertUnwindSafe};

    let n = workers.len();
    assert!(n > 0, "need at least one worker");
    let mut alive = vec![true; n];
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = SupervisedStats::default();
    if let Some(resume) = resume {
        assert_eq!(
            resume.inboxes.len(),
            n,
            "resume state carries {} inboxes for {} workers",
            resume.inboxes.len(),
            n
        );
        stats.run.supersteps = resume.superstep;
        inboxes = resume.inboxes;
    }
    loop {
        stats.run.supersteps += 1;
        let superstep = stats.run.supersteps;
        let taken: Vec<Vec<W::Msg>> = std::mem::take(&mut inboxes);
        // Dead workers must not be addressed; their inboxes stay empty.
        debug_assert!(taken
            .iter()
            .enumerate()
            .all(|(i, inbox)| alive[i] || inbox.is_empty()));
        type Stepped<M> = Option<(std::thread::Result<Vec<(usize, M)>>, Vec<M>, f64)>;
        let step = |w: &mut W, inbox: Vec<W::Msg>| {
            let kept = inbox.clone();
            let start = std::time::Instant::now();
            let out = catch_unwind(AssertUnwindSafe(|| w.superstep(inbox)));
            (out, kept, start.elapsed().as_secs_f64())
        };
        let stepped: Vec<Stepped<W::Msg>> = if sequential {
            workers
                .iter_mut()
                .zip(taken)
                .zip(&alive)
                .map(|((w, inbox), &live)| live.then(|| step(w, inbox)))
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .zip(taken)
                    .zip(&alive)
                    .map(|((w, inbox), &live)| live.then(|| s.spawn(move || step(w, inbox))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.map(|h| h.join().expect("panic escaped catch_unwind")))
                    .collect()
            })
        };
        // Collect outputs; handle deaths at the barrier before routing, so
        // re-routing observes the post-recovery assignment.
        let mut outbound: Vec<(usize, W::Msg)> = Vec::new();
        let mut step_stat = SuperstepStat {
            busy_min_secs: f64::INFINITY,
            ..Default::default()
        };
        let mut deaths: Vec<Death<W::Msg>> = Vec::new();
        for (i, slot) in stepped.into_iter().enumerate() {
            let Some((result, kept_inbox, busy)) = slot else {
                continue;
            };
            step_stat.busy_max_secs = step_stat.busy_max_secs.max(busy);
            step_stat.busy_min_secs = step_stat.busy_min_secs.min(busy);
            step_stat.busy_total_secs += busy;
            step_stat.workers += 1;
            stats.run.total_busy_secs += busy;
            match result {
                Ok(out) => outbound.extend(out),
                Err(_) => {
                    alive[i] = false;
                    deaths.push(Death {
                        worker: i,
                        superstep,
                        lost_inbox: kept_inbox,
                    });
                }
            }
        }
        if step_stat.workers == 0 {
            step_stat.busy_min_secs = 0.0;
        }
        stats.run.critical_path_secs += step_stat.busy_max_secs;
        let recovered = !deaths.is_empty();
        for death in deaths {
            stats.deaths += 1;
            let survivors: Vec<usize> =
                (0..n).filter(|&i| alive[i]).collect();
            assert!(!survivors.is_empty(), "all workers died; cannot recover");
            outbound.extend(supervisor.on_death(workers, death, &survivors));
        }
        // Route, bouncing dead destinations through the supervisor.
        inboxes = (0..n).map(|_| Vec::new()).collect();
        let mut any = false;
        'msgs: for (dest, msg) in outbound {
            assert!(dest < n, "message addressed to unknown worker {dest}");
            let (mut dest, mut msg) = (dest, msg);
            for _ in 0..n {
                if alive[dest] {
                    inboxes[dest].push(msg);
                    step_stat.messages += 1;
                    any = true;
                    continue 'msgs;
                }
                match supervisor.reroute(workers, msg) {
                    Some((d, m)) => (dest, msg) = (d, m),
                    None => continue 'msgs,
                }
            }
            panic!("message re-routing did not reach a live worker");
        }
        stats.run.per_superstep.push(step_stat);
        // A barrier that handled deaths may have scheduled message-free
        // local work on the adopters (re-verification of purged verdicts,
        // orphaned roots); the fixpoint check must not fire before that
        // work has had a superstep to run in.
        let fixpoint = !any && !recovered;
        let control = barrier_hook(BarrierInfo {
            superstep: stats.run.supersteps,
            workers,
            inboxes: &inboxes,
            fixpoint,
        });
        if fixpoint {
            return stats;
        }
        if control == BarrierControl::Stop {
            stats.stopped_early = true;
            return stats;
        }
    }
}

/// One worker's superstep output plus its busy time.
type TimedOut<M> = (Vec<(usize, M)>, f64);

fn run_inner<W: Worker>(workers: &mut [W], sequential: bool) -> RunStats {
    let n = workers.len();
    assert!(n > 0, "need at least one worker");
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = RunStats::default();
    loop {
        stats.supersteps += 1;
        // Barrier-synchronised execution of one superstep.
        let taken: Vec<Vec<W::Msg>> = std::mem::take(&mut inboxes);
        let timed: Vec<TimedOut<W::Msg>> = if sequential {
            workers
                .iter_mut()
                .zip(taken)
                .map(|(w, inbox)| {
                    let start = std::time::Instant::now();
                    let out = w.superstep(inbox);
                    (out, start.elapsed().as_secs_f64())
                })
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .zip(taken)
                    .map(|(w, inbox)| {
                        s.spawn(move || {
                            let start = std::time::Instant::now();
                            let out = w.superstep(inbox);
                            (out, start.elapsed().as_secs_f64())
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker thread panicked"))
                    .collect()
            })
        };
        let mut step_stat = SuperstepStat {
            busy_min_secs: f64::INFINITY,
            workers: n,
            ..Default::default()
        };
        // Route messages.
        inboxes = (0..n).map(|_| Vec::new()).collect();
        let mut any = false;
        for (out, busy) in timed {
            step_stat.busy_max_secs = step_stat.busy_max_secs.max(busy);
            step_stat.busy_min_secs = step_stat.busy_min_secs.min(busy);
            step_stat.busy_total_secs += busy;
            stats.total_busy_secs += busy;
            for (dest, msg) in out {
                assert!(dest < n, "message addressed to unknown worker {dest}");
                inboxes[dest].push(msg);
                step_stat.messages += 1;
                any = true;
            }
        }
        stats.critical_path_secs += step_stat.busy_max_secs;
        stats.per_superstep.push(step_stat);
        if !any {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring: worker 0 injects a counter that hops around the ring
    /// until it reaches a limit; checks message routing and termination.
    struct Ring {
        id: usize,
        n: usize,
        limit: u32,
        seen: Vec<u32>,
        started: bool,
    }

    impl Worker for Ring {
        type Msg = u32;
        fn superstep(&mut self, inbox: Vec<u32>) -> Vec<(usize, u32)> {
            let mut out = Vec::new();
            if self.id == 0 && !self.started {
                self.started = true;
                out.push(((self.id + 1) % self.n, 0));
            }
            for token in inbox {
                self.seen.push(token);
                if token + 1 < self.limit {
                    out.push(((self.id + 1) % self.n, token + 1));
                }
            }
            out
        }
    }

    #[test]
    fn token_ring_terminates_and_routes() {
        let n = 4;
        let mut workers: Vec<Ring> = (0..n)
            .map(|id| Ring {
                id,
                n,
                limit: 9,
                seen: Vec::new(),
                started: false,
            })
            .collect();
        let steps = run(&mut workers);
        // Token k is delivered at superstep k + 2; the last (k = 8) produces
        // no further messages, so the run ends right there.
        assert_eq!(steps, 10);
        let mut all: Vec<u32> = workers.iter().flat_map(|w| w.seen.clone()).collect();
        all.sort();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        // Round-robin delivery: worker 1 saw tokens 0, 4, 8.
        assert_eq!(workers[1].seen, vec![0, 4, 8]);
    }

    #[test]
    fn per_superstep_stats_cover_the_run() {
        let n = 4;
        let mut workers: Vec<Ring> = (0..n)
            .map(|id| Ring {
                id,
                n,
                limit: 9,
                seen: Vec::new(),
                started: false,
            })
            .collect();
        let stats = run_timed(&mut workers);
        assert_eq!(stats.per_superstep.len(), stats.supersteps);
        // Each of the 9 tokens is routed exactly once.
        let routed: usize = stats.per_superstep.iter().map(|s| s.messages).sum();
        assert_eq!(routed, 9);
        for s in &stats.per_superstep {
            assert_eq!(s.workers, n);
            assert!(s.busy_min_secs <= s.busy_max_secs);
            assert!(s.skew_secs() >= 0.0);
        }
        let critical: f64 = stats.per_superstep.iter().map(|s| s.busy_max_secs).sum();
        assert!((critical - stats.critical_path_secs).abs() < 1e-9);
    }

    /// A silent fleet terminates after exactly one superstep.
    struct Silent;
    impl Worker for Silent {
        type Msg = ();
        fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
            Vec::new()
        }
    }

    #[test]
    fn silent_workers_run_one_superstep() {
        let mut ws = vec![Silent, Silent, Silent];
        assert_eq!(run(&mut ws), 1);
    }

    #[test]
    fn single_worker_self_message() {
        struct SelfTalk {
            remaining: u32,
        }
        impl Worker for SelfTalk {
            type Msg = ();
            fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    vec![(0, ())]
                } else {
                    Vec::new()
                }
            }
        }
        let mut ws = vec![SelfTalk { remaining: 3 }];
        assert_eq!(run(&mut ws), 4);
    }

    /// Scripted-death worker for supervised-run tests: accumulates tokens,
    /// sends staged batches, dies at a chosen superstep.
    struct Accum {
        die_at: Option<usize>,
        step: usize,
        sum: u32,
        /// One batch of outbound messages per superstep.
        schedule: Vec<Vec<(usize, u32)>>,
    }

    impl Worker for Accum {
        type Msg = u32;
        fn superstep(&mut self, inbox: Vec<u32>) -> Vec<(usize, u32)> {
            self.step += 1;
            if self.die_at == Some(self.step) {
                panic!("scripted death");
            }
            for t in inbox {
                self.sum += t;
            }
            if self.step <= self.schedule.len() {
                std::mem::take(&mut self.schedule[self.step - 1])
            } else {
                Vec::new()
            }
        }
    }

    /// Replays a dead worker's lost inbox to the first survivor and
    /// reroutes messages bound for the dead to worker to that survivor too.
    struct ToFirstSurvivor {
        fallback: usize,
    }

    impl Supervisor<Accum> for ToFirstSurvivor {
        fn on_death(
            &mut self,
            _workers: &mut [Accum],
            death: Death<u32>,
            alive: &[usize],
        ) -> Vec<(usize, u32)> {
            self.fallback = alive[0];
            death
                .lost_inbox
                .into_iter()
                .map(|m| (self.fallback, m))
                .collect()
        }

        fn reroute(&mut self, _workers: &mut [Accum], msg: u32) -> Option<(usize, u32)> {
            Some((self.fallback, msg))
        }
    }

    #[test]
    fn supervised_run_replays_lost_inbox_and_reroutes() {
        for sequential in [true, false] {
            let mut workers = vec![
                Accum {
                    die_at: None,
                    step: 0,
                    sum: 0,
                    // Superstep 1: tokens for everyone; superstep 2: a late
                    // token addressed to the (by then dead) worker 1.
                    schedule: vec![vec![(1, 1), (1, 2), (2, 3)], vec![(1, 10)]],
                },
                Accum {
                    die_at: Some(2),
                    step: 0,
                    sum: 0,
                    schedule: Vec::new(),
                },
                Accum {
                    die_at: None,
                    step: 0,
                    sum: 0,
                    schedule: Vec::new(),
                },
            ];
            let mut sup = ToFirstSurvivor { fallback: 0 };
            let stats = run_supervised(&mut workers, &mut sup, sequential);
            assert_eq!(stats.deaths, 1, "sequential={sequential}");
            // Tokens 1 and 2 were in the dead worker's consumed inbox and
            // got replayed; token 10 was addressed to it post-mortem and
            // got rerouted. Nothing is lost.
            let total: u32 = workers.iter().map(|w| w.sum).collect::<Vec<_>>().iter().sum();
            assert_eq!(total, 1 + 2 + 3 + 10, "sequential={sequential}");
            assert_eq!(workers[1].sum, 0, "the dead worker processed nothing");
        }
    }

    #[test]
    fn supervised_run_without_deaths_matches_plain_run() {
        let mk = || {
            let n = 4;
            (0..n)
                .map(|id| Ring {
                    id,
                    n,
                    limit: 9,
                    seen: Vec::new(),
                    started: false,
                })
                .collect::<Vec<Ring>>()
        };
        struct NoOp;
        impl Supervisor<Ring> for NoOp {
            fn on_death(
                &mut self,
                _w: &mut [Ring],
                _d: Death<u32>,
                _a: &[usize],
            ) -> Vec<(usize, u32)> {
                unreachable!("no worker dies in this test")
            }
            fn reroute(&mut self, _w: &mut [Ring], _m: u32) -> Option<(usize, u32)> {
                unreachable!()
            }
        }
        let mut plain = mk();
        let steps = run(&mut plain);
        let mut supervised = mk();
        let stats = run_supervised(&mut supervised, &mut NoOp, true);
        assert_eq!(stats.run.supersteps, steps);
        assert_eq!(stats.deaths, 0);
        for (p, s) in plain.iter().zip(&supervised) {
            assert_eq!(p.seen, s.seen);
        }
    }

    struct NoOpRing;
    impl Supervisor<Ring> for NoOpRing {
        fn on_death(
            &mut self,
            _w: &mut [Ring],
            _d: Death<u32>,
            _a: &[usize],
        ) -> Vec<(usize, u32)> {
            unreachable!("no worker dies in this test")
        }
        fn reroute(&mut self, _w: &mut [Ring], _m: u32) -> Option<(usize, u32)> {
            unreachable!()
        }
    }

    /// Stopping at *every* barrier k and resuming from the captured
    /// inboxes reproduces the uninterrupted run exactly — the BSP-level
    /// half of the crash-recovery acceptance property.
    #[test]
    fn stop_at_any_barrier_then_resume_equals_uninterrupted() {
        let n = 4;
        let mk = || {
            (0..n)
                .map(|id| Ring {
                    id,
                    n,
                    limit: 9,
                    seen: Vec::new(),
                    started: false,
                })
                .collect::<Vec<Ring>>()
        };
        let mut clean = mk();
        let clean_steps = run(&mut clean);
        let clean_seen: Vec<Vec<u32>> = clean.iter().map(|w| w.seen.clone()).collect();

        for k in 1..clean_steps {
            // Phase 1: run to barrier k, capture the routed inboxes, stop.
            let mut workers = mk();
            let mut captured: Option<ResumeState<u32>> = None;
            let stats = run_supervised_resumable(
                &mut workers,
                &mut NoOpRing,
                true,
                None,
                &mut |b: BarrierInfo<'_, Ring>| {
                    if b.superstep == k {
                        captured = Some(ResumeState {
                            superstep: b.superstep,
                            inboxes: b.inboxes.to_vec(),
                        });
                        BarrierControl::Stop
                    } else {
                        BarrierControl::Continue
                    }
                },
            );
            assert!(stats.stopped_early, "k={k}");
            assert_eq!(stats.run.supersteps, k);

            // Phase 2: resume the same (state-retaining) workers.
            let resume = captured.expect("barrier k reached");
            let stats = run_supervised_resumable(
                &mut workers,
                &mut NoOpRing,
                true,
                Some(resume),
                &mut |_| BarrierControl::Continue,
            );
            assert!(!stats.stopped_early);
            assert_eq!(stats.run.supersteps, clean_steps, "k={k}");
            for (w, expect) in workers.iter().zip(&clean_seen) {
                assert_eq!(&w.seen, expect, "k={k}: resumed run diverged");
            }
        }
    }

    /// The hook sees the fixpoint barrier, and `Stop` there does not mark
    /// the run as stopped early (termination wins).
    #[test]
    fn fixpoint_barrier_is_reported_to_the_hook() {
        let mut ws = vec![Silent, Silent];
        struct NoOpSilent;
        impl Supervisor<Silent> for NoOpSilent {
            fn on_death(
                &mut self,
                _w: &mut [Silent],
                _d: Death<()>,
                _a: &[usize],
            ) -> Vec<(usize, ())> {
                unreachable!()
            }
            fn reroute(&mut self, _w: &mut [Silent], _m: ()) -> Option<(usize, ())> {
                unreachable!()
            }
        }
        let mut saw_fixpoint = false;
        let stats = run_supervised_resumable(
            &mut ws,
            &mut NoOpSilent,
            true,
            None,
            &mut |b: BarrierInfo<'_, Silent>| {
                saw_fixpoint = b.fixpoint;
                BarrierControl::Stop
            },
        );
        assert!(saw_fixpoint);
        assert!(!stats.stopped_early, "fixpoint termination wins over Stop");
    }

    #[test]
    #[should_panic(expected = "all workers died")]
    fn supervised_run_with_total_loss_panics() {
        struct Fatal;
        impl Worker for Fatal {
            type Msg = ();
            fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
                panic!("down");
            }
        }
        struct Never;
        impl Supervisor<Fatal> for Never {
            fn on_death(
                &mut self,
                _w: &mut [Fatal],
                _d: Death<()>,
                _a: &[usize],
            ) -> Vec<(usize, ())> {
                Vec::new()
            }
            fn reroute(&mut self, _w: &mut [Fatal], _m: ()) -> Option<(usize, ())> {
                None
            }
        }
        let mut ws = vec![Fatal, Fatal];
        let _ = run_supervised(&mut ws, &mut Never, true);
    }

    #[test]
    #[should_panic(expected = "unknown worker")]
    fn out_of_range_destination_panics() {
        struct Bad;
        impl Worker for Bad {
            type Msg = ();
            fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
                vec![(5, ())]
            }
        }
        let mut ws = vec![Bad];
        run(&mut ws);
    }
}
