//! A minimal Bulk Synchronous Parallel runner (Valiant's model, §VI-B).
//!
//! Computation proceeds in *supersteps*: every worker processes its inbox
//! and produces addressed outbound messages; a barrier routes all messages;
//! the run terminates at the fixpoint where no worker emits anything.
//! Workers execute on scoped OS threads — shared-nothing in the sense that
//! they communicate only through messages, while immutable inputs (graphs,
//! models) are shared read-only, the shared-memory analogue of GRAPE's
//! setup.

/// A BSP worker: consumes an inbox, emits `(destination, message)` pairs.
pub trait Worker: Send {
    /// Message type exchanged at superstep barriers.
    type Msg: Send;

    /// Executes one superstep. The first superstep receives an empty inbox.
    fn superstep(&mut self, inbox: Vec<Self::Msg>) -> Vec<(usize, Self::Msg)>;
}

/// Timing of a BSP run, used to *simulate* a multi-machine cluster on a
/// single host: under BSP, wall-clock per superstep is the slowest worker
/// (all others wait at the barrier), so the simulated parallel runtime is
/// `Σ_supersteps max_i busy(i)` — the critical path.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Supersteps executed.
    pub supersteps: usize,
    /// Simulated cluster wall-clock: per-superstep maximum worker time.
    pub critical_path_secs: f64,
    /// Total CPU time across all workers.
    pub total_busy_secs: f64,
}

/// Runs workers to the message fixpoint; returns the number of supersteps
/// executed (at least 1).
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run<W: Worker>(workers: &mut [W]) -> usize {
    run_timed(workers).supersteps
}

/// As [`run`], additionally measuring per-worker busy time to derive the
/// BSP critical path.
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run_timed<W: Worker>(workers: &mut [W]) -> RunStats {
    run_inner(workers, false)
}

/// Cluster *simulation*: executes the logically-concurrent workers one at a
/// time so each superstep's per-worker busy time is measured without CPU
/// contention — on an oversubscribed (or single-core) host, thread
/// interleaving would otherwise inflate every worker's wall-clock to the
/// whole superstep. The returned critical path is the faithful estimate of
/// an `n`-machine BSP cluster's wall-clock.
///
/// # Panics
/// Panics if a worker addresses a message out of range.
pub fn run_simulated<W: Worker>(workers: &mut [W]) -> RunStats {
    run_inner(workers, true)
}

/// One worker's superstep output plus its busy time.
type TimedOut<M> = (Vec<(usize, M)>, f64);

fn run_inner<W: Worker>(workers: &mut [W], sequential: bool) -> RunStats {
    let n = workers.len();
    assert!(n > 0, "need at least one worker");
    let mut inboxes: Vec<Vec<W::Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut stats = RunStats::default();
    loop {
        stats.supersteps += 1;
        // Barrier-synchronised execution of one superstep.
        let taken: Vec<Vec<W::Msg>> = std::mem::take(&mut inboxes);
        let timed: Vec<TimedOut<W::Msg>> = if sequential {
            workers
                .iter_mut()
                .zip(taken)
                .map(|(w, inbox)| {
                    let start = std::time::Instant::now();
                    let out = w.superstep(inbox);
                    (out, start.elapsed().as_secs_f64())
                })
                .collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = workers
                    .iter_mut()
                    .zip(taken)
                    .map(|(w, inbox)| {
                        s.spawn(move || {
                            let start = std::time::Instant::now();
                            let out = w.superstep(inbox);
                            (out, start.elapsed().as_secs_f64())
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let mut slowest = 0.0f64;
        // Route messages.
        inboxes = (0..n).map(|_| Vec::new()).collect();
        let mut any = false;
        for (out, busy) in timed {
            slowest = slowest.max(busy);
            stats.total_busy_secs += busy;
            for (dest, msg) in out {
                assert!(dest < n, "message addressed to unknown worker {dest}");
                inboxes[dest].push(msg);
                any = true;
            }
        }
        stats.critical_path_secs += slowest;
        if !any {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Token-ring: worker 0 injects a counter that hops around the ring
    /// until it reaches a limit; checks message routing and termination.
    struct Ring {
        id: usize,
        n: usize,
        limit: u32,
        seen: Vec<u32>,
        started: bool,
    }

    impl Worker for Ring {
        type Msg = u32;
        fn superstep(&mut self, inbox: Vec<u32>) -> Vec<(usize, u32)> {
            let mut out = Vec::new();
            if self.id == 0 && !self.started {
                self.started = true;
                out.push(((self.id + 1) % self.n, 0));
            }
            for token in inbox {
                self.seen.push(token);
                if token + 1 < self.limit {
                    out.push(((self.id + 1) % self.n, token + 1));
                }
            }
            out
        }
    }

    #[test]
    fn token_ring_terminates_and_routes() {
        let n = 4;
        let mut workers: Vec<Ring> = (0..n)
            .map(|id| Ring {
                id,
                n,
                limit: 9,
                seen: Vec::new(),
                started: false,
            })
            .collect();
        let steps = run(&mut workers);
        // Token k is delivered at superstep k + 2; the last (k = 8) produces
        // no further messages, so the run ends right there.
        assert_eq!(steps, 10);
        let mut all: Vec<u32> = workers.iter().flat_map(|w| w.seen.clone()).collect();
        all.sort();
        assert_eq!(all, (0..9).collect::<Vec<_>>());
        // Round-robin delivery: worker 1 saw tokens 0, 4, 8.
        assert_eq!(workers[1].seen, vec![0, 4, 8]);
    }

    /// A silent fleet terminates after exactly one superstep.
    struct Silent;
    impl Worker for Silent {
        type Msg = ();
        fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
            Vec::new()
        }
    }

    #[test]
    fn silent_workers_run_one_superstep() {
        let mut ws = vec![Silent, Silent, Silent];
        assert_eq!(run(&mut ws), 1);
    }

    #[test]
    fn single_worker_self_message() {
        struct SelfTalk {
            remaining: u32,
        }
        impl Worker for SelfTalk {
            type Msg = ();
            fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    vec![(0, ())]
                } else {
                    Vec::new()
                }
            }
        }
        let mut ws = vec![SelfTalk { remaining: 3 }];
        assert_eq!(run(&mut ws), 4);
    }

    #[test]
    #[should_panic(expected = "unknown worker")]
    fn out_of_range_destination_panics() {
        struct Bad;
        impl Worker for Bad {
            type Msg = ();
            fn superstep(&mut self, _inbox: Vec<()>) -> Vec<(usize, ())> {
                vec![(5, ())]
            }
        }
        let mut ws = vec![Bad];
        run(&mut ws);
    }
}
