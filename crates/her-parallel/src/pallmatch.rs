//! `PAllMatch`: parallel `AllParaMatch` by fixpoint computation (§VI-B).
//!
//! The protocol, following equations (3)/(4) of the paper:
//!
//! 1. **PPSim** (superstep 1): every worker runs `AllParaMatch` over its
//!    fragment's candidate pairs. Pairs whose `G`-side vertex is a *border
//!    node* are optimistically assumed valid; each such assumption is sent
//!    to the border vertex's owner as a verification request.
//! 2. **Messages**: owners verify requested pairs authoritatively (on their
//!    full local out-edges) and reply with the *invalid* ones — the paper's
//!    `v.status` changes. Valid pairs need no reply: they were already
//!    assumed.
//! 3. **IncPSim**: a worker receiving an invalidation flips the pair to
//!    false and re-checks every recorded dependent (the cleanup machinery
//!    of `ParaMatch`), possibly generating new assumptions/requests.
//! 4. **Termination**: the message fixpoint. `Π` is the union of local
//!    verdicts on candidate root pairs.
//!
//! Invalidation is monotone (true → false only, at the assumption level),
//! so the fixpoint exists and is reached in finitely many supersteps.

use crate::bsp;
use crate::fault::{FaultPlan, MessageFate};
use crate::partition::{partition_greedy, partition_round_robin, Partition, SharedPartition};
use her_core::checkpoint::MatcherCheckpoint;
use her_core::index::InvertedIndex;
use her_core::paramatch::{Matcher, MatcherOptions, PairKey};
use her_core::params::Params;
use her_core::shared_scores::SharedScores;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, LabelId, VertexId};
use her_store::{CodecError, Dec, Enc, Snapshot, SnapshotStore, StoreError};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// How `G` is assigned to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Vertex id modulo `n`: balanced, maximal cut (worst-case traffic).
    #[default]
    RoundRobin,
    /// Greedy balanced edge-cut: keeps entity neighbourhoods together,
    /// minimising border nodes and message volume (the paper's edge-cut).
    Greedy,
}

/// Configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of workers `n`.
    pub workers: usize,
    /// Partitioning strategy for `G`.
    pub partition: PartitionStrategy,
    /// Build a blocking index per worker for candidate generation.
    pub use_blocking: bool,
    /// Execute workers sequentially with exact per-worker timing, so the
    /// critical path faithfully simulates an `n`-machine cluster even on an
    /// oversubscribed host. `false` runs workers on OS threads.
    pub simulate_cluster: bool,
    /// Injected faults (inert by default) — see [`crate::fault`].
    pub fault: FaultPlan,
    /// Liveness watchdog for the asynchronous engine: if the in-flight
    /// counter is non-zero but no worker makes progress for this long, the
    /// run aborts with partial results instead of hanging.
    pub watchdog: Duration,
    /// Observability handle: when set, every worker's matcher reports
    /// into the shared registry (the `paramatch.*` namespace aggregates
    /// across workers — the counters are lock-free atomics), the run
    /// records `bsp.*`/`parallel.*`/`fault.*` metrics, and
    /// death/recovery events land in the trace log.
    pub obs: Option<her_obs::Obs>,
    /// Share one sharded score cache across all workers (and pre-embed
    /// the label vocabulary before the BSP loop starts), so `M_v`/`M_ρ`
    /// vectors are computed once per distinct label process-wide instead
    /// of once per worker. `false` gives each worker a private cache —
    /// only useful for ablation.
    pub shared_scores: bool,
    /// Reuse an already-built [`SharedScores`] handle (typically the
    /// facade handle of the `Her` instance this run serves) instead of
    /// building a fresh one. The handle is still pre-warmed, but the
    /// prewarm reads through the existing memo, so labels embedded by an
    /// earlier run — sequential, BSP, or async — are never re-embedded.
    /// Ignored when [`ParallelConfig::shared_scores`] is `false`.
    pub shared_handle: Option<SharedScores>,
    /// Request-scoped trace context ([`her_obs::ReqCtx`]): tags the
    /// run's spans (`parallel.*`) and per-superstep barrier events so a
    /// serving-path request that fans out into the BSP engine keeps its
    /// trace id through every superstep. Defaults to the ambient
    /// (request-free) context, which always records.
    pub ctx: her_obs::ReqCtx,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            partition: PartitionStrategy::default(),
            use_blocking: true,
            simulate_cluster: true,
            fault: FaultPlan::default(),
            watchdog: Duration::from_secs(10),
            obs: None,
            shared_scores: true,
            shared_handle: None,
            ctx: her_obs::ReqCtx::NONE,
        }
    }
}

/// Counters describing a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelStats {
    /// Supersteps executed until the fixpoint.
    pub supersteps: usize,
    /// Workers lost to panics and recovered from during the run.
    pub deaths: usize,
    /// Verification requests exchanged.
    pub requests: u64,
    /// Invalidations exchanged.
    pub invalidations: u64,
    /// Seconds spent precomputing global `h_r` selections.
    pub selection_secs: f64,
    /// Seconds spent generating candidate root pairs.
    pub candidates_secs: f64,
    /// Seconds spent inside the BSP supersteps (host wall-clock).
    pub bsp_secs: f64,
    /// Simulated `n`-machine wall-clock: perfectly-parallel preprocessing
    /// plus the BSP critical path (per-superstep slowest worker). On a
    /// multi-core host the real wall-clock approaches this; on a
    /// single-core host it is the honest estimate of cluster runtime.
    pub simulated_secs: f64,
    /// Snapshots written by the durability layer (0 on plain runs).
    pub checkpoints: u64,
    /// Total encoded checkpoint payload bytes written.
    pub checkpoint_bytes: u64,
    /// Seconds spent encoding and persisting checkpoints.
    pub checkpoint_secs: f64,
}

/// Durable-run configuration: where checkpoints live and when the BSP
/// loop writes them. See [`pallmatch_durable`].
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Checkpoint directory, created on demand.
    pub dir: PathBuf,
    /// Write a snapshot every this many supersteps (clamped to ≥ 1).
    pub every_supersteps: usize,
    /// Resume from the newest valid snapshot in `dir` if one exists;
    /// otherwise start fresh.
    pub resume: bool,
    /// Stop the run (after forcing a checkpoint) once this many
    /// supersteps have executed — the deterministic "crash" behind
    /// recovery drills and the CLI's `--stop-after-supersteps`.
    pub stop_after_supersteps: Option<usize>,
}

impl DurabilityConfig {
    /// Checkpoints into `dir` every superstep; no resume, no early stop.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every_supersteps: 1,
            resume: false,
            stop_after_supersteps: None,
        }
    }
}

/// Outcome of a durable run ([`pallmatch_durable`]).
#[derive(Clone, Debug)]
pub struct DurableRun {
    /// Sorted match set — complete iff `completed`.
    pub matches: Vec<PairKey>,
    /// Run counters (including `checkpoint*` fields).
    pub stats: ParallelStats,
    /// `true` when the fixpoint was reached; `false` when the run
    /// stopped early at `stop_after_supersteps` (resume to finish).
    pub completed: bool,
    /// Generation of the snapshot this run resumed from, if any.
    pub resumed_from: Option<u64>,
}

#[derive(Clone, Debug)]
enum Msg {
    /// "I assumed (u, v); please verify" — carries the requester id.
    Request { pair: PairKey, from: usize },
    /// "(u, v) is invalid."
    Invalid { pair: PairKey },
}

/// Send attempts per message before the transport gives up and escalates
/// to a worker panic (which the supervisor then recovers from).
const MAX_SEND_ATTEMPTS: usize = 8;

struct PWorker<'a> {
    id: usize,
    matcher: Matcher<'a>,
    part: SharedPartition,
    fault: FaultPlan,
    /// Candidate root pairs owned by this worker (grows on adoption).
    roots: Vec<PairKey>,
    /// Pairs adopted from a dead peer, evaluated at the next superstep.
    pending: Vec<PairKey>,
    /// Re-verify all roots and served pairs next superstep: set after an
    /// adoption purged cached verdicts that leaned on assumptions about
    /// the newly-owned vertices.
    reverify: bool,
    superstep_no: usize,
    /// Requests already sent (dedup).
    requested: FxHashSet<PairKey>,
    /// Pairs verified on behalf of others: pair → requesters.
    served: FxHashMap<PairKey, Vec<usize>>,
    /// `(pair, requester)` invalidations already sent. Keyed per requester
    /// so a later requester of an already-notified pair still gets told.
    notified: FxHashSet<(PairKey, usize)>,
    started: bool,
    /// Messages held back by an injected delay fault, released (without
    /// re-faulting) at the start of the next superstep.
    delayed: Vec<(usize, Msg)>,
    requests_sent: u64,
    invalidations_sent: u64,
}

impl<'a> PWorker<'a> {
    /// Evaluates one pair, first giving the fault plan a chance to model a
    /// data-dependent crash.
    fn eval(&mut self, u: VertexId, v: VertexId) {
        self.fault.maybe_poison((u, v));
        let _ = self.matcher.is_match(u, v);
    }

    /// Bumps a `fault.*` counter (injected-fault paths only, never hot).
    fn fault_count(&self, name: &str) {
        if let Some(obs) = self.matcher.obs() {
            // #[allow(her::unregistered_metric)] — forwards literal `fault.*` names, all in names::ALL
            obs.registry.counter(name).inc();
        }
    }

    /// Sends `msg` through the fault plan: drops are retried (bounded —
    /// the BSP analogue of retry-with-backoff, there is no real channel to
    /// back off from), duplicates delivered twice, delays deferred one
    /// superstep. Exhausting the retries panics, escalating into the
    /// supervisor's recovery path.
    fn emit(&mut self, out: &mut Vec<(usize, Msg)>, dest: usize, msg: Msg) {
        if !self.fault.is_armed() {
            out.push((dest, msg));
            return;
        }
        for _ in 0..MAX_SEND_ATTEMPTS {
            match self.fault.fate(self.id) {
                MessageFate::Deliver => {
                    out.push((dest, msg));
                    return;
                }
                MessageFate::Duplicate => {
                    self.fault_count("fault.duplicated");
                    out.push((dest, msg.clone()));
                    out.push((dest, msg));
                    return;
                }
                MessageFate::Delay => {
                    self.fault_count("fault.delayed");
                    self.delayed.push((dest, msg));
                    return;
                }
                MessageFate::BlackHole => {
                    self.fault_count("fault.blackholed");
                    return;
                }
                MessageFate::Drop => self.fault_count("fault.dropped"),
            }
        }
        panic!("send to worker {dest} failed after {MAX_SEND_ATTEMPTS} attempts");
    }

    /// Drains fresh border assumptions into request messages.
    fn flush_assumptions(&mut self, out: &mut Vec<(usize, Msg)>) {
        for pair in self.matcher.take_new_assumptions() {
            if self.requested.insert(pair) {
                let owner = self.part.owner(pair.1);
                if owner == self.id {
                    // Shouldn't happen (owned vertices aren't border), but
                    // guard against degenerate partitions.
                    continue;
                }
                self.requests_sent += 1;
                self.emit(
                    out,
                    owner,
                    Msg::Request {
                        pair,
                        from: self.id,
                    },
                );
            }
        }
    }

    /// Notifies requesters about served pairs that are (now) invalid.
    fn flush_invalidations(&mut self, out: &mut Vec<(usize, Msg)>) {
        let mut newly: Vec<(PairKey, usize)> = Vec::new();
        for (pair, requesters) in &self.served {
            if self.matcher.cached(pair.0, pair.1) == Some(false) {
                for &r in requesters {
                    if !self.notified.contains(&(*pair, r)) {
                        newly.push((*pair, r));
                    }
                }
            }
        }
        for (pair, r) in newly {
            if self.notified.insert((pair, r)) {
                self.invalidations_sent += 1;
                self.emit(out, r, Msg::Invalid { pair });
            }
        }
    }
}

impl<'a> bsp::Worker for PWorker<'a> {
    type Msg = Msg;

    fn superstep(&mut self, inbox: Vec<Msg>) -> Vec<(usize, Msg)> {
        self.superstep_no += 1;
        self.fault.maybe_kill(self.id, self.superstep_no);
        let mut out = Vec::new();
        // Release messages an injected fault delayed last superstep. They
        // count as output, so the run cannot reach a false fixpoint while
        // delayed messages are still buffered.
        out.append(&mut self.delayed);
        // IncPSim: apply invalidations first, then serve verifications.
        let mut requests = Vec::new();
        for msg in inbox {
            match msg {
                Msg::Invalid { pair } => self.matcher.apply_invalidation(pair.0, pair.1),
                Msg::Request { pair, from } => requests.push((pair, from)),
            }
        }
        // PPSim: the first superstep evaluates all local root candidates.
        if !self.started {
            self.started = true;
            let roots = self.roots.clone();
            for (u, v) in roots {
                self.eval(u, v);
            }
        }
        // Post-adoption: recompute everything the purge may have touched —
        // our own roots and every pair served for others (their verdicts
        // may have leaned on assumptions about the adopted vertices).
        if self.reverify {
            self.reverify = false;
            let todo: Vec<PairKey> = self
                .roots
                .iter()
                .chain(self.served.keys())
                .copied()
                .collect();
            for (u, v) in todo {
                self.eval(u, v);
            }
        }
        // Roots adopted from a dead peer.
        for (u, v) in std::mem::take(&mut self.pending) {
            self.eval(u, v);
        }
        // Serve verification requests on full local data.
        for (pair, from) in requests {
            self.eval(pair.0, pair.1);
            self.served.entry(pair).or_default().push(from);
        }
        self.flush_assumptions(&mut out);
        self.flush_invalidations(&mut out);
        out
    }
}

/// The [`bsp::Supervisor`] implementing §VI-B worker recovery for
/// `PAllMatch`: a dead worker's vertices are reassigned to survivors
/// ([`SharedPartition::reassign`]), its candidate roots are adopted and
/// re-evaluated by the new owners, and every pending verification request
/// that was addressed to it is replayed. Monotone invalidation makes the
/// replay safe — see the module docs of [`crate`].
struct Recovery {
    part: SharedPartition,
    obs: Option<her_obs::Obs>,
}

impl<'a> bsp::Supervisor<PWorker<'a>> for Recovery {
    fn on_death(
        &mut self,
        workers: &mut [PWorker<'a>],
        death: bsp::Death<Msg>,
        alive: &[usize],
    ) -> Vec<(usize, Msg)> {
        let dead = death.worker;
        if let Some(obs) = &self.obs {
            obs.registry.counter("bsp.worker_deaths").inc();
            obs.tracer.event(
                "bsp.worker_death",
                &format!("worker={} superstep={}", dead, death.superstep),
            );
        }
        let groups = self.part.reassign(dead, alive);
        let reassigned: FxHashSet<VertexId> = groups
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect();
        // New owners adopt their share: the vertices leave their border
        // sets and any verdict leaning on assumptions about them is purged
        // and re-verified authoritatively next superstep.
        for (owner, vs) in &groups {
            let vset: FxHashSet<VertexId> = vs.iter().copied().collect();
            let w = &mut workers[*owner];
            w.matcher.adopt_border(&vset);
            w.requested.retain(|p| !vset.contains(&p.1));
            w.reverify = true;
        }
        // The dead worker's candidate roots (and any adoption work it had
        // not finished) move to the new owners.
        let orphans: Vec<PairKey> = std::mem::take(&mut workers[dead].roots)
            .into_iter()
            .chain(std::mem::take(&mut workers[dead].pending))
            .collect();
        for (u, v) in orphans {
            let owner = self.part.owner(v);
            let w = &mut workers[owner];
            if !w.roots.contains(&(u, v)) {
                w.roots.push((u, v));
                w.pending.push((u, v));
            }
        }
        // Replay: every survivor re-sends its pending verification
        // requests that the dead worker was responsible for. Verification
        // is deterministic and invalidation idempotent, so replays are
        // harmless even if the dead worker had already served some.
        let mut injected = Vec::new();
        for &s in alive {
            let replay: Vec<PairKey> = workers[s]
                .requested
                .iter()
                .filter(|p| reassigned.contains(&p.1))
                .copied()
                .collect();
            for pair in replay {
                let owner = self.part.owner(pair.1);
                if owner != s {
                    workers[s].requests_sent += 1;
                    injected.push((owner, Msg::Request { pair, from: s }));
                }
            }
        }
        // Replay the inbox the dead worker consumed when it panicked:
        // requests go to the vertices' new owners; invalidations were
        // addressed to the dead worker's (discarded) state and are moot.
        for msg in death.lost_inbox {
            if let Msg::Request { pair, from } = msg {
                if alive.contains(&from) {
                    injected.push((self.part.owner(pair.1), Msg::Request { pair, from }));
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.registry.counter("bsp.recoveries").inc();
            obs.tracer.event(
                "bsp.recovery",
                &format!(
                    "worker={} adopters={} replayed={}",
                    dead,
                    groups.len(),
                    injected.len()
                ),
            );
        }
        injected
    }

    fn reroute(&mut self, _workers: &mut [PWorker<'a>], msg: Msg) -> Option<(usize, Msg)> {
        match msg {
            // A request races the death notice: forward to the new owner.
            Msg::Request { pair, from } => Some((self.part.owner(pair.1), Msg::Request { pair, from })),
            // The assumption this invalidation corrects died with its
            // holder; adopters re-verify from scratch.
            Msg::Invalid { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint codec: the BSP barrier state as her-store snapshot sections.
//
// A snapshot holds one "meta" section (format version, worker count, the
// absolute superstep counter and the full vertex→owner table), one
// "worker{i}" section per worker (matcher checkpoint plus the protocol
// bookkeeping) and one "inbox{i}" section per worker (messages already
// routed but not yet consumed). Together with the deterministic protocol
// this makes a resumed run bit-identical to an uninterrupted one.
// Collections are sorted before encoding so identical states produce
// identical bytes.
// ---------------------------------------------------------------------------

/// Snapshot layout version for the parallel engine.
const CKPT_VERSION: u32 = 1;

fn put_pair(e: &mut Enc, (u, v): PairKey) {
    e.put_u32(u.0).put_u32(v.0);
}

fn get_pair(d: &mut Dec<'_>) -> Result<PairKey, CodecError> {
    Ok((VertexId(d.u32()?), VertexId(d.u32()?)))
}

fn put_pairs(e: &mut Enc, pairs: &[PairKey]) {
    e.put_u32(pairs.len() as u32);
    for &p in pairs {
        put_pair(e, p);
    }
}

fn get_pairs(d: &mut Dec<'_>) -> Result<Vec<PairKey>, CodecError> {
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(get_pair(d)?);
    }
    Ok(out)
}

fn encode_msg(e: &mut Enc, msg: &Msg) {
    match msg {
        Msg::Request { pair, from } => {
            e.put_u8(0);
            put_pair(e, *pair);
            e.put_u32(*from as u32);
        }
        Msg::Invalid { pair } => {
            e.put_u8(1);
            put_pair(e, *pair);
        }
    }
}

fn decode_msg(d: &mut Dec<'_>) -> Result<Msg, CodecError> {
    match d.u8()? {
        0 => {
            let pair = get_pair(d)?;
            let from = d.u32()? as usize;
            Ok(Msg::Request { pair, from })
        }
        1 => Ok(Msg::Invalid { pair: get_pair(d)? }),
        t => Err(CodecError {
            offset: 0,
            message: format!("unknown message tag {t:#04x}"),
        }),
    }
}

fn encode_inbox(msgs: &[Msg]) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u32(msgs.len() as u32);
    for m in msgs {
        encode_msg(&mut e, m);
    }
    e.into_bytes()
}

fn decode_inbox(bytes: &[u8]) -> Result<Vec<Msg>, CodecError> {
    let mut d = Dec::new(bytes);
    let n = d.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(decode_msg(&mut d)?);
    }
    d.finish()?;
    Ok(out)
}

fn encode_meta(n: usize, superstep: usize, owners: &[u32]) -> Vec<u8> {
    let mut e = Enc::new();
    e.put_u32(CKPT_VERSION)
        .put_u32(n as u32)
        .put_u64(superstep as u64)
        .put_u32(owners.len() as u32);
    for &o in owners {
        e.put_u32(o);
    }
    e.into_bytes()
}

fn decode_meta(bytes: &[u8]) -> Result<(u32, usize, usize, Vec<u32>), CodecError> {
    let mut d = Dec::new(bytes);
    let version = d.u32()?;
    let n = d.u32()? as usize;
    let superstep = d.u64()? as usize;
    let count = d.u32()? as usize;
    let mut owners = Vec::with_capacity(count.min(1 << 24));
    for _ in 0..count {
        owners.push(d.u32()?);
    }
    d.finish()?;
    Ok((version, n, superstep, owners))
}

/// The durable slice of a [`PWorker`], decoded from a snapshot section.
struct WorkerState {
    ck: MatcherCheckpoint,
    roots: Vec<PairKey>,
    pending: Vec<PairKey>,
    reverify: bool,
    superstep_no: usize,
    started: bool,
    requested: FxHashSet<PairKey>,
    served: FxHashMap<PairKey, Vec<usize>>,
    notified: FxHashSet<(PairKey, usize)>,
    delayed: Vec<(usize, Msg)>,
    requests_sent: u64,
    invalidations_sent: u64,
}

fn decode_worker_state(bytes: &[u8]) -> Result<WorkerState, CodecError> {
    let mut d = Dec::new(bytes);
    let ck = MatcherCheckpoint::decode(d.bytes()?)?;
    let roots = get_pairs(&mut d)?;
    let pending = get_pairs(&mut d)?;
    let reverify = d.bool()?;
    let superstep_no = d.u64()? as usize;
    let started = d.bool()?;
    let requested: FxHashSet<PairKey> = get_pairs(&mut d)?.into_iter().collect();
    let n_served = d.u32()? as usize;
    let mut served = FxHashMap::default();
    for _ in 0..n_served {
        let pair = get_pair(&mut d)?;
        let n_r = d.u32()? as usize;
        let mut rs = Vec::with_capacity(n_r.min(1 << 16));
        for _ in 0..n_r {
            rs.push(d.u32()? as usize);
        }
        served.insert(pair, rs);
    }
    let n_notified = d.u32()? as usize;
    let mut notified = FxHashSet::default();
    for _ in 0..n_notified {
        let pair = get_pair(&mut d)?;
        notified.insert((pair, d.u32()? as usize));
    }
    let n_delayed = d.u32()? as usize;
    let mut delayed = Vec::with_capacity(n_delayed.min(1 << 16));
    for _ in 0..n_delayed {
        let dest = d.u32()? as usize;
        delayed.push((dest, decode_msg(&mut d)?));
    }
    let requests_sent = d.u64()?;
    let invalidations_sent = d.u64()?;
    d.finish()?;
    Ok(WorkerState {
        ck,
        roots,
        pending,
        reverify,
        superstep_no,
        started,
        requested,
        served,
        notified,
        delayed,
        requests_sent,
        invalidations_sent,
    })
}

impl<'a> PWorker<'a> {
    /// Encodes the durable worker state. Hash collections are sorted so
    /// identical states always produce identical bytes.
    fn encode_state(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_bytes(&self.matcher.checkpoint().encode());
        put_pairs(&mut e, &self.roots);
        put_pairs(&mut e, &self.pending);
        e.put_bool(self.reverify);
        e.put_u64(self.superstep_no as u64);
        e.put_bool(self.started);
        let mut requested: Vec<PairKey> = self.requested.iter().copied().collect();
        requested.sort_unstable();
        put_pairs(&mut e, &requested);
        let mut served: Vec<(PairKey, &Vec<usize>)> =
            self.served.iter().map(|(k, v)| (*k, v)).collect();
        served.sort_unstable_by_key(|&(k, _)| k);
        e.put_u32(served.len() as u32);
        for (pair, reqs) in served {
            put_pair(&mut e, pair);
            e.put_u32(reqs.len() as u32);
            for &r in reqs {
                e.put_u32(r as u32);
            }
        }
        let mut notified: Vec<(PairKey, usize)> = self.notified.iter().copied().collect();
        notified.sort_unstable();
        e.put_u32(notified.len() as u32);
        for (pair, r) in notified {
            put_pair(&mut e, pair);
            e.put_u32(r as u32);
        }
        e.put_u32(self.delayed.len() as u32);
        for (dest, msg) in &self.delayed {
            e.put_u32(*dest as u32);
            encode_msg(&mut e, msg);
        }
        e.put_u64(self.requests_sent).put_u64(self.invalidations_sent);
        e.into_bytes()
    }
}

/// Maps a decode failure inside snapshot `generation` into a
/// [`StoreError::Corrupt`] anchored at the checkpoint directory.
fn corrupt(dir: &Path, generation: u64, msg: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt {
        path: dir.to_path_buf(),
        offset: 0,
        message: format!("snapshot generation {generation}: {msg}"),
    }
}

fn section<'s>(snap: &'s Snapshot, dir: &Path, name: &str) -> Result<&'s [u8], StoreError> {
    snap.section(name)
        .ok_or_else(|| corrupt(dir, snap.generation, format!("missing section {name:?}")))
}

/// Persists one barrier's full engine state; returns the payload bytes.
fn write_checkpoint(
    store: &SnapshotStore,
    part: &SharedPartition,
    workers: &[PWorker<'_>],
    inboxes: &[Vec<Msg>],
    superstep: usize,
) -> Result<u64, StoreError> {
    let fixed = part.snapshot();
    let meta = encode_meta(workers.len(), superstep, fixed.owners());
    let worker_bytes: Vec<Vec<u8>> = workers.iter().map(|w| w.encode_state()).collect();
    let inbox_bytes: Vec<Vec<u8>> = inboxes.iter().map(|b| encode_inbox(b)).collect();
    let worker_names: Vec<String> = (0..workers.len()).map(|i| format!("worker{i}")).collect();
    let inbox_names: Vec<String> = (0..inboxes.len()).map(|i| format!("inbox{i}")).collect();
    let mut sections: Vec<(&str, &[u8])> = vec![("meta", meta.as_slice())];
    for (name, bytes) in worker_names.iter().zip(&worker_bytes) {
        sections.push((name.as_str(), bytes.as_slice()));
    }
    for (name, bytes) in inbox_names.iter().zip(&inbox_bytes) {
        sections.push((name.as_str(), bytes.as_slice()));
    }
    store.write(&sections)?;
    let payload = meta.len()
        + worker_bytes.iter().map(Vec::len).sum::<usize>()
        + inbox_bytes.iter().map(Vec::len).sum::<usize>();
    Ok(payload as u64)
}

/// Shared top-k selection table: vertex → `h_r` output.
pub(crate) type SelectionMap =
    FxHashMap<VertexId, std::sync::Arc<Vec<(VertexId, her_graph::Path)>>>;

/// Precomputes `h_r` top-k selections for every non-leaf vertex, chunked
/// across `n` threads.
pub(crate) fn precompute_selections(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    let vertices: Vec<VertexId> = g.vertices().filter(|&v| !g.is_leaf(v)).collect();
    let chunk = vertices.len().div_ceil(n.max(1)).max(1);
    let parts: Vec<SelectionMap> = std::thread::scope(|s| {
            vertices
                .chunks(chunk)
                .map(|vs| {
                    s.spawn(move || {
                        vs.iter()
                            .map(|&v| {
                                (
                                    v,
                                    std::sync::Arc::new(
                                        params.ranker.select(g, v, params.thresholds.k),
                                    ),
                                )
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("selection thread panicked"))
                .collect()
        });
    let mut out = FxHashMap::default();
    for p in parts {
        out.extend(p);
    }
    out
}

/// Crate-internal re-export for the asynchronous engine.
pub(crate) fn precompute_selections_pub(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    precompute_selections(g, params, n)
}

/// Builds the process-wide shared score layer for a parallel run: one
/// sharded cache (wired into the `scores.*` counters when `obs` is set)
/// pre-warmed with the distinct vertex labels of both graphs and the
/// distinct edge-label sequences of the precomputed selections, so the
/// worker hot loops perform hash lookups instead of embedding.
pub(crate) fn build_shared_scores(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    sels: [&SelectionMap; 2],
    cfg: &ParallelConfig,
    threads: usize,
) -> SharedScores {
    // A caller-supplied handle (e.g. the `Her` facade's) keeps its memo:
    // the prewarm below reads through it, so anything embedded by an
    // earlier run stays embedded exactly once process-wide.
    let shared = match (cfg.shared_handle.as_ref(), cfg.obs.as_ref()) {
        (Some(s), _) => s.clone(),
        (None, Some(o)) => SharedScores::with_obs_for_workers(o, threads),
        (None, None) => SharedScores::for_workers(threads),
    };
    let mut labels: Vec<LabelId> = g.vertices().map(|v| g.label(v)).collect();
    labels.extend(gd.vertices().map(|v| gd.label(v)));
    shared.prewarm_labels(params, interner, &labels, threads);
    let mut seqs: Vec<Vec<LabelId>> = Vec::new();
    for sel in sels {
        for paths in sel.values() {
            for (_, p) in paths.iter() {
                seqs.push(p.edge_labels().to_vec());
            }
        }
    }
    shared.prewarm_paths(params, interner, &seqs, threads);
    shared
}

/// Parallel `AllParaMatch`: all matches `(u_t, v)` for the given `G_D`
/// tuple vertices across `G`, computed with `cfg.workers` BSP workers.
/// Returns the sorted match set and run statistics.
pub fn pallmatch(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
) -> (Vec<PairKey>, ParallelStats) {
    match engine(gd, g, interner, params, tuple_vertices, cfg, None) {
        Ok(run) => (run.matches, run.stats),
        // Without a durability layer the engine performs no store I/O.
        Err(e) => unreachable!("store error on a non-durable run: {e}"),
    }
}

/// [`pallmatch`] with crash-consistent checkpoints: the engine snapshots
/// the full barrier state (partition table, per-worker matcher +
/// protocol bookkeeping, undelivered inboxes) into `durability.dir`
/// every `every_supersteps` barriers, and with `durability.resume` it
/// re-enters the BSP loop exactly where the newest valid snapshot left
/// off. Checkpoint bytes are validated per frame; a corrupt newest
/// snapshot falls back to the previous generation. Determinism of the
/// protocol makes a resumed run equal to an uninterrupted one.
pub fn pallmatch_durable(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
    durability: &DurabilityConfig,
) -> Result<DurableRun, StoreError> {
    engine(gd, g, interner, params, tuple_vertices, cfg, Some(durability))
}

fn engine(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
    durability: Option<&DurabilityConfig>,
) -> Result<DurableRun, StoreError> {
    let n = cfg.workers.max(1);

    // Durable runs open the snapshot store up front so an unusable
    // checkpoint directory fails before any compute is spent.
    let store = match durability {
        Some(d) => {
            let s = SnapshotStore::open(&d.dir)?;
            Some(match &cfg.obs {
                Some(o) => s.with_obs(o.clone()),
                None => s,
            })
        }
        None => None,
    };
    let snap = match (durability, &store) {
        (Some(d), Some(s)) if d.resume => s.load_latest()?,
        _ => None,
    };
    let resumed_from = snap.as_ref().map(|s| s.generation);

    // Global h_r preprocessing (§IV "Complexity"): top-k selections for
    // every vertex, computed once in parallel and shared read-only by all
    // workers. This keeps descendant rankings identical across fragment
    // boundaries, which Theorem 3's equivalence with the sequential
    // algorithm implicitly assumes. Selections are derived state, so a
    // resumed run recomputes rather than checkpoints them.
    let t0 = std::time::Instant::now();
    let span = cfg
        .obs
        .as_ref()
        .map(|o| o.tracer.span_ctx("parallel.selection", cfg.ctx));
    let sel_g = precompute_selections(g, params, n);
    let sel_d = precompute_selections(gd, params, n);
    drop(span);
    let selection_secs = t0.elapsed().as_secs_f64();

    // Shared score layer: every worker (and the candidate probe) reads
    // through one sharded cache, pre-warmed here so `M_v`/`M_ρ` run once
    // per distinct label process-wide instead of once per worker. The
    // cache is pure memoisation of deterministic score functions, so
    // Theorem 3's sequential equivalence is unaffected.
    let shared_scores = cfg.shared_scores.then(|| {
        let span = cfg
            .obs
            .as_ref()
            .map(|o| o.tracer.span_ctx("parallel.prewarm", cfg.ctx));
        let s = build_shared_scores(gd, g, interner, params, [&sel_d, &sel_g], cfg, n);
        drop(span);
        s
    });

    let new_matcher = || {
        Matcher::with_options(
            gd,
            g,
            interner,
            params,
            MatcherOptions {
                obs: cfg.obs.clone(),
                shared_scores: shared_scores.clone(),
                ..Default::default()
            },
        )
        .with_selections(sel_d.clone(), sel_g.clone())
    };

    let mut candidates_secs = 0.0;
    let (part, mut workers, resume_state) = if let (Some(snap), Some(store)) = (&snap, &store) {
        // Resume: rebuild the barrier state captured in the snapshot.
        // The matcher checkpoint carries each worker's border set, and
        // candidate roots were captured verbatim, so neither borders nor
        // candidate generation are recomputed.
        let dir = store.dir();
        let (version, meta_n, superstep, owners) =
            decode_meta(section(snap, dir, "meta")?)
                .map_err(|e| corrupt(dir, snap.generation, format!("meta: {e}")))?;
        if version != CKPT_VERSION {
            return Err(StoreError::Version {
                path: dir.to_path_buf(),
                message: format!(
                    "parallel checkpoint v{version} (this build reads v{CKPT_VERSION})"
                ),
            });
        }
        if meta_n != n {
            return Err(StoreError::Version {
                path: dir.to_path_buf(),
                message: format!(
                    "checkpoint was taken with {meta_n} workers; this run is configured with {n}"
                ),
            });
        }
        if owners.len() != g.vertex_count() {
            return Err(corrupt(
                dir,
                snap.generation,
                format!(
                    "partition covers {} vertices but G has {}",
                    owners.len(),
                    g.vertex_count()
                ),
            ));
        }
        let fixed = Partition::from_owners(owners, n)
            .ok_or_else(|| corrupt(dir, snap.generation, "partition owner out of range"))?;
        let part = SharedPartition::new(fixed);
        let mut workers: Vec<PWorker<'_>> = Vec::with_capacity(n);
        let mut inboxes: Vec<Vec<Msg>> = Vec::with_capacity(n);
        for i in 0..n {
            let st = decode_worker_state(section(snap, dir, &format!("worker{i}"))?)
                .map_err(|e| corrupt(dir, snap.generation, format!("worker{i}: {e}")))?;
            inboxes.push(
                decode_inbox(section(snap, dir, &format!("inbox{i}"))?)
                    .map_err(|e| corrupt(dir, snap.generation, format!("inbox{i}: {e}")))?,
            );
            let mut matcher = new_matcher();
            matcher.restore(&st.ck);
            workers.push(PWorker {
                id: i,
                matcher,
                part: part.clone(),
                fault: cfg.fault.clone(),
                roots: st.roots,
                pending: st.pending,
                reverify: st.reverify,
                superstep_no: st.superstep_no,
                requested: st.requested,
                served: st.served,
                notified: st.notified,
                started: st.started,
                delayed: st.delayed,
                requests_sent: st.requests_sent,
                invalidations_sent: st.invalidations_sent,
            });
        }
        if let Some(obs) = &cfg.obs {
            obs.tracer.event(
                "store.resume",
                &format!("generation={} superstep={superstep}", snap.generation),
            );
        }
        (part, workers, Some(bsp::ResumeState { superstep, inboxes }))
    } else {
        // Fresh run: partition G and generate candidate root pairs.
        let fixed = match cfg.partition {
            PartitionStrategy::RoundRobin => partition_round_robin(g, n),
            PartitionStrategy::Greedy => partition_greedy(g, n),
        };
        let borders = fixed.all_borders(g);
        let part = SharedPartition::new(fixed.clone());

        // Candidate generation per worker: (u_t, v) with owned v and
        // h_v ≥ σ. The blocking index is built over the full G labels (it
        // only looks at labels, which fragments share).
        let t0 = std::time::Instant::now();
        let span = cfg
            .obs
            .as_ref()
            .map(|o| o.tracer.span_ctx("parallel.candidates", cfg.ctx));
        let index = cfg.use_blocking.then(|| InvertedIndex::build(g, interner));
        let sigma = params.thresholds.sigma;
        let mut roots_per_worker: Vec<Vec<PairKey>> = vec![Vec::new(); n];
        {
            // One throwaway matcher for h_v evaluation over the full graph.
            // It shares the score layer so its embeddings are not redone,
            // and reports into the same registry so `scores.embed_calls`
            // covers candidate generation in both modes.
            let mut probe = Matcher::with_options(
                gd,
                g,
                interner,
                params,
                MatcherOptions {
                    obs: cfg.obs.clone(),
                    shared_scores: shared_scores.clone(),
                    ..Default::default()
                },
            );
            for &u in tuple_vertices {
                let pool: Vec<VertexId> = match &index {
                    Some(idx) => {
                        idx.candidates(&her_core::index::blocking_query(gd, interner, u))
                    }
                    None => g.vertices().collect(),
                };
                for v in pool {
                    if probe.hv_pair(u, v) >= sigma {
                        roots_per_worker[fixed.owner(v)].push((u, v));
                    }
                }
            }
        }
        // Degree-ordered verification inside each worker (Fig. 8 line 4).
        for roots in roots_per_worker.iter_mut() {
            roots.sort_by_key(|&(u, v)| (gd.degree(u) + g.degree(v), u, v));
        }
        drop(span);
        candidates_secs = t0.elapsed().as_secs_f64();

        let workers: Vec<PWorker<'_>> = (0..n)
            .map(|i| PWorker {
                id: i,
                matcher: new_matcher().with_border(borders[i].clone()),
                part: part.clone(),
                fault: cfg.fault.clone(),
                roots: std::mem::take(&mut roots_per_worker[i]),
                pending: Vec::new(),
                reverify: false,
                superstep_no: 0,
                requested: FxHashSet::default(),
                served: FxHashMap::default(),
                notified: FxHashSet::default(),
                started: false,
                delayed: Vec::new(),
                requests_sent: 0,
                invalidations_sent: 0,
            })
            .collect();
        (part, workers, None)
    };

    let t0 = std::time::Instant::now();
    let span = cfg
        .obs
        .as_ref()
        .map(|o| o.tracer.span_ctx("parallel.bsp", cfg.ctx));
    let mut recovery = Recovery {
        part: part.clone(),
        obs: cfg.obs.clone(),
    };
    let mut ckpt_count = 0u64;
    let mut ckpt_bytes = 0u64;
    let mut ckpt_secs = 0.0f64;
    let every = durability.map_or(1, |d| d.every_supersteps.max(1));
    let stop_after = durability.and_then(|d| d.stop_after_supersteps);
    let hook_store = store.as_ref();
    let hook_part = part.clone();
    let hook_obs = cfg.obs.clone();
    let hook_ctx = cfg.ctx;
    let supervised = bsp::run_supervised_resumable(
        &mut workers,
        &mut recovery,
        cfg.simulate_cluster,
        resume_state,
        &mut |b| {
            let stop = stop_after.is_some_and(|k| b.superstep >= k);
            if let Some(o) = &hook_obs {
                // One barrier event per superstep, tagged with the
                // originating request so `her-cli trace` can show where
                // a request's BSP time went superstep by superstep.
                let routed: usize = b.inboxes.iter().map(Vec::len).sum();
                o.tracer.event_ctx(
                    "bsp.superstep",
                    &format!("superstep={} routed={routed}", b.superstep),
                    hook_ctx,
                );
            }
            if let Some(store) = hook_store {
                // The fixpoint barrier needs no snapshot: the run is
                // complete and its results are being returned.
                if !b.fixpoint && (stop || b.superstep % every == 0) {
                    let t = std::time::Instant::now();
                    match write_checkpoint(store, &hook_part, b.workers, b.inboxes, b.superstep)
                    {
                        Ok(bytes) => {
                            ckpt_count += 1;
                            ckpt_bytes += bytes;
                            ckpt_secs += t.elapsed().as_secs_f64();
                        }
                        Err(e) => {
                            // A failed write degrades durability, not the
                            // run: older snapshots remain valid fallbacks.
                            her_obs::warn!(
                                "checkpoint at superstep {} failed: {}",
                                b.superstep,
                                e
                            );
                            if let Some(o) = &hook_obs {
                                o.registry.counter("store.checkpoint_failures").inc();
                            }
                        }
                    }
                }
            }
            if stop {
                bsp::BarrierControl::Stop
            } else {
                bsp::BarrierControl::Continue
            }
        },
    );
    let deaths = supervised.deaths;
    let completed = !supervised.stopped_early;
    let run = supervised.run;
    drop(span);
    let bsp_secs = t0.elapsed().as_secs_f64();

    let mut stats = ParallelStats {
        supersteps: run.supersteps,
        deaths,
        selection_secs,
        candidates_secs,
        bsp_secs,
        checkpoints: ckpt_count,
        checkpoint_bytes: ckpt_bytes,
        checkpoint_secs: ckpt_secs,
        simulated_secs: (selection_secs + candidates_secs) / n as f64
            + run.critical_path_secs,
        ..Default::default()
    };
    let mut result: Vec<PairKey> = Vec::new();
    for w in &workers {
        stats.requests += w.requests_sent;
        stats.invalidations += w.invalidations_sent;
        for &(u, v) in &w.roots {
            if w.matcher.cached(u, v) == Some(true) {
                result.push((u, v));
            }
        }
    }
    result.sort();
    result.dedup();
    if let Some(obs) = &cfg.obs {
        let r = &obs.registry;
        // Keep the recovery counters in the namespace even for clean runs,
        // so "zero deaths" is an observable fact rather than a missing key.
        r.counter("bsp.worker_deaths");
        r.counter("bsp.recoveries");
        r.counter("bsp.supersteps").add(run.supersteps as u64);
        let busy = r.histogram("bsp.superstep.busy_us");
        let skew = r.histogram("bsp.superstep.skew_us");
        let msgs = r.histogram("bsp.superstep.messages");
        for step in &run.per_superstep {
            busy.observe((step.busy_max_secs * 1e6) as u64);
            skew.observe((step.skew_secs() * 1e6) as u64);
            msgs.observe(step.messages as u64);
        }
        r.counter("parallel.requests").add(stats.requests);
        r.counter("parallel.invalidations").add(stats.invalidations);
        r.counter("parallel.runs").inc();
        r.gauge("parallel.workers").set(n as f64);
        r.gauge("parallel.simulated_secs").set(stats.simulated_secs);
    }
    Ok(DurableRun {
        matches: result,
        stats,
        completed,
        resumed_from,
    })
}

/// Parallel VPair: all matches of a single tuple vertex, same protocol.
pub fn pvpair(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    u_t: VertexId,
    cfg: &ParallelConfig,
) -> (Vec<VertexId>, ParallelStats) {
    let (pairs, stats) = pallmatch(gd, g, interner, params, &[u_t], cfg);
    (pairs.into_iter().map(|(_, v)| v).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_core::apair::apair;
    use her_core::params::Thresholds;
    use her_graph::GraphBuilder;

    /// Builds `m` entities in G_D and G with a deterministic attribute
    /// permutation; entity i of G_D truly matches entity i of G. Each
    /// entity has a *non-leaf* brand sub-entity (brand → country), so the
    /// recursion crosses fragment boundaries under round-robin partitions.
    fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
        let colors = ["white", "red", "blue", "green"];
        let brands = ["Acme", "Globex", "Initech"];
        let countries = ["Germany", "Vietnam", "Japan"];
        let build = |shared: Option<Interner>| {
            let mut b = match shared {
                Some(i) => GraphBuilder::with_interner(i),
                None => GraphBuilder::new(),
            };
            let mut roots = Vec::new();
            for i in 0..m {
                let root = b.add_vertex("item");
                let c = b.add_vertex(colors[i % colors.len()]);
                let name = b.add_vertex(&format!("entity {i}"));
                let brand = b.add_vertex(brands[i % brands.len()]);
                let country = b.add_vertex(countries[i % countries.len()]);
                b.add_edge(root, c, "color");
                b.add_edge(root, name, "name");
                b.add_edge(root, brand, "brand");
                b.add_edge(brand, country, "country");
                roots.push(root);
            }
            let (g, i) = b.build();
            (g, i, roots)
        };
        let (gd, i1, us) = build(None);
        let (g, interner, vs) = build(Some(i1));
        (gd, g, interner, us, vs)
    }

    fn params() -> Params {
        Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
    }

    #[test]
    fn parallel_equals_sequential() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = apair(&mut m, &us, None);
        for n in [1, 2, 4, 7] {
            let (parallel, _) = pallmatch(
                &gd,
                &g,
                &interner,
                &p,
                &us,
                &ParallelConfig {
                    workers: n,
                    use_blocking: false,
                    ..Default::default()
                },
            );
            assert_eq!(parallel, sequential, "workers = {n}");
        }
    }

    /// The shared score layer is pure memoisation of deterministic score
    /// functions: ablating it must not change a single match, and with it
    /// on the whole run embeds each distinct label at most once (the
    /// prewarm pass) instead of once per worker.
    #[test]
    fn shared_scores_ablation_is_equivalent_and_bounds_embeds() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let run = |shared: bool| {
            let obs = her_obs::Obs::new();
            let cfg = ParallelConfig {
                workers: 4,
                use_blocking: false,
                obs: Some(obs.clone()),
                shared_scores: shared,
                ..Default::default()
            };
            let (matches, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);
            (matches, obs.registry.snapshot().counter("scores.embed_calls"))
        };
        let (with, shared_embeds) = run(true);
        let (without, unshared_embeds) = run(false);
        assert_eq!(with, without);
        if her_obs::ENABLED {
            let distinct: FxHashSet<LabelId> = g
                .vertices()
                .map(|v| g.label(v))
                .chain(gd.vertices().map(|v| gd.label(v)))
                .collect();
            assert!(
                shared_embeds <= distinct.len() as u64,
                "shared mode embedded {shared_embeds} labels but only {} are distinct",
                distinct.len()
            );
            assert!(
                unshared_embeds > shared_embeds,
                "private caches ({unshared_embeds} embeds) should redo work \
                 the shared layer ({shared_embeds}) does once"
            );
        }
    }

    #[test]
    fn finds_true_matches() {
        let (gd, g, interner, us, vs) = dataset(8);
        let p = params();
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        for (i, (&u, &v)) in us.iter().zip(&vs).enumerate() {
            assert!(result.contains(&(u, v)), "entity {i} missing");
        }
        assert!(stats.supersteps >= 1);
    }

    #[test]
    fn blocking_equivalence_parallel() {
        let (gd, g, interner, us, _) = dataset(10);
        let p = params();
        let (with, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: true,
                ..Default::default()
            },
        );
        let (without, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(with, without);
    }

    #[test]
    fn pvpair_matches_sequential_vpair() {
        let (gd, g, interner, us, _) = dataset(9);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = her_core::vpair::vpair(&mut m, us[3], None);
        let (parallel, _) = pvpair(
            &gd,
            &g,
            &interner,
            &p,
            us[3],
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn greedy_partition_reduces_message_traffic() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let run = |strategy| {
            pallmatch(&gd, &g, &interner, &p, &us, &ParallelConfig {
                workers: 4,
                partition: strategy,
                use_blocking: false,
                ..Default::default()
            })
        };
        let (r_rr, s_rr) = run(PartitionStrategy::RoundRobin);
        let (r_gr, s_gr) = run(PartitionStrategy::Greedy);
        assert_eq!(r_rr, r_gr, "results must not depend on the partition");
        assert!(
            s_gr.requests <= s_rr.requests,
            "greedy {} > round-robin {} requests",
            s_gr.requests,
            s_rr.requests
        );
    }

    /// Cross-fragment structure: entity attributes deliberately placed on a
    /// different worker than the entity root, forcing assumptions/requests.
    #[test]
    fn cross_fragment_assumptions_resolve() {
        let (gd, g, interner, us, vs) = dataset(6);
        let p = params();
        // Round-robin over consecutive ids splits each star across workers.
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert!(result.contains(&(us[0], vs[0])));
        // With stars split across workers there must be message traffic…
        // unless every attribute happens to be co-located; with 4 workers
        // and 4-vertex stars, cross edges are guaranteed.
        assert!(stats.requests > 0, "expected cross-fragment requests");
    }
}
