//! `PAllMatch`: parallel `AllParaMatch` by fixpoint computation (§VI-B).
//!
//! The protocol, following equations (3)/(4) of the paper:
//!
//! 1. **PPSim** (superstep 1): every worker runs `AllParaMatch` over its
//!    fragment's candidate pairs. Pairs whose `G`-side vertex is a *border
//!    node* are optimistically assumed valid; each such assumption is sent
//!    to the border vertex's owner as a verification request.
//! 2. **Messages**: owners verify requested pairs authoritatively (on their
//!    full local out-edges) and reply with the *invalid* ones — the paper's
//!    `v.status` changes. Valid pairs need no reply: they were already
//!    assumed.
//! 3. **IncPSim**: a worker receiving an invalidation flips the pair to
//!    false and re-checks every recorded dependent (the cleanup machinery
//!    of `ParaMatch`), possibly generating new assumptions/requests.
//! 4. **Termination**: the message fixpoint. `Π` is the union of local
//!    verdicts on candidate root pairs.
//!
//! Invalidation is monotone (true → false only, at the assumption level),
//! so the fixpoint exists and is reached in finitely many supersteps.

use crate::bsp;
use crate::partition::{partition_greedy, partition_round_robin, Partition};
use her_core::index::InvertedIndex;
use her_core::paramatch::{Matcher, PairKey};
use her_core::params::Params;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, VertexId};

/// How `G` is assigned to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Vertex id modulo `n`: balanced, maximal cut (worst-case traffic).
    #[default]
    RoundRobin,
    /// Greedy balanced edge-cut: keeps entity neighbourhoods together,
    /// minimising border nodes and message volume (the paper's edge-cut).
    Greedy,
}

/// Configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of workers `n`.
    pub workers: usize,
    /// Partitioning strategy for `G`.
    pub partition: PartitionStrategy,
    /// Build a blocking index per worker for candidate generation.
    pub use_blocking: bool,
    /// Execute workers sequentially with exact per-worker timing, so the
    /// critical path faithfully simulates an `n`-machine cluster even on an
    /// oversubscribed host. `false` runs workers on OS threads.
    pub simulate_cluster: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            partition: PartitionStrategy::default(),
            use_blocking: true,
            simulate_cluster: true,
        }
    }
}

/// Counters describing a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelStats {
    /// Supersteps executed until the fixpoint.
    pub supersteps: usize,
    /// Verification requests exchanged.
    pub requests: u64,
    /// Invalidations exchanged.
    pub invalidations: u64,
    /// Seconds spent precomputing global `h_r` selections.
    pub selection_secs: f64,
    /// Seconds spent generating candidate root pairs.
    pub candidates_secs: f64,
    /// Seconds spent inside the BSP supersteps (host wall-clock).
    pub bsp_secs: f64,
    /// Simulated `n`-machine wall-clock: perfectly-parallel preprocessing
    /// plus the BSP critical path (per-superstep slowest worker). On a
    /// multi-core host the real wall-clock approaches this; on a
    /// single-core host it is the honest estimate of cluster runtime.
    pub simulated_secs: f64,
}

enum Msg {
    /// "I assumed (u, v); please verify" — carries the requester id.
    Request { pair: PairKey, from: usize },
    /// "(u, v) is invalid."
    Invalid { pair: PairKey },
}

struct PWorker<'a> {
    id: usize,
    matcher: Matcher<'a>,
    part: &'a Partition,
    /// Candidate root pairs owned by this worker.
    roots: Vec<PairKey>,
    /// Requests already sent (dedup).
    requested: FxHashSet<PairKey>,
    /// Pairs verified on behalf of others: pair → requesters.
    served: FxHashMap<PairKey, Vec<usize>>,
    /// Served pairs already notified as invalid.
    notified: FxHashSet<PairKey>,
    started: bool,
    requests_sent: u64,
    invalidations_sent: u64,
}

impl<'a> PWorker<'a> {
    /// Drains fresh border assumptions into request messages.
    fn flush_assumptions(&mut self, out: &mut Vec<(usize, Msg)>) {
        for pair in self.matcher.take_new_assumptions() {
            if self.requested.insert(pair) {
                let owner = self.part.owner(pair.1);
                if owner == self.id {
                    // Shouldn't happen (owned vertices aren't border), but
                    // guard against degenerate partitions.
                    continue;
                }
                self.requests_sent += 1;
                out.push((
                    owner,
                    Msg::Request {
                        pair,
                        from: self.id,
                    },
                ));
            }
        }
    }

    /// Notifies requesters about served pairs that are (now) invalid.
    fn flush_invalidations(&mut self, out: &mut Vec<(usize, Msg)>) {
        let mut newly: Vec<(PairKey, Vec<usize>)> = Vec::new();
        for (pair, requesters) in &self.served {
            if self.notified.contains(pair) {
                continue;
            }
            if self.matcher.cached(pair.0, pair.1) == Some(false) {
                newly.push((*pair, requesters.clone()));
            }
        }
        for (pair, requesters) in newly {
            self.notified.insert(pair);
            for r in requesters {
                self.invalidations_sent += 1;
                out.push((r, Msg::Invalid { pair }));
            }
        }
    }
}

impl<'a> bsp::Worker for PWorker<'a> {
    type Msg = Msg;

    fn superstep(&mut self, inbox: Vec<Msg>) -> Vec<(usize, Msg)> {
        let mut out = Vec::new();
        // IncPSim: apply invalidations first, then serve verifications.
        let mut requests = Vec::new();
        for msg in inbox {
            match msg {
                Msg::Invalid { pair } => self.matcher.apply_invalidation(pair.0, pair.1),
                Msg::Request { pair, from } => requests.push((pair, from)),
            }
        }
        // PPSim: the first superstep evaluates all local root candidates.
        if !self.started {
            self.started = true;
            let roots = self.roots.clone();
            for (u, v) in roots {
                let _ = self.matcher.is_match(u, v);
            }
        }
        // Serve verification requests on full local data.
        for (pair, from) in requests {
            let _ = self.matcher.is_match(pair.0, pair.1);
            self.served.entry(pair).or_default().push(from);
        }
        self.flush_assumptions(&mut out);
        self.flush_invalidations(&mut out);
        out
    }
}

/// Shared top-k selection table: vertex → `h_r` output.
pub(crate) type SelectionMap =
    FxHashMap<VertexId, std::sync::Arc<Vec<(VertexId, her_graph::Path)>>>;

/// Precomputes `h_r` top-k selections for every non-leaf vertex, chunked
/// across `n` threads.
pub(crate) fn precompute_selections(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    let vertices: Vec<VertexId> = g.vertices().filter(|&v| !g.is_leaf(v)).collect();
    let chunk = vertices.len().div_ceil(n.max(1)).max(1);
    let parts: Vec<SelectionMap> = std::thread::scope(|s| {
            vertices
                .chunks(chunk)
                .map(|vs| {
                    s.spawn(move || {
                        vs.iter()
                            .map(|&v| {
                                (
                                    v,
                                    std::sync::Arc::new(
                                        params.ranker.select(g, v, params.thresholds.k),
                                    ),
                                )
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
    let mut out = FxHashMap::default();
    for p in parts {
        out.extend(p);
    }
    out
}

/// Crate-internal re-export for the asynchronous engine.
pub(crate) fn precompute_selections_pub(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    precompute_selections(g, params, n)
}

/// Parallel `AllParaMatch`: all matches `(u_t, v)` for the given `G_D`
/// tuple vertices across `G`, computed with `cfg.workers` BSP workers.
/// Returns the sorted match set and run statistics.
pub fn pallmatch(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
) -> (Vec<PairKey>, ParallelStats) {
    let n = cfg.workers.max(1);
    let part = match cfg.partition {
        PartitionStrategy::RoundRobin => partition_round_robin(g, n),
        PartitionStrategy::Greedy => partition_greedy(g, n),
    };
    let borders = part.all_borders(g);

    // Global h_r preprocessing (§IV "Complexity"): top-k selections for
    // every vertex, computed once in parallel and shared read-only by all
    // workers. This keeps descendant rankings identical across fragment
    // boundaries, which Theorem 3's equivalence with the sequential
    // algorithm implicitly assumes.
    let t0 = std::time::Instant::now();
    let sel_g = precompute_selections(g, params, n);
    let sel_d = precompute_selections(gd, params, n);
    let selection_secs = t0.elapsed().as_secs_f64();

    // Candidate generation per worker: (u_t, v) with owned v and h_v ≥ σ.
    // The blocking index is built over the full G labels (it only looks at
    // labels, which fragments share).
    let t0 = std::time::Instant::now();
    let index = cfg.use_blocking.then(|| InvertedIndex::build(g, interner));
    let sigma = params.thresholds.sigma;
    let mut roots_per_worker: Vec<Vec<PairKey>> = vec![Vec::new(); n];
    {
        // One throwaway matcher for h_v evaluation over the full graph.
        let mut probe = Matcher::new(gd, g, interner, params);
        for &u in tuple_vertices {
            let pool: Vec<VertexId> = match &index {
                Some(idx) => {
                    idx.candidates(&her_core::index::blocking_query(gd, interner, u))
                }
                None => g.vertices().collect(),
            };
            for v in pool {
                if probe.hv_pair(u, v) >= sigma {
                    roots_per_worker[part.owner(v)].push((u, v));
                }
            }
        }
    }
    // Degree-ordered verification inside each worker (Fig. 8 line 4).
    for roots in roots_per_worker.iter_mut() {
        roots.sort_by_key(|&(u, v)| (gd.degree(u) + g.degree(v), u, v));
    }
    let candidates_secs = t0.elapsed().as_secs_f64();

    let mut workers: Vec<PWorker<'_>> = (0..n)
        .map(|i| PWorker {
            id: i,
            matcher: Matcher::new(gd, g, interner, params)
                .with_border(borders[i].clone())
                .with_selections(sel_d.clone(), sel_g.clone()),
            part: &part,
            roots: std::mem::take(&mut roots_per_worker[i]),
            requested: FxHashSet::default(),
            served: FxHashMap::default(),
            notified: FxHashSet::default(),
            started: false,
            requests_sent: 0,
            invalidations_sent: 0,
        })
        .collect();

    let t0 = std::time::Instant::now();
    let run = if cfg.simulate_cluster {
        bsp::run_simulated(&mut workers)
    } else {
        bsp::run_timed(&mut workers)
    };
    let bsp_secs = t0.elapsed().as_secs_f64();

    let mut stats = ParallelStats {
        supersteps: run.supersteps,
        selection_secs,
        candidates_secs,
        bsp_secs,
        simulated_secs: (selection_secs + candidates_secs) / n as f64
            + run.critical_path_secs,
        ..Default::default()
    };
    let mut result: Vec<PairKey> = Vec::new();
    for w in &workers {
        stats.requests += w.requests_sent;
        stats.invalidations += w.invalidations_sent;
        for &(u, v) in &w.roots {
            if w.matcher.cached(u, v) == Some(true) {
                result.push((u, v));
            }
        }
    }
    result.sort();
    result.dedup();
    (result, stats)
}

/// Parallel VPair: all matches of a single tuple vertex, same protocol.
pub fn pvpair(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    u_t: VertexId,
    cfg: &ParallelConfig,
) -> (Vec<VertexId>, ParallelStats) {
    let (pairs, stats) = pallmatch(gd, g, interner, params, &[u_t], cfg);
    (pairs.into_iter().map(|(_, v)| v).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_core::apair::apair;
    use her_core::params::Thresholds;
    use her_graph::GraphBuilder;

    /// Builds `m` entities in G_D and G with a deterministic attribute
    /// permutation; entity i of G_D truly matches entity i of G. Each
    /// entity has a *non-leaf* brand sub-entity (brand → country), so the
    /// recursion crosses fragment boundaries under round-robin partitions.
    fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
        let colors = ["white", "red", "blue", "green"];
        let brands = ["Acme", "Globex", "Initech"];
        let countries = ["Germany", "Vietnam", "Japan"];
        let build = |shared: Option<Interner>| {
            let mut b = match shared {
                Some(i) => GraphBuilder::with_interner(i),
                None => GraphBuilder::new(),
            };
            let mut roots = Vec::new();
            for i in 0..m {
                let root = b.add_vertex("item");
                let c = b.add_vertex(colors[i % colors.len()]);
                let name = b.add_vertex(&format!("entity {i}"));
                let brand = b.add_vertex(brands[i % brands.len()]);
                let country = b.add_vertex(countries[i % countries.len()]);
                b.add_edge(root, c, "color");
                b.add_edge(root, name, "name");
                b.add_edge(root, brand, "brand");
                b.add_edge(brand, country, "country");
                roots.push(root);
            }
            let (g, i) = b.build();
            (g, i, roots)
        };
        let (gd, i1, us) = build(None);
        let (g, interner, vs) = build(Some(i1));
        (gd, g, interner, us, vs)
    }

    fn params() -> Params {
        Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
    }

    #[test]
    fn parallel_equals_sequential() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = apair(&mut m, &us, None);
        for n in [1, 2, 4, 7] {
            let (parallel, _) = pallmatch(
                &gd,
                &g,
                &interner,
                &p,
                &us,
                &ParallelConfig {
                    workers: n,
                    use_blocking: false,
                    ..Default::default()
                },
            );
            assert_eq!(parallel, sequential, "workers = {n}");
        }
    }

    #[test]
    fn finds_true_matches() {
        let (gd, g, interner, us, vs) = dataset(8);
        let p = params();
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        for (i, (&u, &v)) in us.iter().zip(&vs).enumerate() {
            assert!(result.contains(&(u, v)), "entity {i} missing");
        }
        assert!(stats.supersteps >= 1);
    }

    #[test]
    fn blocking_equivalence_parallel() {
        let (gd, g, interner, us, _) = dataset(10);
        let p = params();
        let (with, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: true,
                ..Default::default()
            },
        );
        let (without, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(with, without);
    }

    #[test]
    fn pvpair_matches_sequential_vpair() {
        let (gd, g, interner, us, _) = dataset(9);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = her_core::vpair::vpair(&mut m, us[3], None);
        let (parallel, _) = pvpair(
            &gd,
            &g,
            &interner,
            &p,
            us[3],
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn greedy_partition_reduces_message_traffic() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let run = |strategy| {
            pallmatch(&gd, &g, &interner, &p, &us, &ParallelConfig {
                workers: 4,
                partition: strategy,
                use_blocking: false,
                simulate_cluster: true,
            })
        };
        let (r_rr, s_rr) = run(PartitionStrategy::RoundRobin);
        let (r_gr, s_gr) = run(PartitionStrategy::Greedy);
        assert_eq!(r_rr, r_gr, "results must not depend on the partition");
        assert!(
            s_gr.requests <= s_rr.requests,
            "greedy {} > round-robin {} requests",
            s_gr.requests,
            s_rr.requests
        );
    }

    /// Cross-fragment structure: entity attributes deliberately placed on a
    /// different worker than the entity root, forcing assumptions/requests.
    #[test]
    fn cross_fragment_assumptions_resolve() {
        let (gd, g, interner, us, vs) = dataset(6);
        let p = params();
        // Round-robin over consecutive ids splits each star across workers.
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert!(result.contains(&(us[0], vs[0])));
        // With stars split across workers there must be message traffic…
        // unless every attribute happens to be co-located; with 4 workers
        // and 4-vertex stars, cross edges are guaranteed.
        assert!(stats.requests > 0, "expected cross-fragment requests");
    }
}
