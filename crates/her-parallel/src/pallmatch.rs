//! `PAllMatch`: parallel `AllParaMatch` by fixpoint computation (§VI-B).
//!
//! The protocol, following equations (3)/(4) of the paper:
//!
//! 1. **PPSim** (superstep 1): every worker runs `AllParaMatch` over its
//!    fragment's candidate pairs. Pairs whose `G`-side vertex is a *border
//!    node* are optimistically assumed valid; each such assumption is sent
//!    to the border vertex's owner as a verification request.
//! 2. **Messages**: owners verify requested pairs authoritatively (on their
//!    full local out-edges) and reply with the *invalid* ones — the paper's
//!    `v.status` changes. Valid pairs need no reply: they were already
//!    assumed.
//! 3. **IncPSim**: a worker receiving an invalidation flips the pair to
//!    false and re-checks every recorded dependent (the cleanup machinery
//!    of `ParaMatch`), possibly generating new assumptions/requests.
//! 4. **Termination**: the message fixpoint. `Π` is the union of local
//!    verdicts on candidate root pairs.
//!
//! Invalidation is monotone (true → false only, at the assumption level),
//! so the fixpoint exists and is reached in finitely many supersteps.

use crate::bsp;
use crate::fault::{FaultPlan, MessageFate};
use crate::partition::{partition_greedy, partition_round_robin, SharedPartition};
use her_core::index::InvertedIndex;
use her_core::paramatch::{Matcher, MatcherOptions, PairKey};
use her_core::params::Params;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, VertexId};
use std::time::Duration;

/// How `G` is assigned to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Vertex id modulo `n`: balanced, maximal cut (worst-case traffic).
    #[default]
    RoundRobin,
    /// Greedy balanced edge-cut: keeps entity neighbourhoods together,
    /// minimising border nodes and message volume (the paper's edge-cut).
    Greedy,
}

/// Configuration of a parallel run.
#[derive(Clone, Debug)]
pub struct ParallelConfig {
    /// Number of workers `n`.
    pub workers: usize,
    /// Partitioning strategy for `G`.
    pub partition: PartitionStrategy,
    /// Build a blocking index per worker for candidate generation.
    pub use_blocking: bool,
    /// Execute workers sequentially with exact per-worker timing, so the
    /// critical path faithfully simulates an `n`-machine cluster even on an
    /// oversubscribed host. `false` runs workers on OS threads.
    pub simulate_cluster: bool,
    /// Injected faults (inert by default) — see [`crate::fault`].
    pub fault: FaultPlan,
    /// Liveness watchdog for the asynchronous engine: if the in-flight
    /// counter is non-zero but no worker makes progress for this long, the
    /// run aborts with partial results instead of hanging.
    pub watchdog: Duration,
    /// Observability handle: when set, every worker's matcher reports
    /// into the shared registry (the `paramatch.*` namespace aggregates
    /// across workers — the counters are lock-free atomics), the run
    /// records `bsp.*`/`parallel.*`/`fault.*` metrics, and
    /// death/recovery events land in the trace log.
    pub obs: Option<her_obs::Obs>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            partition: PartitionStrategy::default(),
            use_blocking: true,
            simulate_cluster: true,
            fault: FaultPlan::default(),
            watchdog: Duration::from_secs(10),
            obs: None,
        }
    }
}

/// Counters describing a parallel run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParallelStats {
    /// Supersteps executed until the fixpoint.
    pub supersteps: usize,
    /// Workers lost to panics and recovered from during the run.
    pub deaths: usize,
    /// Verification requests exchanged.
    pub requests: u64,
    /// Invalidations exchanged.
    pub invalidations: u64,
    /// Seconds spent precomputing global `h_r` selections.
    pub selection_secs: f64,
    /// Seconds spent generating candidate root pairs.
    pub candidates_secs: f64,
    /// Seconds spent inside the BSP supersteps (host wall-clock).
    pub bsp_secs: f64,
    /// Simulated `n`-machine wall-clock: perfectly-parallel preprocessing
    /// plus the BSP critical path (per-superstep slowest worker). On a
    /// multi-core host the real wall-clock approaches this; on a
    /// single-core host it is the honest estimate of cluster runtime.
    pub simulated_secs: f64,
}

#[derive(Clone, Debug)]
enum Msg {
    /// "I assumed (u, v); please verify" — carries the requester id.
    Request { pair: PairKey, from: usize },
    /// "(u, v) is invalid."
    Invalid { pair: PairKey },
}

/// Send attempts per message before the transport gives up and escalates
/// to a worker panic (which the supervisor then recovers from).
const MAX_SEND_ATTEMPTS: usize = 8;

struct PWorker<'a> {
    id: usize,
    matcher: Matcher<'a>,
    part: SharedPartition,
    fault: FaultPlan,
    /// Candidate root pairs owned by this worker (grows on adoption).
    roots: Vec<PairKey>,
    /// Pairs adopted from a dead peer, evaluated at the next superstep.
    pending: Vec<PairKey>,
    /// Re-verify all roots and served pairs next superstep: set after an
    /// adoption purged cached verdicts that leaned on assumptions about
    /// the newly-owned vertices.
    reverify: bool,
    superstep_no: usize,
    /// Requests already sent (dedup).
    requested: FxHashSet<PairKey>,
    /// Pairs verified on behalf of others: pair → requesters.
    served: FxHashMap<PairKey, Vec<usize>>,
    /// `(pair, requester)` invalidations already sent. Keyed per requester
    /// so a later requester of an already-notified pair still gets told.
    notified: FxHashSet<(PairKey, usize)>,
    started: bool,
    /// Messages held back by an injected delay fault, released (without
    /// re-faulting) at the start of the next superstep.
    delayed: Vec<(usize, Msg)>,
    requests_sent: u64,
    invalidations_sent: u64,
}

impl<'a> PWorker<'a> {
    /// Evaluates one pair, first giving the fault plan a chance to model a
    /// data-dependent crash.
    fn eval(&mut self, u: VertexId, v: VertexId) {
        self.fault.maybe_poison((u, v));
        let _ = self.matcher.is_match(u, v);
    }

    /// Bumps a `fault.*` counter (injected-fault paths only, never hot).
    fn fault_count(&self, name: &str) {
        if let Some(obs) = self.matcher.obs() {
            obs.registry.counter(name).inc();
        }
    }

    /// Sends `msg` through the fault plan: drops are retried (bounded —
    /// the BSP analogue of retry-with-backoff, there is no real channel to
    /// back off from), duplicates delivered twice, delays deferred one
    /// superstep. Exhausting the retries panics, escalating into the
    /// supervisor's recovery path.
    fn emit(&mut self, out: &mut Vec<(usize, Msg)>, dest: usize, msg: Msg) {
        if !self.fault.is_armed() {
            out.push((dest, msg));
            return;
        }
        for _ in 0..MAX_SEND_ATTEMPTS {
            match self.fault.fate(self.id) {
                MessageFate::Deliver => {
                    out.push((dest, msg));
                    return;
                }
                MessageFate::Duplicate => {
                    self.fault_count("fault.duplicated");
                    out.push((dest, msg.clone()));
                    out.push((dest, msg));
                    return;
                }
                MessageFate::Delay => {
                    self.fault_count("fault.delayed");
                    self.delayed.push((dest, msg));
                    return;
                }
                MessageFate::BlackHole => {
                    self.fault_count("fault.blackholed");
                    return;
                }
                MessageFate::Drop => self.fault_count("fault.dropped"),
            }
        }
        panic!("send to worker {dest} failed after {MAX_SEND_ATTEMPTS} attempts");
    }

    /// Drains fresh border assumptions into request messages.
    fn flush_assumptions(&mut self, out: &mut Vec<(usize, Msg)>) {
        for pair in self.matcher.take_new_assumptions() {
            if self.requested.insert(pair) {
                let owner = self.part.owner(pair.1);
                if owner == self.id {
                    // Shouldn't happen (owned vertices aren't border), but
                    // guard against degenerate partitions.
                    continue;
                }
                self.requests_sent += 1;
                self.emit(
                    out,
                    owner,
                    Msg::Request {
                        pair,
                        from: self.id,
                    },
                );
            }
        }
    }

    /// Notifies requesters about served pairs that are (now) invalid.
    fn flush_invalidations(&mut self, out: &mut Vec<(usize, Msg)>) {
        let mut newly: Vec<(PairKey, usize)> = Vec::new();
        for (pair, requesters) in &self.served {
            if self.matcher.cached(pair.0, pair.1) == Some(false) {
                for &r in requesters {
                    if !self.notified.contains(&(*pair, r)) {
                        newly.push((*pair, r));
                    }
                }
            }
        }
        for (pair, r) in newly {
            if self.notified.insert((pair, r)) {
                self.invalidations_sent += 1;
                self.emit(out, r, Msg::Invalid { pair });
            }
        }
    }
}

impl<'a> bsp::Worker for PWorker<'a> {
    type Msg = Msg;

    fn superstep(&mut self, inbox: Vec<Msg>) -> Vec<(usize, Msg)> {
        self.superstep_no += 1;
        self.fault.maybe_kill(self.id, self.superstep_no);
        let mut out = Vec::new();
        // Release messages an injected fault delayed last superstep. They
        // count as output, so the run cannot reach a false fixpoint while
        // delayed messages are still buffered.
        out.append(&mut self.delayed);
        // IncPSim: apply invalidations first, then serve verifications.
        let mut requests = Vec::new();
        for msg in inbox {
            match msg {
                Msg::Invalid { pair } => self.matcher.apply_invalidation(pair.0, pair.1),
                Msg::Request { pair, from } => requests.push((pair, from)),
            }
        }
        // PPSim: the first superstep evaluates all local root candidates.
        if !self.started {
            self.started = true;
            let roots = self.roots.clone();
            for (u, v) in roots {
                self.eval(u, v);
            }
        }
        // Post-adoption: recompute everything the purge may have touched —
        // our own roots and every pair served for others (their verdicts
        // may have leaned on assumptions about the adopted vertices).
        if self.reverify {
            self.reverify = false;
            let todo: Vec<PairKey> = self
                .roots
                .iter()
                .chain(self.served.keys())
                .copied()
                .collect();
            for (u, v) in todo {
                self.eval(u, v);
            }
        }
        // Roots adopted from a dead peer.
        for (u, v) in std::mem::take(&mut self.pending) {
            self.eval(u, v);
        }
        // Serve verification requests on full local data.
        for (pair, from) in requests {
            self.eval(pair.0, pair.1);
            self.served.entry(pair).or_default().push(from);
        }
        self.flush_assumptions(&mut out);
        self.flush_invalidations(&mut out);
        out
    }
}

/// The [`bsp::Supervisor`] implementing §VI-B worker recovery for
/// `PAllMatch`: a dead worker's vertices are reassigned to survivors
/// ([`SharedPartition::reassign`]), its candidate roots are adopted and
/// re-evaluated by the new owners, and every pending verification request
/// that was addressed to it is replayed. Monotone invalidation makes the
/// replay safe — see the module docs of [`crate`].
struct Recovery {
    part: SharedPartition,
    obs: Option<her_obs::Obs>,
}

impl<'a> bsp::Supervisor<PWorker<'a>> for Recovery {
    fn on_death(
        &mut self,
        workers: &mut [PWorker<'a>],
        death: bsp::Death<Msg>,
        alive: &[usize],
    ) -> Vec<(usize, Msg)> {
        let dead = death.worker;
        if let Some(obs) = &self.obs {
            obs.registry.counter("bsp.worker_deaths").inc();
            obs.tracer.event(
                "bsp.worker_death",
                &format!("worker={} superstep={}", dead, death.superstep),
            );
        }
        let groups = self.part.reassign(dead, alive);
        let reassigned: FxHashSet<VertexId> = groups
            .iter()
            .flat_map(|(_, vs)| vs.iter().copied())
            .collect();
        // New owners adopt their share: the vertices leave their border
        // sets and any verdict leaning on assumptions about them is purged
        // and re-verified authoritatively next superstep.
        for (owner, vs) in &groups {
            let vset: FxHashSet<VertexId> = vs.iter().copied().collect();
            let w = &mut workers[*owner];
            w.matcher.adopt_border(&vset);
            w.requested.retain(|p| !vset.contains(&p.1));
            w.reverify = true;
        }
        // The dead worker's candidate roots (and any adoption work it had
        // not finished) move to the new owners.
        let orphans: Vec<PairKey> = std::mem::take(&mut workers[dead].roots)
            .into_iter()
            .chain(std::mem::take(&mut workers[dead].pending))
            .collect();
        for (u, v) in orphans {
            let owner = self.part.owner(v);
            let w = &mut workers[owner];
            if !w.roots.contains(&(u, v)) {
                w.roots.push((u, v));
                w.pending.push((u, v));
            }
        }
        // Replay: every survivor re-sends its pending verification
        // requests that the dead worker was responsible for. Verification
        // is deterministic and invalidation idempotent, so replays are
        // harmless even if the dead worker had already served some.
        let mut injected = Vec::new();
        for &s in alive {
            let replay: Vec<PairKey> = workers[s]
                .requested
                .iter()
                .filter(|p| reassigned.contains(&p.1))
                .copied()
                .collect();
            for pair in replay {
                let owner = self.part.owner(pair.1);
                if owner != s {
                    workers[s].requests_sent += 1;
                    injected.push((owner, Msg::Request { pair, from: s }));
                }
            }
        }
        // Replay the inbox the dead worker consumed when it panicked:
        // requests go to the vertices' new owners; invalidations were
        // addressed to the dead worker's (discarded) state and are moot.
        for msg in death.lost_inbox {
            if let Msg::Request { pair, from } = msg {
                if alive.contains(&from) {
                    injected.push((self.part.owner(pair.1), Msg::Request { pair, from }));
                }
            }
        }
        if let Some(obs) = &self.obs {
            obs.registry.counter("bsp.recoveries").inc();
            obs.tracer.event(
                "bsp.recovery",
                &format!(
                    "worker={} adopters={} replayed={}",
                    dead,
                    groups.len(),
                    injected.len()
                ),
            );
        }
        injected
    }

    fn reroute(&mut self, _workers: &mut [PWorker<'a>], msg: Msg) -> Option<(usize, Msg)> {
        match msg {
            // A request races the death notice: forward to the new owner.
            Msg::Request { pair, from } => Some((self.part.owner(pair.1), Msg::Request { pair, from })),
            // The assumption this invalidation corrects died with its
            // holder; adopters re-verify from scratch.
            Msg::Invalid { .. } => None,
        }
    }
}

/// Shared top-k selection table: vertex → `h_r` output.
pub(crate) type SelectionMap =
    FxHashMap<VertexId, std::sync::Arc<Vec<(VertexId, her_graph::Path)>>>;

/// Precomputes `h_r` top-k selections for every non-leaf vertex, chunked
/// across `n` threads.
pub(crate) fn precompute_selections(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    let vertices: Vec<VertexId> = g.vertices().filter(|&v| !g.is_leaf(v)).collect();
    let chunk = vertices.len().div_ceil(n.max(1)).max(1);
    let parts: Vec<SelectionMap> = std::thread::scope(|s| {
            vertices
                .chunks(chunk)
                .map(|vs| {
                    s.spawn(move || {
                        vs.iter()
                            .map(|&v| {
                                (
                                    v,
                                    std::sync::Arc::new(
                                        params.ranker.select(g, v, params.thresholds.k),
                                    ),
                                )
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("selection thread panicked"))
                .collect()
        });
    let mut out = FxHashMap::default();
    for p in parts {
        out.extend(p);
    }
    out
}

/// Crate-internal re-export for the asynchronous engine.
pub(crate) fn precompute_selections_pub(g: &Graph, params: &Params, n: usize) -> SelectionMap {
    precompute_selections(g, params, n)
}

/// Parallel `AllParaMatch`: all matches `(u_t, v)` for the given `G_D`
/// tuple vertices across `G`, computed with `cfg.workers` BSP workers.
/// Returns the sorted match set and run statistics.
pub fn pallmatch(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    tuple_vertices: &[VertexId],
    cfg: &ParallelConfig,
) -> (Vec<PairKey>, ParallelStats) {
    let n = cfg.workers.max(1);
    let fixed = match cfg.partition {
        PartitionStrategy::RoundRobin => partition_round_robin(g, n),
        PartitionStrategy::Greedy => partition_greedy(g, n),
    };
    let borders = fixed.all_borders(g);
    let part = SharedPartition::new(fixed.clone());

    // Global h_r preprocessing (§IV "Complexity"): top-k selections for
    // every vertex, computed once in parallel and shared read-only by all
    // workers. This keeps descendant rankings identical across fragment
    // boundaries, which Theorem 3's equivalence with the sequential
    // algorithm implicitly assumes.
    let t0 = std::time::Instant::now();
    let span = cfg.obs.as_ref().map(|o| o.tracer.span("parallel.selection"));
    let sel_g = precompute_selections(g, params, n);
    let sel_d = precompute_selections(gd, params, n);
    drop(span);
    let selection_secs = t0.elapsed().as_secs_f64();

    // Candidate generation per worker: (u_t, v) with owned v and h_v ≥ σ.
    // The blocking index is built over the full G labels (it only looks at
    // labels, which fragments share).
    let t0 = std::time::Instant::now();
    let span = cfg.obs.as_ref().map(|o| o.tracer.span("parallel.candidates"));
    let index = cfg.use_blocking.then(|| InvertedIndex::build(g, interner));
    let sigma = params.thresholds.sigma;
    let mut roots_per_worker: Vec<Vec<PairKey>> = vec![Vec::new(); n];
    {
        // One throwaway matcher for h_v evaluation over the full graph.
        let mut probe = Matcher::new(gd, g, interner, params);
        for &u in tuple_vertices {
            let pool: Vec<VertexId> = match &index {
                Some(idx) => {
                    idx.candidates(&her_core::index::blocking_query(gd, interner, u))
                }
                None => g.vertices().collect(),
            };
            for v in pool {
                if probe.hv_pair(u, v) >= sigma {
                    roots_per_worker[fixed.owner(v)].push((u, v));
                }
            }
        }
    }
    // Degree-ordered verification inside each worker (Fig. 8 line 4).
    for roots in roots_per_worker.iter_mut() {
        roots.sort_by_key(|&(u, v)| (gd.degree(u) + g.degree(v), u, v));
    }
    drop(span);
    let candidates_secs = t0.elapsed().as_secs_f64();

    let mut workers: Vec<PWorker<'_>> = (0..n)
        .map(|i| PWorker {
            id: i,
            matcher: Matcher::with_options(
                gd,
                g,
                interner,
                params,
                MatcherOptions {
                    obs: cfg.obs.clone(),
                    ..Default::default()
                },
            )
            .with_border(borders[i].clone())
            .with_selections(sel_d.clone(), sel_g.clone()),
            part: part.clone(),
            fault: cfg.fault.clone(),
            roots: std::mem::take(&mut roots_per_worker[i]),
            pending: Vec::new(),
            reverify: false,
            superstep_no: 0,
            requested: FxHashSet::default(),
            served: FxHashMap::default(),
            notified: FxHashSet::default(),
            started: false,
            delayed: Vec::new(),
            requests_sent: 0,
            invalidations_sent: 0,
        })
        .collect();

    let t0 = std::time::Instant::now();
    let span = cfg.obs.as_ref().map(|o| o.tracer.span("parallel.bsp"));
    let mut recovery = Recovery {
        part,
        obs: cfg.obs.clone(),
    };
    let supervised = bsp::run_supervised(&mut workers, &mut recovery, cfg.simulate_cluster);
    let deaths = supervised.deaths;
    let run = supervised.run;
    drop(span);
    let bsp_secs = t0.elapsed().as_secs_f64();

    let mut stats = ParallelStats {
        supersteps: run.supersteps,
        deaths,
        selection_secs,
        candidates_secs,
        bsp_secs,
        simulated_secs: (selection_secs + candidates_secs) / n as f64
            + run.critical_path_secs,
        ..Default::default()
    };
    let mut result: Vec<PairKey> = Vec::new();
    for w in &workers {
        stats.requests += w.requests_sent;
        stats.invalidations += w.invalidations_sent;
        for &(u, v) in &w.roots {
            if w.matcher.cached(u, v) == Some(true) {
                result.push((u, v));
            }
        }
    }
    result.sort();
    result.dedup();
    if let Some(obs) = &cfg.obs {
        let r = &obs.registry;
        // Keep the recovery counters in the namespace even for clean runs,
        // so "zero deaths" is an observable fact rather than a missing key.
        r.counter("bsp.worker_deaths");
        r.counter("bsp.recoveries");
        r.counter("bsp.supersteps").add(run.supersteps as u64);
        let busy = r.histogram("bsp.superstep.busy_us");
        let skew = r.histogram("bsp.superstep.skew_us");
        let msgs = r.histogram("bsp.superstep.messages");
        for step in &run.per_superstep {
            busy.observe((step.busy_max_secs * 1e6) as u64);
            skew.observe((step.skew_secs() * 1e6) as u64);
            msgs.observe(step.messages as u64);
        }
        r.counter("parallel.requests").add(stats.requests);
        r.counter("parallel.invalidations").add(stats.invalidations);
        r.counter("parallel.runs").inc();
        r.gauge("parallel.workers").set(n as f64);
        r.gauge("parallel.simulated_secs").set(stats.simulated_secs);
    }
    (result, stats)
}

/// Parallel VPair: all matches of a single tuple vertex, same protocol.
pub fn pvpair(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    u_t: VertexId,
    cfg: &ParallelConfig,
) -> (Vec<VertexId>, ParallelStats) {
    let (pairs, stats) = pallmatch(gd, g, interner, params, &[u_t], cfg);
    (pairs.into_iter().map(|(_, v)| v).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_core::apair::apair;
    use her_core::params::Thresholds;
    use her_graph::GraphBuilder;

    /// Builds `m` entities in G_D and G with a deterministic attribute
    /// permutation; entity i of G_D truly matches entity i of G. Each
    /// entity has a *non-leaf* brand sub-entity (brand → country), so the
    /// recursion crosses fragment boundaries under round-robin partitions.
    fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
        let colors = ["white", "red", "blue", "green"];
        let brands = ["Acme", "Globex", "Initech"];
        let countries = ["Germany", "Vietnam", "Japan"];
        let build = |shared: Option<Interner>| {
            let mut b = match shared {
                Some(i) => GraphBuilder::with_interner(i),
                None => GraphBuilder::new(),
            };
            let mut roots = Vec::new();
            for i in 0..m {
                let root = b.add_vertex("item");
                let c = b.add_vertex(colors[i % colors.len()]);
                let name = b.add_vertex(&format!("entity {i}"));
                let brand = b.add_vertex(brands[i % brands.len()]);
                let country = b.add_vertex(countries[i % countries.len()]);
                b.add_edge(root, c, "color");
                b.add_edge(root, name, "name");
                b.add_edge(root, brand, "brand");
                b.add_edge(brand, country, "country");
                roots.push(root);
            }
            let (g, i) = b.build();
            (g, i, roots)
        };
        let (gd, i1, us) = build(None);
        let (g, interner, vs) = build(Some(i1));
        (gd, g, interner, us, vs)
    }

    fn params() -> Params {
        Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
    }

    #[test]
    fn parallel_equals_sequential() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = apair(&mut m, &us, None);
        for n in [1, 2, 4, 7] {
            let (parallel, _) = pallmatch(
                &gd,
                &g,
                &interner,
                &p,
                &us,
                &ParallelConfig {
                    workers: n,
                    use_blocking: false,
                    ..Default::default()
                },
            );
            assert_eq!(parallel, sequential, "workers = {n}");
        }
    }

    #[test]
    fn finds_true_matches() {
        let (gd, g, interner, us, vs) = dataset(8);
        let p = params();
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        for (i, (&u, &v)) in us.iter().zip(&vs).enumerate() {
            assert!(result.contains(&(u, v)), "entity {i} missing");
        }
        assert!(stats.supersteps >= 1);
    }

    #[test]
    fn blocking_equivalence_parallel() {
        let (gd, g, interner, us, _) = dataset(10);
        let p = params();
        let (with, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: true,
                ..Default::default()
            },
        );
        let (without, _) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(with, without);
    }

    #[test]
    fn pvpair_matches_sequential_vpair() {
        let (gd, g, interner, us, _) = dataset(9);
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let sequential = her_core::vpair::vpair(&mut m, us[3], None);
        let (parallel, _) = pvpair(
            &gd,
            &g,
            &interner,
            &p,
            us[3],
            &ParallelConfig {
                workers: 3,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn greedy_partition_reduces_message_traffic() {
        let (gd, g, interner, us, _) = dataset(12);
        let p = params();
        let run = |strategy| {
            pallmatch(&gd, &g, &interner, &p, &us, &ParallelConfig {
                workers: 4,
                partition: strategy,
                use_blocking: false,
                ..Default::default()
            })
        };
        let (r_rr, s_rr) = run(PartitionStrategy::RoundRobin);
        let (r_gr, s_gr) = run(PartitionStrategy::Greedy);
        assert_eq!(r_rr, r_gr, "results must not depend on the partition");
        assert!(
            s_gr.requests <= s_rr.requests,
            "greedy {} > round-robin {} requests",
            s_gr.requests,
            s_rr.requests
        );
    }

    /// Cross-fragment structure: entity attributes deliberately placed on a
    /// different worker than the entity root, forcing assumptions/requests.
    #[test]
    fn cross_fragment_assumptions_resolve() {
        let (gd, g, interner, us, vs) = dataset(6);
        let p = params();
        // Round-robin over consecutive ids splits each star across workers.
        let (result, stats) = pallmatch(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &ParallelConfig {
                workers: 4,
                use_blocking: false,
                ..Default::default()
            },
        );
        assert!(result.contains(&(us[0], vs[0])));
        // With stars split across workers there must be message traffic…
        // unless every attribute happens to be co-located; with 4 workers
        // and 4-vertex stars, cross edges are guaranteed.
        assert!(stats.requests > 0, "expected cross-fragment requests");
    }
}
