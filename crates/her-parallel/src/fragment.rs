//! Fragment materialisation (the paper's original formulation).
//!
//! A worker's view of `G` keeps every vertex (ids and labels are global so
//! candidate generation and `h_v` work unchanged) but only the edges whose
//! source it owns: border vertices therefore *look like leaves* locally,
//! which is exactly the "data of v' absent from local fragment" condition
//! that triggers the PPSim optimistic assumption (§VI-B).
//!
//! The production engine ([`crate::pallmatch()`]) no longer materialises
//! fragments — workers share the read-only graph and gate visibility with
//! border sets plus globally precomputed `h_r` selections (DESIGN.md §4b
//! explains why) — but this module keeps the distributed data model
//! explicit, tested, and available to alternative deployments.

use crate::partition::Partition;
use her_graph::{Graph, GraphBuilder, Interner};

/// Materialises worker `i`'s fragment of `g`: all vertices, only the edges
/// with an owned source. Labels are re-interned through `interner` (shared,
/// so ids are unchanged).
pub fn materialize(g: &Graph, interner: &Interner, part: &Partition, i: usize) -> Graph {
    let mut b = GraphBuilder::with_interner(interner.clone());
    for v in g.vertices() {
        b.add_vertex_interned(g.label(v));
    }
    for v in g.vertices() {
        if part.owner(v) != i {
            continue;
        }
        for (l, t) in g.out_edges(v) {
            b.add_edge_interned(v, t, l);
        }
    }
    b.build().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_ranges;
    use her_graph::{GraphBuilder, VertexId};

    fn setup() -> (Graph, Interner) {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..6).map(|i| b.add_vertex(&format!("n{i}"))).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], "next");
        }
        b.add_edge(vs[5], vs[0], "wrap");
        b.build()
    }

    #[test]
    fn fragment_preserves_vertices_and_labels() {
        let (g, i) = setup();
        let part = partition_ranges(&g, 2);
        let f0 = materialize(&g, &i, &part, 0);
        assert_eq!(f0.vertex_count(), g.vertex_count());
        for v in g.vertices() {
            assert_eq!(f0.label(v), g.label(v));
        }
    }

    #[test]
    fn fragment_keeps_only_owned_source_edges() {
        let (g, i) = setup();
        let part = partition_ranges(&g, 2); // 0-2 | 3-5
        let f0 = materialize(&g, &i, &part, 0);
        let f1 = materialize(&g, &i, &part, 1);
        // Worker 0 owns sources 0,1,2 → edges 0→1, 1→2, 2→3.
        assert_eq!(f0.edge_count(), 3);
        // Worker 1 owns 3,4,5 → edges 3→4, 4→5, 5→0.
        assert_eq!(f1.edge_count(), 3);
        // Border vertex 3 is a leaf in fragment 0 but not in fragment 1.
        assert!(f0.is_leaf(VertexId(3)));
        assert!(!f1.is_leaf(VertexId(3)));
    }

    #[test]
    fn fragments_cover_all_edges_exactly_once() {
        let (g, i) = setup();
        let part = partition_ranges(&g, 3);
        let total: usize = (0..3)
            .map(|w| materialize(&g, &i, &part, w).edge_count())
            .sum();
        assert_eq!(total, g.edge_count());
    }

    #[test]
    fn single_fragment_is_whole_graph() {
        let (g, i) = setup();
        let part = partition_ranges(&g, 1);
        let f = materialize(&g, &i, &part, 0);
        assert_eq!(f.edge_count(), g.edge_count());
        for v in g.vertices() {
            assert_eq!(f.children(v), g.children(v));
        }
    }
}
