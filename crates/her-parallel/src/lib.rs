//! GRAPE-style parallel engine for HER (§VI-B).
//!
//! Parallelises `AllParaMatch` under the Bulk Synchronous Parallel model:
//! the data graph `G` is edge-cut across `n` workers ([`partition`], with
//! round-robin and greedy balanced edge-cut strategies); each worker
//! verifies the candidate pairs whose `G`-side vertex it owns,
//! optimistically assuming matches for *border* vertices owned elsewhere
//! (PPSim); supersteps exchange verification requests and invalidations
//! until a fixpoint (IncPSim) — computed by [`pallmatch()`]. The final
//! match set is the union of local results. [`async_match`] provides the
//! barrier-free variant of §VI-B Remark 1.
//!
//! Implementation notes relative to the paper (DESIGN.md §4b):
//!
//! - `G_D` is replicated rather than fragmented — the canonical graph is
//!   the small "pattern side", and replication is the shared-memory
//!   analogue of the paper's co-location of candidate pairs;
//! - the `h_r` top-k selections are a global preprocessing pass shared
//!   read-only by all workers, so descendant rankings cannot diverge at
//!   fragment borders (this is what makes Theorem 3's equivalence with the
//!   sequential algorithm hold); the induced-subgraph materialisation in
//!   [`fragment`] documents the paper's original formulation;
//! - on hosts with fewer cores than workers, [`bsp::run_simulated`]
//!   executes workers sequentially and reports the BSP critical path as
//!   the simulated cluster wall-clock.

pub mod async_match;
pub mod bsp;
pub mod fragment;
pub mod pallmatch;
pub mod partition;

pub use async_match::pallmatch_async;
pub use pallmatch::{pallmatch, pvpair, ParallelConfig, ParallelStats};
pub use partition::{cut_edges, partition_greedy, partition_round_robin, Partition};
