//! GRAPE-style parallel engine for HER (§VI-B).
//!
//! Parallelises `AllParaMatch` under the Bulk Synchronous Parallel model:
//! the data graph `G` is edge-cut across `n` workers ([`partition`], with
//! round-robin and greedy balanced edge-cut strategies); each worker
//! verifies the candidate pairs whose `G`-side vertex it owns,
//! optimistically assuming matches for *border* vertices owned elsewhere
//! (PPSim); supersteps exchange verification requests and invalidations
//! until a fixpoint (IncPSim) — computed by [`pallmatch()`]. The final
//! match set is the union of local results. [`async_match`] provides the
//! barrier-free variant of §VI-B Remark 1.
//!
//! Implementation notes relative to the paper (DESIGN.md §4b):
//!
//! - `G_D` is replicated rather than fragmented — the canonical graph is
//!   the small "pattern side", and replication is the shared-memory
//!   analogue of the paper's co-location of candidate pairs;
//! - the `h_r` top-k selections are a global preprocessing pass shared
//!   read-only by all workers, so descendant rankings cannot diverge at
//!   fragment borders (this is what makes Theorem 3's equivalence with the
//!   sequential algorithm hold); the induced-subgraph materialisation in
//!   [`fragment`] documents the paper's original formulation;
//! - on hosts with fewer cores than workers, [`bsp::run_simulated`]
//!   executes workers sequentially and reports the BSP critical path as
//!   the simulated cluster wall-clock.
//!
//! # Failure model and worker recovery
//!
//! Both engines tolerate worker loss (a panic inside a superstep or the
//! async event loop, caught with `catch_unwind`). Recovery reassigns the
//! dead worker's vertices to survivors ([`SharedPartition::reassign`]),
//! the new owners *adopt* them (`Matcher::adopt_border`: the vertices
//! leave the border set and every cached verdict leaning on assumptions
//! about them is purged and re-verified authoritatively), the dead
//! worker's candidate roots are re-evaluated by the adopters, and every
//! pending verification request addressed to the dead worker is replayed.
//!
//! **Why replay is safe.** The protocol's only cross-worker state change
//! is assumption invalidation, and it is *monotone*: a pair flips
//! `true → false` at most once, at its owner, and never back (§VI-B
//! Remark 1). The fixpoint of equations (3)/(4) is therefore unique and
//! independent of message order, duplication, and of *which* worker
//! verifies a pair — verification is a deterministic function of the
//! (replicated) graphs. Re-verifying a pair the dead worker had already
//! served can only reproduce the same verdict; re-sending a request can
//! only trigger an idempotent re-verification; re-delivering an
//! invalidation is absorbed by the IncPSim cleanup, which is itself
//! idempotent. Hence any interleaving of deaths, adoptions and replays
//! converges to the same match set as the failure-free sequential run.
//!
//! Deterministic fault injection for testing this machinery lives in
//! [`fault`]; budgets and cancellation for graceful degradation live in
//! `her_core::paramatch` (`Budget`, `CancelToken`).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod async_match;
pub mod bsp;
pub mod fault;
pub mod fragment;
pub mod pallmatch;
pub mod partition;

pub use async_match::{pallmatch_async, AsyncStats};
pub use fault::{FaultPlan, MessageFate};
pub use pallmatch::{
    pallmatch, pallmatch_durable, pvpair, DurabilityConfig, DurableRun, ParallelConfig,
    ParallelStats,
};
pub use partition::{
    cut_edges, partition_greedy, partition_round_robin, Partition, SharedPartition,
};
