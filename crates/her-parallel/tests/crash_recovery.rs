//! Crash-recovery drills for the durable parallel engine.
//!
//! The contract under test: killing a run at *any* superstep boundary and
//! resuming from its checkpoint yields exactly the matches of an
//! uninterrupted run; a corrupt newest snapshot falls back to the
//! previous generation; incompatible checkpoints are rejected with a
//! version error, never applied.

use her_core::params::{Params, Thresholds};
use her_graph::{Graph, GraphBuilder, Interner, VertexId};
use her_parallel::{pallmatch, pallmatch_durable, DurabilityConfig, ParallelConfig};
use her_store::StoreError;
use std::fs;
use std::path::PathBuf;

/// `m` entities in G_D and G; entity i of G_D truly matches entity i of
/// G. Each entity has a non-leaf brand sub-entity so recursion crosses
/// fragment boundaries under round-robin partitions, forcing border
/// assumptions and therefore multi-superstep runs.
fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>) {
    let colors = ["white", "red", "blue", "green"];
    let brands = ["Acme", "Globex", "Initech"];
    let countries = ["Germany", "Vietnam", "Japan"];
    let build = |shared: Option<Interner>| {
        let mut b = match shared {
            Some(i) => GraphBuilder::with_interner(i),
            None => GraphBuilder::new(),
        };
        let mut roots = Vec::new();
        for i in 0..m {
            let root = b.add_vertex("item");
            let c = b.add_vertex(colors[i % colors.len()]);
            let name = b.add_vertex(&format!("entity {i}"));
            let brand = b.add_vertex(brands[i % brands.len()]);
            let country = b.add_vertex(countries[i % countries.len()]);
            b.add_edge(root, c, "color");
            b.add_edge(root, name, "name");
            b.add_edge(root, brand, "brand");
            b.add_edge(brand, country, "country");
            roots.push(root);
        }
        let (g, i) = b.build();
        (g, i, roots)
    };
    let (gd, i1, us) = build(None);
    let (g, interner, _) = build(Some(i1));
    (gd, g, interner, us)
}

fn params() -> Params {
    Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
}

fn config(workers: usize) -> ParallelConfig {
    ParallelConfig {
        workers,
        use_blocking: false,
        ..Default::default()
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "her-crash-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_at_every_superstep_boundary_then_resume_equals_clean_run() {
    let (gd, g, interner, us) = dataset(10);
    let p = params();
    let cfg = config(4);
    let (clean, clean_stats) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);
    assert!(
        clean_stats.supersteps >= 2,
        "fixture too small to exercise barriers ({} supersteps)",
        clean_stats.supersteps
    );

    for k in 1..clean_stats.supersteps {
        let dir = tempdir(&format!("kill-{k}"));
        // "Crash": stop the run at barrier k, after forcing a snapshot.
        let crashed = pallmatch_durable(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &cfg,
            &DurabilityConfig {
                stop_after_supersteps: Some(k),
                ..DurabilityConfig::new(&dir)
            },
        )
        .expect("durable run");
        assert!(!crashed.completed, "kill at {k} did not stop the run");
        assert!(crashed.stats.checkpoints >= 1, "no snapshot at barrier {k}");

        // Resume from the checkpoint and run to the fixpoint.
        let resumed = pallmatch_durable(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &cfg,
            &DurabilityConfig {
                resume: true,
                ..DurabilityConfig::new(&dir)
            },
        )
        .expect("resumed run");
        assert!(resumed.completed);
        assert!(resumed.resumed_from.is_some(), "resume at {k} started fresh");
        assert_eq!(
            resumed.matches, clean,
            "kill at superstep {k} + resume diverged from the clean run"
        );
        assert_eq!(
            resumed.stats.supersteps, clean_stats.supersteps,
            "kill at superstep {k} + resume took a different superstep count"
        );
        assert_eq!(resumed.stats.requests, clean_stats.requests);
        assert_eq!(resumed.stats.invalidations, clean_stats.invalidations);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
    let (gd, g, interner, us) = dataset(10);
    let p = params();
    let cfg = config(4);
    let (clean, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);

    let dir = tempdir("fallback");
    // Two crashed runs in the same directory: the deterministic protocol
    // makes both barrier-1 snapshots equivalent, and the second write
    // produces generation 2 — giving the loader something to fall back from.
    for _ in 0..2 {
        let crashed = pallmatch_durable(
            &gd,
            &g,
            &interner,
            &p,
            &us,
            &cfg,
            &DurabilityConfig {
                stop_after_supersteps: Some(1),
                ..DurabilityConfig::new(&dir)
            },
        )
        .expect("durable run");
        assert_eq!(crashed.stats.checkpoints, 1);
    }

    // Flip a payload byte in the newest snapshot: its CRC no longer
    // matches, so the loader must fall back to the older generation.
    let mut snaps: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "hsnap"))
        .collect();
    snaps.sort();
    let newest = snaps.last().expect("snapshot present").clone();
    let mut bytes = fs::read(&newest).expect("read snapshot");
    let at = bytes.len() - 3;
    bytes[at] ^= 0xFF;
    fs::write(&newest, &bytes).expect("corrupt snapshot");

    let resumed = pallmatch_durable(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &cfg,
        &DurabilityConfig {
            resume: true,
            ..DurabilityConfig::new(&dir)
        },
    )
    .expect("resume past a corrupt newest snapshot");
    assert!(resumed.completed);
    let from = resumed.resumed_from.expect("fell back, not fresh");
    assert!(
        from < snaps.len() as u64,
        "resumed from generation {from}, expected an older one"
    );
    assert_eq!(resumed.matches, clean);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_mismatched_worker_count_is_a_version_error() {
    let (gd, g, interner, us) = dataset(6);
    let p = params();
    let dir = tempdir("workers");
    pallmatch_durable(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &config(4),
        &DurabilityConfig {
            stop_after_supersteps: Some(1),
            ..DurabilityConfig::new(&dir)
        },
    )
    .expect("durable run");

    let err = pallmatch_durable(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &config(3),
        &DurabilityConfig {
            resume: true,
            ..DurabilityConfig::new(&dir)
        },
    )
    .expect_err("a 4-worker checkpoint must not drive a 3-worker run");
    assert!(
        matches!(err, StoreError::Version { .. }),
        "expected a version error, got: {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_no_checkpoint_starts_fresh() {
    let (gd, g, interner, us) = dataset(6);
    let p = params();
    let cfg = config(3);
    let (clean, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg);
    let dir = tempdir("fresh");
    let run = pallmatch_durable(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &cfg,
        &DurabilityConfig {
            resume: true,
            ..DurabilityConfig::new(&dir)
        },
    )
    .expect("resume over an empty directory starts fresh");
    assert!(run.completed);
    assert_eq!(run.resumed_from, None);
    assert_eq!(run.matches, clean);
    let _ = fs::remove_dir_all(&dir);
}
