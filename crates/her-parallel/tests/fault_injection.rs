//! Fault-injection integration tests (§VI-B worker recovery).
//!
//! Each test runs the parallel engines under a seeded, deterministic
//! [`FaultPlan`] — scripted worker panics, poisoned pairs, and seeded
//! message drop/duplicate/delay streams — and asserts the match set still
//! equals the failure-free sequential `AllParaMatch` result. The safety
//! argument is monotone invalidation (see the her-parallel crate docs);
//! these tests are the executable version of it.

use her_core::apair::apair;
use her_core::paramatch::{Matcher, PairKey};
use her_core::params::{Params, Thresholds};
use her_graph::{Graph, GraphBuilder, Interner, VertexId};
use her_parallel::fault::FaultPlan;
use her_parallel::{pallmatch, pallmatch_async, ParallelConfig};
use std::time::Duration;

/// Entities with a non-leaf brand sub-entity (brand → country) so the
/// recursion crosses fragment boundaries under round-robin partitions —
/// the same fixture the engine unit tests use.
fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
    let colors = ["white", "red", "blue", "green"];
    let brands = ["Acme", "Globex", "Initech"];
    let countries = ["Germany", "Vietnam", "Japan"];
    let build = |shared: Option<Interner>| {
        let mut b = match shared {
            Some(i) => GraphBuilder::with_interner(i),
            None => GraphBuilder::new(),
        };
        let mut roots = Vec::new();
        for i in 0..m {
            let root = b.add_vertex("item");
            let c = b.add_vertex(colors[i % colors.len()]);
            let name = b.add_vertex(&format!("entity {i}"));
            let brand = b.add_vertex(brands[i % brands.len()]);
            let country = b.add_vertex(countries[i % countries.len()]);
            b.add_edge(root, c, "color");
            b.add_edge(root, name, "name");
            b.add_edge(root, brand, "brand");
            b.add_edge(brand, country, "country");
            roots.push(root);
        }
        let (g, i) = b.build();
        (g, i, roots)
    };
    let (gd, i1, us) = build(None);
    let (g, interner, vs) = build(Some(i1));
    (gd, g, interner, us, vs)
}

fn params() -> Params {
    Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
}

fn sequential(gd: &Graph, g: &Graph, interner: &Interner, p: &Params, us: &[VertexId]) -> Vec<PairKey> {
    let mut m = Matcher::new(gd, g, interner, p);
    apair(&mut m, us, None)
}

fn faulty_cfg(workers: usize, fault: FaultPlan) -> ParallelConfig {
    ParallelConfig {
        workers,
        use_blocking: false,
        fault,
        ..Default::default()
    }
}

#[test]
fn bsp_killed_worker_recovers_to_sequential_result() {
    let (gd, g, interner, us, _) = dataset(12);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    // Worker 1 dies before evaluating anything: its fragment and all its
    // candidate roots must be adopted and verified by the survivors.
    let plan = FaultPlan::seeded(11).kill_worker(1, 1);
    let (result, stats) = pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan));
    assert_eq!(stats.deaths, 1);
    assert_eq!(result, expected);
}

#[test]
fn bsp_mid_run_kill_with_drop_duplicate_delay() {
    let (gd, g, interner, us, _) = dataset(12);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    // Kill after the first exchange, on top of a lossy, duplicating,
    // reordering transport.
    let plan = FaultPlan::seeded(42)
        .kill_worker(2, 2)
        .drop_messages(0.2)
        .duplicate_messages(0.2)
        .delay_messages(0.2);
    let (result, stats) = pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan));
    assert!(stats.deaths >= 1, "the scripted kill must have fired");
    assert_eq!(result, expected);
}

#[test]
fn bsp_double_death_recovers() {
    let (gd, g, interner, us, _) = dataset(12);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    let plan = FaultPlan::seeded(3).kill_worker(0, 1).kill_worker(3, 2);
    let (result, stats) = pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan));
    assert!(stats.deaths >= 1);
    assert_eq!(result, expected);
}

#[test]
fn bsp_poisoned_pair_is_transient_and_recovered() {
    let (gd, g, interner, us, vs) = dataset(8);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    // The first evaluation of a true match panics its worker; the adopter
    // re-evaluates it (the poison has fired) and must still report it.
    let plan = FaultPlan::seeded(5).poison_pair((us[0], vs[0]));
    let (result, stats) = pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(3, plan));
    assert_eq!(stats.deaths, 1);
    assert_eq!(result, expected);
    assert!(result.contains(&(us[0], vs[0])));
}

#[test]
fn bsp_seeded_runs_are_reproducible() {
    let (gd, g, interner, us, _) = dataset(10);
    let p = params();
    let run = || {
        let plan = FaultPlan::seeded(9)
            .kill_worker(1, 2)
            .drop_messages(0.3)
            .duplicate_messages(0.1);
        pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan))
    };
    let (r1, s1) = run();
    let (r2, s2) = run();
    assert_eq!(r1, r2);
    assert_eq!(s1.deaths, s2.deaths);
}

#[test]
fn async_killed_worker_recovers_to_sequential_result() {
    let (gd, g, interner, us, _) = dataset(12);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    // Dies at its initial pass: the supervisor reassigns the fragment and
    // the survivors adopt and re-verify its candidate roots.
    let plan = FaultPlan::seeded(21).kill_worker(2, 1);
    let (result, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan));
    assert_eq!(stats.deaths, 1);
    assert!(!stats.aborted);
    assert_eq!(result, expected);
}

#[test]
fn async_kill_with_drop_and_duplicate_recovers() {
    let (gd, g, interner, us, _) = dataset(12);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    let plan = FaultPlan::seeded(31)
        .kill_worker(1, 1)
        .drop_messages(0.2)
        .duplicate_messages(0.2);
    let (result, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &faulty_cfg(4, plan));
    assert!(stats.deaths >= 1);
    assert!(!stats.aborted);
    assert_eq!(result, expected);
}

#[test]
fn async_poisoned_pair_is_transient_and_recovered() {
    let (gd, g, interner, us, vs) = dataset(8);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    let plan = FaultPlan::seeded(51).poison_pair((us[0], vs[0]));
    let (result, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &faulty_cfg(3, plan));
    assert_eq!(stats.deaths, 1);
    assert_eq!(result, expected);
}

#[test]
fn async_watchdog_terminates_black_hole_run() {
    let (gd, g, interner, us, _) = dataset(10);
    let p = params();
    // Half of all messages vanish after being accounted: without the
    // watchdog the in-flight counter would never drain and the run would
    // hang forever.
    let cfg = ParallelConfig {
        workers: 4,
        use_blocking: false,
        fault: FaultPlan::seeded(61).black_hole_messages(0.5),
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let (result, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "watchdog must terminate the run"
    );
    // The only guarantee under permanent message loss is *termination with
    // a report*: either every protocol message survived (complete run) or
    // the watchdog fired and flagged the result as partial.
    if !stats.aborted {
        assert_eq!(result, sequential(&gd, &g, &interner, &p, &us));
    }
}

/// The Budget half of the acceptance criteria, exercised end-to-end: a
/// budget-starved `try_vpair` terminates inside its deadline, reports
/// `Exhausted`, and surfaces sound partial results.
#[test]
fn budget_exhausted_vpair_terminates_with_partial_results() {
    use her_core::paramatch::{Budget, MatcherOptions, Outcome};
    use her_core::vpair::try_vpair;
    let (gd, g, interner, us, _) = dataset(16);
    let p = params();
    let deadline = Duration::from_secs(20);
    let opts = MatcherOptions {
        budget: Budget::unlimited()
            .with_max_calls(3)
            .with_deadline_in(deadline),
        ..Default::default()
    };
    let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
    let start = std::time::Instant::now();
    let run = try_vpair(&mut m, us[0], None);
    assert!(start.elapsed() < deadline, "must terminate within the deadline");
    assert!(run.exhausted.is_some(), "tight budget must trip: {run:?}");
    assert!(!run.unresolved.is_empty());
    // Partial results are sound, and cached verdicts still serve.
    let mut oracle = Matcher::new(&gd, &g, &interner, &p);
    for &v in &run.matches {
        assert!(oracle.is_match(us[0], v), "unsound partial match {v:?}");
    }
    for &v in &run.matches {
        assert_eq!(m.try_match(us[0], v), Outcome::Matched);
    }
}
/// With 3 workers the mod-3 partition co-owns every entity star (root and
/// brand vertex ids differ by 3), so the run exchanges zero messages and
/// reaches the fixpoint in one superstep. A death in such a run schedules
/// message-free recovery work — the supervised runner must grant it an
/// extra superstep rather than declare the fixpoint at the death barrier
/// (regression: adopted roots silently dropped).
#[test]
fn zero_traffic_partition_still_correct() {
    let (gd, g, interner, us, _) = dataset(8);
    let p = params();
    let expected = sequential(&gd, &g, &interner, &p, &us);
    let (result, stats) =
        pallmatch(&gd, &g, &interner, &p, &us, &faulty_cfg(3, FaultPlan::default()));
    assert_eq!(stats.requests, 0, "fixture must exercise the zero-traffic path");
    assert_eq!(result, expected);
}
