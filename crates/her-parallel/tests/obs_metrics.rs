//! Observability integration tests: a fault-injected parallel run must
//! leave a complete audit trail in the shared [`her_obs::Registry`] —
//! worker deaths, recoveries, per-superstep timings — without changing
//! the match set a clean run produces.

use her_core::params::{Params, Thresholds};
use her_graph::{Graph, GraphBuilder, Interner, VertexId};
use her_obs::{EventKind, Obs};
use her_parallel::fault::FaultPlan;
use her_parallel::{pallmatch, pallmatch_async, ParallelConfig};

/// Entities with a non-leaf brand sub-entity (brand → country) so the
/// recursion crosses fragment boundaries — the fault-injection fixture.
fn dataset(m: usize) -> (Graph, Graph, Interner, Vec<VertexId>) {
    let colors = ["white", "red", "blue", "green"];
    let brands = ["Acme", "Globex", "Initech"];
    let countries = ["Germany", "Vietnam", "Japan"];
    let build = |shared: Option<Interner>| {
        let mut b = match shared {
            Some(i) => GraphBuilder::with_interner(i),
            None => GraphBuilder::new(),
        };
        let mut roots = Vec::new();
        for i in 0..m {
            let root = b.add_vertex("item");
            let c = b.add_vertex(colors[i % colors.len()]);
            let name = b.add_vertex(&format!("entity {i}"));
            let brand = b.add_vertex(brands[i % brands.len()]);
            let country = b.add_vertex(countries[i % countries.len()]);
            b.add_edge(root, c, "color");
            b.add_edge(root, name, "name");
            b.add_edge(root, brand, "brand");
            b.add_edge(brand, country, "country");
            roots.push(root);
        }
        let (g, i) = b.build();
        (g, i, roots)
    };
    let (gd, i1, us) = build(None);
    let (g, interner, _) = build(Some(i1));
    (gd, g, interner, us)
}

fn params() -> Params {
    Params::untrained(64, 77).with_thresholds(Thresholds::new(0.9, 0.05, 5))
}

fn cfg(fault: FaultPlan, obs: &Obs) -> ParallelConfig {
    ParallelConfig {
        workers: 4,
        use_blocking: false,
        fault,
        obs: Some(obs.clone()),
        ..Default::default()
    }
}

#[test]
fn fault_injected_bsp_run_records_death_and_recovery() {
    let (gd, g, interner, us) = dataset(12);
    let p = params();

    let clean_obs = Obs::new();
    let (clean, _) = pallmatch(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &cfg(FaultPlan::default(), &clean_obs),
    );

    let obs = Obs::new();
    let plan = FaultPlan::seeded(11).kill_worker(1, 1);
    let (faulty, stats) = pallmatch(&gd, &g, &interner, &p, &us, &cfg(plan, &obs));

    // Telemetry never changes semantics: faulty and clean runs agree.
    assert_eq!(faulty, clean);
    assert_eq!(stats.deaths, 1);

    let snap = obs.registry.snapshot();
    if her_obs::ENABLED {
        assert!(
            snap.counter("bsp.worker_deaths") >= 1,
            "death not recorded: {snap:?}"
        );
        assert!(
            snap.counter("bsp.recoveries") >= 1,
            "recovery not recorded: {snap:?}"
        );
        // The run's superstep structure is in the histograms...
        let busy = snap
            .histogram("bsp.superstep.busy_us")
            .expect("per-superstep timings registered");
        assert_eq!(busy.count as usize, stats.supersteps);
        // ...and the worker matchers aggregated into the same registry.
        assert!(snap.counter("paramatch.calls") > 0);

        // The trace log carries the death and recovery as point events.
        let kinds = |name: &str| {
            obs.tracer
                .events()
                .iter()
                .filter(|e| e.name == name && e.kind == EventKind::Point)
                .count()
        };
        assert_eq!(kinds("bsp.worker_death"), 1);
        assert_eq!(kinds("bsp.recovery"), 1);
    } else {
        assert_eq!(snap.counter("bsp.worker_deaths"), 0);
    }

    // The clean run shares the namespace but records no deaths.
    let clean_snap = clean_obs.registry.snapshot();
    assert_eq!(clean_snap.counter("bsp.worker_deaths"), 0);
    assert_eq!(clean_snap.counter("bsp.recoveries"), 0);
}

#[test]
fn fault_injected_async_run_records_death_and_recovery() {
    let (gd, g, interner, us) = dataset(10);
    let p = params();

    let clean_obs = Obs::new();
    let (clean, _) = pallmatch_async(
        &gd,
        &g,
        &interner,
        &p,
        &us,
        &cfg(FaultPlan::default(), &clean_obs),
    );

    let obs = Obs::new();
    let plan = FaultPlan::seeded(23).kill_worker(2, 1);
    let (faulty, stats) = pallmatch_async(&gd, &g, &interner, &p, &us, &cfg(plan, &obs));

    assert_eq!(faulty, clean);
    assert_eq!(stats.deaths, 1);
    assert!(!stats.aborted);

    let snap = obs.registry.snapshot();
    if her_obs::ENABLED {
        assert!(snap.counter("async.worker_deaths") >= 1);
        assert!(snap.counter("async.recoveries") >= 1);
        assert_eq!(snap.counter("async.watchdog_aborts"), 0);
    }
}

#[test]
fn message_faults_are_counted() {
    let (gd, g, interner, us) = dataset(12);
    let p = params();
    let obs = Obs::new();
    // Heavy duplication forces the fault path on nearly every send; the
    // fixpoint still converges because invalidation is idempotent.
    let plan = FaultPlan::seeded(5).duplicate_messages(0.5);
    let (result, _) = pallmatch(&gd, &g, &interner, &p, &us, &cfg(plan, &obs));
    assert!(!result.is_empty());
    if her_obs::ENABLED {
        let snap = obs.registry.snapshot();
        assert!(
            snap.counter("fault.duplicated") > 0,
            "duplicated sends not counted: {snap:?}"
        );
    }
}
