//! Algorithm `AllParaMatch` (Fig. 8, §VI-A): all matches across `D` and `G`.
//!
//! Computes `Π = {(u_t, v) | u_t tuple vertex of G_D, v ∈ G, match}`.
//! Extends `VParaMatch`: candidate pairs are generated for *every* tuple
//! vertex, pooled, sorted by increasing degree, and verified with a single
//! shared `Matcher` so cached verdicts transfer across tuples.

use crate::index::InvertedIndex;
use crate::paramatch::Matcher;
use her_graph::VertexId;

/// `AllParaMatch` over the given tuple vertices of `G_D`.
///
/// `tuple_vertices` should be the images of `f_D` on tuples (attribute
/// vertices are not entities). Returns matched pairs sorted by
/// `(tuple vertex, graph vertex)`.
pub fn apair(
    matcher: &mut Matcher<'_>,
    tuple_vertices: &[VertexId],
    index: Option<&InvertedIndex>,
) -> Vec<(VertexId, VertexId)> {
    let ctx = matcher.ctx();
    let span = matcher.obs().map(|o| o.tracer.span_ctx("apair", ctx));
    let sigma = matcher.params().thresholds.sigma;
    // Candidate generation across all tuples (Fig. 8 lines 2-3).
    let mut cand: Vec<(VertexId, VertexId)> = Vec::new();
    for &u_t in tuple_vertices {
        match index {
            Some(idx) => {
                let query =
                    crate::index::blocking_query(matcher.gd(), matcher.interner(), u_t);
                for v in idx.candidates(&query) {
                    if matcher.hv_pair(u_t, v) >= sigma {
                        cand.push((u_t, v));
                    }
                }
            }
            None => {
                let vs: Vec<VertexId> = matcher.g().vertices().collect();
                for v in vs {
                    if matcher.hv_pair(u_t, v) >= sigma {
                        cand.push((u_t, v));
                    }
                }
            }
        }
    }
    if let Some(obs) = matcher.obs() {
        obs.registry.counter("apair.runs").inc();
        obs.registry
            .histogram("apair.candidates")
            .observe(cand.len() as u64);
    }
    // Fig. 8 line 4: increasing order of degree.
    cand.sort_by_key(|&(u, v)| (matcher.gd().degree(u) + matcher.g().degree(v), u, v));
    // Verification (as VParaMatch).
    let mut out = Vec::new();
    for (u, v) in cand {
        let matched = match matcher.cached(u, v) {
            Some(verdict) => verdict,
            None => matcher.is_match(u, v),
        };
        if matched {
            out.push((u, v));
        }
    }
    out.sort();
    drop(span);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, Thresholds};
    use her_graph::{Graph, GraphBuilder, Interner};

    /// Two tuples (white item, red item) vs a graph with both plus noise.
    fn fixture() -> (Graph, Graph, Interner, Vec<VertexId>, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let u1 = b.add_vertex("item");
        let u1c = b.add_vertex("white");
        b.add_edge(u1, u1c, "color");
        let u2 = b.add_vertex("item");
        let u2c = b.add_vertex("red");
        b.add_edge(u2, u2c, "color");
        let (gd, i) = b.build();

        let mut b2 = GraphBuilder::with_interner(i);
        let v1 = b2.add_vertex("item");
        let v1c = b2.add_vertex("white");
        b2.add_edge(v1, v1c, "hasColor");
        let v2 = b2.add_vertex("item");
        let v2c = b2.add_vertex("red");
        b2.add_edge(v2, v2c, "hasColor");
        let (g, interner) = b2.build();
        (gd, g, interner, vec![u1, u2], vec![v1, v2])
    }

    fn params() -> Params {
        // δ low enough that the single colour attribute carries the match;
        // untrained M_ρ still scores (color, hasColor) above ~0.
        Params::untrained(64, 9).with_thresholds(Thresholds::new(0.9, 0.01, 5))
    }

    #[test]
    fn pairs_matched_by_colour() {
        let (gd, g, i, us, vs) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let result = apair(&mut m, &us, None);
        // u1 (white) ↔ v1 (white); u2 (red) ↔ v2 (red); the cross pairs
        // fail because their colour values mismatch under σ=0.9.
        assert!(result.contains(&(us[0], vs[0])));
        assert!(result.contains(&(us[1], vs[1])));
        assert!(!result.contains(&(us[0], vs[1])));
        assert!(!result.contains(&(us[1], vs[0])));
    }

    #[test]
    fn restricting_tuple_vertices_restricts_output() {
        let (gd, g, i, us, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let only_first = apair(&mut m, &us[..1], None);
        assert!(only_first.iter().all(|&(u, _)| u == us[0]));
    }

    #[test]
    fn blocking_equivalence() {
        let (gd, g, i, us, _) = fixture();
        let p = params();
        let idx = InvertedIndex::build(&g, &i);
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        assert_eq!(apair(&mut m1, &us, None), apair(&mut m2, &us, Some(&idx)));
    }

    #[test]
    fn empty_tuple_set_gives_empty_result() {
        let (gd, g, i, _, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        assert!(apair(&mut m, &[], None).is_empty());
    }

    #[test]
    fn output_is_sorted() {
        let (gd, g, i, us, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let result = apair(&mut m, &us, None);
        let mut sorted = result.clone();
        sorted.sort();
        assert_eq!(result, sorted);
    }
}
