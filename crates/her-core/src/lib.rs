//! Parametric simulation and the HER system (the paper's primary
//! contribution, §III–§VI).
//!
//! Given the canonical graph `G_D` of a database `D` and a data graph `G`
//! over a shared label space, this crate decides entity matches by
//! **parametric simulation**: `(u₀, v₀)` match iff their labels are close
//! (`h_v ≥ σ`) and, recursively, some partial injective *lineage set* over
//! their top-k important descendants accumulates association score
//! `Σ h_ρ ≥ δ`. The modules:
//!
//! - [`params`]: the parameter bundle `(h_v, h_ρ, h_r, σ, δ, k)`;
//! - [`scores`]: memoised score evaluation over interned labels and paths;
//! - [`shared_scores`]: the thread-safe sharded score memo one process
//!   shares across all matchers (sequential facade, BSP/async workers);
//! - [`paramatch`]: algorithm `ParaMatch` (Fig. 4) — quadratic-time match
//!   checking with `cache`/`ecache`, sorted candidate lists, `MaxSco` early
//!   termination and the cleanup stage (module SPair);
//! - [`vpair`] / [`apair`]: `VParaMatch` and `AllParaMatch` (§VI-A);
//! - [`schema_match`]: schema matches `Γ(u_t, v_g)` (appendix D);
//! - [`index`]: inverted-index blocking for candidate generation;
//! - [`learn`]: random search for `(σ, δ, k)` and training-pair derivation;
//! - [`refine`]: the user-feedback loop with majority voting (§IV);
//! - [`metrics`]: precision / recall / F-measure;
//! - [`stream`]: incremental / pay-as-you-go linking (§VI-B remark 2),
//!   with a WAL-journaled [`stream::DurableStreamLinker`];
//! - [`pool`]: the warm-matcher checkout/checkin pool the serving path
//!   uses to reuse verdict caches across requests;
//! - [`checkpoint`]: serializable [`Matcher`] state for the durability
//!   layer (`her-store`);
//! - [`her`]: the [`her::Her`] facade exposing SPair, VPair and APair.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
/// Synchronization facade: ranked `Mutex`/`RwLock` wrappers with a runtime
/// lock-order and re-entrancy tracker (see the `her-sync` crate). All
/// workspace locks go through this module; `her-analysis` lints against raw
/// `std::sync` lock use outside it.
pub use her_sync as sync;

pub mod apair;
pub mod checkpoint;
pub mod her;
pub mod index;
pub mod learn;
pub mod maximal;
pub mod metrics;
pub mod paramatch;
pub mod params;
pub mod pool;
pub mod refine;
pub mod schema_match;
pub mod scores;
pub mod shared_scores;
pub mod stream;
pub mod vpair;

pub use checkpoint::MatcherCheckpoint;
pub use her::{Her, HerConfig};
pub use paramatch::{
    Budget, CancelToken, ExhaustReason, Matcher, MatcherOptions, Outcome,
};
pub use params::{Params, Thresholds};
pub use pool::{MatcherPool, PoolTicket};
pub use shared_scores::SharedScores;
pub use stream::{DurableStreamLinker, StreamCheckpoint, StreamLinker, StreamOp};
pub use vpair::VpairRun;
