//! Accuracy metrics: precision, recall, F-measure (§IV).
//!
//! - precision: ratio of true matches to matches returned;
//! - recall: ratio of true matches to annotated matches;
//! - F-measure: `2·(precision·recall)/(precision+recall)`.

/// A confusion-count summary with derived metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Accuracy {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl Accuracy {
    /// Precision; 0 when nothing was returned.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall; 0 when nothing was annotated positive.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F-measure (harmonic mean of precision and recall).
    pub fn f_measure(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Records one `(predicted, actual)` observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }
}

/// Builds an [`Accuracy`] from `(predicted, actual)` pairs.
pub fn confusion(pairs: impl IntoIterator<Item = (bool, bool)>) -> Accuracy {
    let mut acc = Accuracy::default();
    for (p, a) in pairs {
        acc.record(p, a);
    }
    acc
}

impl std::fmt::Display for Accuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P={:.3} R={:.3} F={:.3} (tp={} fp={} fn={} tn={})",
            self.precision(),
            self.recall(),
            self.f_measure(),
            self.tp,
            self.fp,
            self.fn_,
            self.tn
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let a = confusion([(true, true), (false, false), (true, true)]);
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        assert_eq!(a.f_measure(), 1.0);
    }

    #[test]
    fn all_wrong() {
        let a = confusion([(true, false), (false, true)]);
        assert_eq!(a.precision(), 0.0);
        assert_eq!(a.recall(), 0.0);
        assert_eq!(a.f_measure(), 0.0);
    }

    #[test]
    fn known_values() {
        // tp=3 fp=1 fn=2: P=0.75, R=0.6, F=2*.45/1.35=0.666…
        let a = Accuracy {
            tp: 3,
            fp: 1,
            fn_: 2,
            tn: 4,
        };
        assert!((a.precision() - 0.75).abs() < 1e-12);
        assert!((a.recall() - 0.6).abs() < 1e-12);
        assert!((a.f_measure() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.total(), 10);
    }

    #[test]
    fn empty_is_zero_not_nan() {
        let a = Accuracy::default();
        assert_eq!(a.precision(), 0.0);
        assert_eq!(a.recall(), 0.0);
        assert_eq!(a.f_measure(), 0.0);
    }

    #[test]
    fn display_renders() {
        let a = confusion([(true, true)]);
        assert!(a.to_string().contains("F=1.000"));
    }
}
