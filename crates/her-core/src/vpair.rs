//! Algorithm `VParaMatch` (Fig. 5, §VI-A): all vertex matches of one tuple.
//!
//! Given the vertex `u_t` of `G_D` denoting a tuple `t`, computes
//! `Π(u_t) = {(u_t, v) | v ∈ G, (u_t, v) matches}`. The algorithm:
//!
//! 1. generates candidates `v` with `h_v(u_t, v) ≥ σ` — through the
//!    inverted-index blocking when available, else by scanning `V`;
//! 2. sorts candidates by increasing vertex degree (cheap candidates are
//!    resolved first, seeding `cache` for the expensive ones);
//! 3. verifies each candidate, reusing cached verdicts before calling
//!    `ParaMatch`.

use crate::index::InvertedIndex;
use crate::paramatch::Matcher;
use her_graph::VertexId;

/// Generates the candidate set for `u_t`: vertices of `G` passing the
/// `h_v ≥ σ` filter, via `index` when provided.
pub fn candidates(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
) -> Vec<VertexId> {
    let sigma = matcher.params().thresholds.sigma;
    let pool: Vec<VertexId> = match index {
        Some(idx) => {
            let query =
                crate::index::blocking_query(matcher.gd(), matcher.interner(), u_t);
            idx.candidates(&query)
        }
        None => matcher.g().vertices().collect(),
    };
    pool.into_iter()
        .filter(|&v| matcher.hv_pair(u_t, v) >= sigma)
        .collect()
}

/// `VParaMatch`: all matches of `u_t` in `G`, in ascending vertex-id order.
pub fn vpair(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
) -> Vec<VertexId> {
    vpair_ordered(matcher, u_t, index, true)
}

/// As [`vpair`], with the degree ordering of Fig. 5 line 4 toggleable
/// (ablation: verifying cheap candidates first seeds the shared cache).
pub fn vpair_ordered(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
    degree_order: bool,
) -> Vec<VertexId> {
    let mut cand = candidates(matcher, u_t, index);
    if degree_order {
        // Fig. 5 line 4: verify in increasing order of degree.
        cand.sort_by_key(|&v| (matcher.g().degree(v), v));
    }
    let mut out = Vec::new();
    for v in cand {
        let matched = match matcher.cached(u_t, v) {
            Some(verdict) => verdict,
            None => matcher.is_match(u_t, v),
        };
        if matched {
            out.push(v);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, Thresholds};
    use her_graph::{Graph, GraphBuilder, Interner};

    /// G_D: one "item" tuple (white / phylon foam). G: three items — an
    /// exact twin, a colour-mismatched decoy, and an unrelated brand vertex.
    fn fixture() -> (Graph, Graph, Interner, VertexId, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let c = b.add_vertex("white");
        let m = b.add_vertex("phylon foam");
        b.add_edge(u, c, "color");
        b.add_edge(u, m, "material");
        let (gd, i) = b.build();

        let mut b2 = GraphBuilder::with_interner(i);
        let twin = b2.add_vertex("item");
        let tc = b2.add_vertex("white");
        let tm = b2.add_vertex("phylon foam");
        b2.add_edge(twin, tc, "color");
        b2.add_edge(twin, tm, "material");
        let decoy = b2.add_vertex("item");
        let dc = b2.add_vertex("red");
        let dm = b2.add_vertex("leather");
        b2.add_edge(decoy, dc, "color");
        b2.add_edge(decoy, dm, "material");
        let brand = b2.add_vertex("Addidas");
        let (g, interner) = b2.build();
        (gd, g, interner, u, vec![twin, decoy, brand])
    }

    fn params() -> Params {
        Params::untrained(64, 3).with_thresholds(Thresholds::new(0.9, 0.2, 5))
    }

    #[test]
    fn finds_only_the_twin() {
        let (gd, g, i, u, vs) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let result = vpair(&mut m, u, None);
        assert_eq!(result, vec![vs[0]]);
    }

    #[test]
    fn candidate_filter_excludes_label_mismatches() {
        let (gd, g, i, u, vs) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let c = candidates(&mut m, u, None);
        assert!(c.contains(&vs[0]));
        assert!(c.contains(&vs[1])); // label "item" passes σ; fails later
        assert!(!c.contains(&vs[2])); // "Addidas" ≠ "item"
    }

    #[test]
    fn blocking_produces_same_result() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let idx = InvertedIndex::build(&g, &i);
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        assert_eq!(vpair(&mut m1, u, None), vpair(&mut m2, u, Some(&idx)));
    }

    #[test]
    fn repeated_vpair_uses_cache() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let r1 = vpair(&mut m, u, None);
        let calls = m.stats().calls;
        let r2 = vpair(&mut m, u, None);
        assert_eq!(r1, r2);
        assert_eq!(m.stats().calls, calls, "second run must be fully cached");
    }

    #[test]
    fn degree_order_does_not_change_results() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        assert_eq!(
            vpair_ordered(&mut m1, u, None, true),
            vpair_ordered(&mut m2, u, None, false)
        );
    }

    #[test]
    fn no_candidates_no_matches() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        // The attribute vertex "white" has no same-labeled counterpart roots…
        // actually it does (tc). Use the material vertex of G_D against an
        // index query that misses.
        let u_mat = gd.children(u)[1];
        let result = vpair(&mut m, u_mat, None);
        // Leaves match on label alone: both graphs contain "phylon foam".
        assert_eq!(result.len(), 1);
    }
}
