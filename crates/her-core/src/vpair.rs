//! Algorithm `VParaMatch` (Fig. 5, §VI-A): all vertex matches of one tuple.
//!
//! Given the vertex `u_t` of `G_D` denoting a tuple `t`, computes
//! `Π(u_t) = {(u_t, v) | v ∈ G, (u_t, v) matches}`. The algorithm:
//!
//! 1. generates candidates `v` with `h_v(u_t, v) ≥ σ` — through the
//!    inverted-index blocking when available, else by scanning `V`;
//! 2. sorts candidates by increasing vertex degree (cheap candidates are
//!    resolved first, seeding `cache` for the expensive ones);
//! 3. verifies each candidate, reusing cached verdicts before calling
//!    `ParaMatch`.

use crate::index::InvertedIndex;
use crate::paramatch::{ExhaustReason, MatchStats, Matcher, Outcome};
use her_graph::VertexId;

/// Result of a budget-aware VPair run (see [`try_vpair`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VpairRun {
    /// Vertices confirmed matched, ascending. Sound even when the run was
    /// cut short: exhaustion never converts an undecided pair into a
    /// verdict.
    pub matches: Vec<VertexId>,
    /// Candidates left undecided because the budget ran out, ascending.
    pub unresolved: Vec<VertexId>,
    /// Why the run stopped early, if it did.
    pub exhausted: Option<ExhaustReason>,
    /// The matcher's counters at the end of the run. For a fresh
    /// matcher (the serving path builds one per request) this is the
    /// run's own budget spend — what the flight recorder files.
    pub stats: MatchStats,
}

impl VpairRun {
    /// True when every candidate was decided.
    pub fn is_complete(&self) -> bool {
        self.exhausted.is_none()
    }
}

/// Generates the candidate set for `u_t`: vertices of `G` passing the
/// `h_v ≥ σ` filter, via `index` when provided.
pub fn candidates(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
) -> Vec<VertexId> {
    let sigma = matcher.params().thresholds.sigma;
    let pool: Vec<VertexId> = match index {
        Some(idx) => {
            let query =
                crate::index::blocking_query(matcher.gd(), matcher.interner(), u_t);
            idx.candidates(&query)
        }
        None => matcher.g().vertices().collect(),
    };
    pool.into_iter()
        .filter(|&v| matcher.hv_pair(u_t, v) >= sigma)
        .collect()
}

/// `VParaMatch`: all matches of `u_t` in `G`, in ascending vertex-id order.
pub fn vpair(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
) -> Vec<VertexId> {
    vpair_ordered(matcher, u_t, index, true)
}

/// Budget-aware `VParaMatch`: like [`vpair`] but degrades gracefully when
/// the matcher's [`crate::paramatch::Budget`] or
/// [`crate::paramatch::CancelToken`] trips — verified matches found so far
/// are returned together with the still-undecided candidates instead of
/// being discarded.
pub fn try_vpair(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
) -> VpairRun {
    let ctx = matcher.ctx();
    let span = matcher.obs().map(|o| o.tracer.span_ctx("vpair", ctx));
    let mut cand = candidates(matcher, u_t, index);
    if let Some(obs) = matcher.obs() {
        obs.registry.counter("vpair.runs").inc();
        obs.registry
            .histogram("vpair.candidates")
            .observe(cand.len() as u64);
    }
    // Fig. 5 line 4: verify in increasing order of degree, so a budgeted
    // run decides the cheap candidates before the expensive ones.
    cand.sort_by_key(|&v| (matcher.g().degree(v), v));
    let mut matches = Vec::new();
    let mut unresolved = Vec::new();
    let mut exhausted = None;
    for &v in &cand {
        // After exhaustion `try_match` still serves pre-exhaustion cached
        // verdicts and costs O(1) for the rest, so keep scanning: every
        // candidate ends up accurately classified as decided or unresolved.
        match matcher.try_match(u_t, v) {
            Outcome::Matched => matches.push(v),
            Outcome::Unmatched => {}
            Outcome::Exhausted(reason) => {
                exhausted.get_or_insert(reason);
                unresolved.push(v);
            }
        }
    }
    matches.sort();
    unresolved.sort();
    drop(span);
    VpairRun {
        matches,
        unresolved,
        exhausted,
        stats: matcher.stats(),
    }
}

/// As [`vpair`], with the degree ordering of Fig. 5 line 4 toggleable
/// (ablation: verifying cheap candidates first seeds the shared cache).
pub fn vpair_ordered(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    index: Option<&InvertedIndex>,
    degree_order: bool,
) -> Vec<VertexId> {
    let mut cand = candidates(matcher, u_t, index);
    if degree_order {
        // Fig. 5 line 4: verify in increasing order of degree.
        cand.sort_by_key(|&v| (matcher.g().degree(v), v));
    }
    let mut out = Vec::new();
    for v in cand {
        let matched = match matcher.cached(u_t, v) {
            Some(verdict) => verdict,
            None => matcher.is_match(u_t, v),
        };
        if matched {
            out.push(v);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, Thresholds};
    use her_graph::{Graph, GraphBuilder, Interner};

    /// G_D: one "item" tuple (white / phylon foam). G: three items — an
    /// exact twin, a colour-mismatched decoy, and an unrelated brand vertex.
    fn fixture() -> (Graph, Graph, Interner, VertexId, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let c = b.add_vertex("white");
        let m = b.add_vertex("phylon foam");
        b.add_edge(u, c, "color");
        b.add_edge(u, m, "material");
        let (gd, i) = b.build();

        let mut b2 = GraphBuilder::with_interner(i);
        let twin = b2.add_vertex("item");
        let tc = b2.add_vertex("white");
        let tm = b2.add_vertex("phylon foam");
        b2.add_edge(twin, tc, "color");
        b2.add_edge(twin, tm, "material");
        let decoy = b2.add_vertex("item");
        let dc = b2.add_vertex("red");
        let dm = b2.add_vertex("leather");
        b2.add_edge(decoy, dc, "color");
        b2.add_edge(decoy, dm, "material");
        let brand = b2.add_vertex("Addidas");
        let (g, interner) = b2.build();
        (gd, g, interner, u, vec![twin, decoy, brand])
    }

    fn params() -> Params {
        Params::untrained(64, 3).with_thresholds(Thresholds::new(0.9, 0.2, 5))
    }

    #[test]
    fn finds_only_the_twin() {
        let (gd, g, i, u, vs) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let result = vpair(&mut m, u, None);
        assert_eq!(result, vec![vs[0]]);
    }

    #[test]
    fn candidate_filter_excludes_label_mismatches() {
        let (gd, g, i, u, vs) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let c = candidates(&mut m, u, None);
        assert!(c.contains(&vs[0]));
        assert!(c.contains(&vs[1])); // label "item" passes σ; fails later
        assert!(!c.contains(&vs[2])); // "Addidas" ≠ "item"
    }

    #[test]
    fn blocking_produces_same_result() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let idx = InvertedIndex::build(&g, &i);
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        assert_eq!(vpair(&mut m1, u, None), vpair(&mut m2, u, Some(&idx)));
    }

    #[test]
    fn repeated_vpair_uses_cache() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let r1 = vpair(&mut m, u, None);
        let calls = m.stats().calls;
        let r2 = vpair(&mut m, u, None);
        assert_eq!(r1, r2);
        assert_eq!(m.stats().calls, calls, "second run must be fully cached");
    }

    #[test]
    fn degree_order_does_not_change_results() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        assert_eq!(
            vpair_ordered(&mut m1, u, None, true),
            vpair_ordered(&mut m2, u, None, false)
        );
    }

    #[test]
    fn try_vpair_complete_run_equals_vpair() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m1 = Matcher::new(&gd, &g, &i, &p);
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        let run = try_vpair(&mut m1, u, None);
        assert!(run.is_complete());
        assert!(run.unresolved.is_empty());
        assert_eq!(run.matches, vpair(&mut m2, u, None));
    }

    #[test]
    fn try_vpair_exhausted_reports_partial_results() {
        use crate::paramatch::{Budget, ExhaustReason, MatcherOptions};
        use std::time::Duration;
        let (gd, g, i, u, vs) = fixture();
        let p = params();
        // Tight call budget: enough for the first (cheapest) candidates but
        // not the whole run.
        let opts = MatcherOptions {
            budget: Budget::unlimited()
                .with_max_calls(2)
                .with_deadline_in(Duration::from_secs(30)),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &i, &p, opts);
        let start = std::time::Instant::now();
        let run = try_vpair(&mut m, u, None);
        assert!(start.elapsed() < Duration::from_secs(30), "must not hang");
        assert_eq!(run.exhausted, Some(ExhaustReason::Calls));
        assert!(!run.unresolved.is_empty(), "{run:?}");
        // Partial results are sound: everything reported matched really is.
        let mut oracle = Matcher::new(&gd, &g, &i, &p);
        for &v in &run.matches {
            assert!(oracle.is_match(u, v));
        }
        // The candidates are partitioned, nothing silently dropped.
        let mut all: Vec<_> = run
            .matches
            .iter()
            .chain(&run.unresolved)
            .copied()
            .collect();
        all.sort();
        let mut m2 = Matcher::new(&gd, &g, &i, &p);
        let mut c = candidates(&mut m2, u, None);
        c.sort();
        for v in &all {
            assert!(c.contains(v));
        }
        let _ = vs;
    }

    /// A `G_D` vertex whose label resembles nothing in `G` yields no
    /// candidates — from the hv scan and from the inverted index alike —
    /// and therefore no matches. (The old version of this test queried a
    /// leaf whose label *did* occur in `G` and asserted one match.)
    #[test]
    fn no_candidates_no_matches() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("unobtainium");
        let c = b.add_vertex("vibranium");
        b.add_edge(u, c, "alloy");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let twin = b2.add_vertex("item");
        let tc = b2.add_vertex("white");
        b2.add_edge(twin, tc, "color");
        let (g, interner) = b2.build();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(candidates(&mut m, u, None).is_empty());
        let idx = InvertedIndex::build(&g, &interner);
        assert!(candidates(&mut m, u, Some(&idx)).is_empty());
        assert!(vpair(&mut m, u, None).is_empty());
        assert!(vpair(&mut m, u, Some(&idx)).is_empty());
    }

    /// Leaves match on label alone: querying the "phylon foam" material
    /// leaf of `G_D` finds the one same-labeled leaf of `G`.
    #[test]
    fn leaf_query_matches_same_labeled_leaf() {
        let (gd, g, i, u, _) = fixture();
        let p = params();
        let mut m = Matcher::new(&gd, &g, &i, &p);
        let u_mat = gd.children(u)[1];
        let result = vpair(&mut m, u_mat, None);
        assert_eq!(result.len(), 1);
        assert_eq!(g.label(result[0]), gd.label(u_mat));
    }

    /// Blocking-vs-scan equivalence on a skewed label distribution where
    /// every token of the blocking query is a stop token (>50% of `G`'s
    /// vertices carry each of them) — the regression fixture for the
    /// all-stop-token fallback in `InvertedIndex::candidates`. Before the
    /// fix, the blocked run returned no candidates at all here.
    #[test]
    fn blocking_equals_scan_when_all_query_tokens_are_stop_tokens() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("white");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        // Every vertex of G carries the full query vocabulary {white}:
        // each "item" root has a "white" child (roots index their
        // children's tokens), so the token sits on 100% of vertices and
        // is stopped.
        let mut whites = Vec::new();
        for _ in 0..6 {
            let root = b2.add_vertex("item");
            let col = b2.add_vertex("white");
            b2.add_edge(root, col, "color");
            whites.push(col);
        }
        let (g, interner) = b2.build();
        let p = params();
        let idx = InvertedIndex::build(&g, &interner);
        let query = crate::index::blocking_query(&gd, &interner, u);
        assert!(
            !idx.candidates(&query).is_empty(),
            "all-stop-token query must fall back, not go empty"
        );
        let mut m1 = Matcher::new(&gd, &g, &interner, &p);
        let mut m2 = Matcher::new(&gd, &g, &interner, &p);
        let scan = vpair(&mut m1, u, None);
        let blocked = vpair(&mut m2, u, Some(&idx));
        assert_eq!(scan, whites, "every same-labeled leaf matches");
        assert_eq!(scan, blocked);
    }
}
