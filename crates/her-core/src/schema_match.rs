//! Schema matches `Γ(u_t, v_g)` (appendix D).
//!
//! Beyond entity matches, HER deduces *which path in `G` encodes which
//! attribute of the tuple*: for each pair `(u', v')` in the lineage set of a
//! matched `(u_t, v_g)`, the first edge `e` of the `G_D`-side witness path
//! names an attribute `A`; its match is the prefix `ρ_e` of the `G`-side
//! witness path maximising `M_ρ(L(e), L(ρ_e))`. This is what makes HER's
//! matches *explainable*.

use crate::paramatch::Matcher;
use her_graph::{LabelId, Path, VertexId};

/// One deduced attribute-to-path correspondence.
#[derive(Clone, Debug)]
pub struct SchemaMatch {
    /// The attribute (edge label of the first `G_D` edge).
    pub attr: LabelId,
    /// The `G_D` descendant witnessing the attribute value.
    pub u_desc: VertexId,
    /// The matched `G` descendant.
    pub v_desc: VertexId,
    /// The prefix of the `G`-side path that encodes the attribute.
    pub path: Path,
    /// `M_ρ` score of `(attr, path)`.
    pub score: f32,
}

/// Computes `Γ(u_t, v_g)` from the recorded lineage of a cached match.
/// Returns `None` when `(u_t, v_g)` is not a (cached) match.
pub fn schema_matches(
    matcher: &mut Matcher<'_>,
    u_t: VertexId,
    v_g: VertexId,
) -> Option<Vec<SchemaMatch>> {
    if !matcher.is_match(u_t, v_g) {
        return None;
    }
    // Recompute the *full* pairwise matching over the top-k selections
    // (the recorded lineage set stops accumulating once δ is reached; for
    // explanation we want every attribute's correspondence, as in the
    // appendix-D example where W covers all four brand attributes).
    let su = matcher.select_d(u_t);
    let sv = matcher.select_g(v_g);
    let mut used: her_graph::hash::FxHashSet<VertexId> = Default::default();
    let mut out = Vec::with_capacity(su.len());
    for (u_desc, pu) in su.iter() {
        if pu.is_empty() {
            continue;
        }
        // Best available counterpart by h_ρ among matching descendants.
        let mut best_pair: Option<(VertexId, &Path, f32)> = None;
        for (v_desc, pv) in sv.iter() {
            if pv.is_empty() || used.contains(v_desc) {
                continue;
            }
            if !matcher.is_match(*u_desc, *v_desc) {
                continue;
            }
            let denom = (pu.len() + pv.len()) as f32;
            let hrho = matcher.mrho_seq(pu.edge_labels(), pv.edge_labels()) / denom;
            if best_pair.is_none_or(|(_, _, b)| hrho > b) {
                best_pair = Some((*v_desc, pv, hrho));
            }
        }
        let Some((v_desc, pv, _)) = best_pair else {
            continue;
        };
        used.insert(v_desc);
        let attr = pu.edge_labels()[0];
        // Best-scoring prefix of the G-side path.
        let mut best: Option<(Path, f32)> = None;
        for prefix in pv.prefixes() {
            let s = matcher.mrho_seq(&[attr], prefix.edge_labels());
            if best.as_ref().is_none_or(|(_, bs)| s > *bs) {
                best = Some((prefix, s));
            }
        }
        if let Some((path, score)) = best {
            out.push(SchemaMatch {
                attr,
                u_desc: *u_desc,
                v_desc,
                path,
                score,
            });
        }
    }
    out.sort_by_key(|m| (m.attr, m.u_desc, m.v_desc));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, Thresholds};
    use her_graph::{Graph, GraphBuilder, Interner};

    /// G_D: item --color--> white, --brand--> b(--country--> Germany).
    /// G: item --hasColor--> white, --brandName--> b(--brandCountry--> Germany).
    fn fixture() -> (Graph, Graph, Interner, VertexId, VertexId) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let uc = b.add_vertex("white");
        b.add_edge(u, uc, "color");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("item");
        let vc = b2.add_vertex("white");
        b2.add_edge(v, vc, "hasColor");
        let (g, interner) = b2.build();
        (gd, g, interner, u, v)
    }

    #[test]
    fn schema_match_for_simple_attribute() {
        let (gd, g, i, u, v) = fixture();
        let p = Params::untrained(64, 13).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let mut m = Matcher::new(&gd, &g, &i, &p);
        assert!(m.is_match(u, v));
        let gamma = schema_matches(&mut m, u, v).unwrap();
        assert_eq!(gamma.len(), 1);
        let sm = &gamma[0];
        assert_eq!(i.resolve(sm.attr), "color");
        assert_eq!(sm.path.len(), 1);
        assert_eq!(i.resolve(sm.path.edge_labels()[0]), "hasColor");
        assert!((0.0..=1.0).contains(&sm.score));
    }

    #[test]
    fn none_for_non_match() {
        let (gd, g, i, u, _) = fixture();
        let p = Params::untrained(64, 13).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let mut m = Matcher::new(&gd, &g, &i, &p);
        // The attribute vertex "white" vs root "item": not a match.
        let u_attr = gd.children(u)[0];
        assert!(!m.is_match(u_attr, VertexId(0)));
        assert!(schema_matches(&mut m, u_attr, VertexId(0)).is_none());
    }

    #[test]
    fn multi_hop_attribute_maps_to_prefix() {
        // G_D: brand --made_in--> "Can Duoc, VN"
        // G: brand --factorySite--> site --isIn--> region --isIn--> "Can Duoc, VN"
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("brand");
        let um = b.add_vertex("Can Duoc, VN");
        b.add_edge(u, um, "made_in");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("brand");
        let site = b2.add_vertex("Factory 3");
        let region = b2.add_vertex("Long An");
        let target = b2.add_vertex("Can Duoc, VN");
        b2.add_edge(v, site, "factorySite");
        b2.add_edge(site, region, "isIn");
        b2.add_edge(region, target, "isIn");
        let (g, interner) = b2.build();

        // Train the LM so h_r follows the 3-hop path on the G side.
        let fs = interner.get("factorySite").unwrap();
        let isin = interner.get("isIn").unwrap();
        let mut lm = her_embed::PathLm::new();
        lm.train(&vec![vec![fs, isin, isin]; 4]);
        let mut p = Params::untrained(64, 17).with_thresholds(Thresholds::new(0.9, 0.0, 5));
        p.ranker = her_embed::TopKRanker::new(lm);

        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
        let gamma = schema_matches(&mut m, u, v).unwrap();
        assert_eq!(gamma.len(), 1);
        assert_eq!(interner.resolve(gamma[0].attr), "made_in");
        // The matched path is some non-empty prefix of (factorySite, isIn, isIn).
        assert!(!gamma[0].path.is_empty() && gamma[0].path.len() <= 3);
        assert_eq!(interner.resolve(gamma[0].path.edge_labels()[0]), "factorySite");
    }
}
