//! The parameters of parametric simulation: score functions `(h_v, h_ρ,
//! h_r)` and thresholds `(σ, δ, k)` (§III).

use her_embed::{PathSimModel, SentenceModel, TopKRanker};
use serde::{Deserialize, Serialize};

/// Thresholds `(σ, δ, k)`.
///
/// - `σ` bounds the vertex-label closeness `h_v`;
/// - `δ` bounds the aggregate path-association score of a lineage set;
/// - `k` caps how many important descendants `h_r` selects per vertex.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Vertex closeness bound for `h_v` (in `[0, 1]`).
    pub sigma: f32,
    /// Aggregate association bound for lineage sets.
    pub delta: f32,
    /// Number of top descendants considered per vertex.
    pub k: usize,
}

impl Default for Thresholds {
    /// The paper's default evaluation setting: `σ=0.8, δ=2.1, k=20` (§VII).
    fn default() -> Self {
        Self {
            sigma: 0.8,
            delta: 2.1,
            k: 20,
        }
    }
}

impl Thresholds {
    /// Convenience constructor.
    pub fn new(sigma: f32, delta: f32, k: usize) -> Self {
        assert!((0.0..=1.0).contains(&sigma), "σ must be in [0,1]");
        assert!(delta >= 0.0, "δ must be non-negative");
        assert!(k >= 1, "k must be positive");
        Self { sigma, delta, k }
    }
}

/// The full parameter bundle handed to the matching algorithms.
pub struct Params {
    /// `M_v`: vertex-label similarity model behind `h_v`.
    pub mv: SentenceModel,
    /// `M_ρ`: path-association model behind `h_ρ`.
    pub mrho: PathSimModel,
    /// `h_r`: top-k descendant ranking function (wraps `M_r` and PRA).
    pub ranker: TopKRanker,
    /// `(σ, δ, k)`.
    pub thresholds: Thresholds,
}

impl Params {
    /// Bundles the models with thresholds.
    pub fn new(
        mv: SentenceModel,
        mrho: PathSimModel,
        ranker: TopKRanker,
        thresholds: Thresholds,
    ) -> Self {
        Self {
            mv,
            mrho,
            ranker,
            thresholds,
        }
    }

    /// Fresh untrained parameters with `dim`-dimensional embeddings and
    /// default thresholds — useful for tests and as the starting point of
    /// the Learn module.
    pub fn untrained(dim: usize, seed: u64) -> Self {
        Self {
            mv: SentenceModel::new(dim),
            mrho: PathSimModel::new(dim, seed),
            ranker: TopKRanker::new(her_embed::PathLm::new()),
            thresholds: Thresholds::default(),
        }
    }

    /// Returns a copy with different thresholds (models shared by clone).
    pub fn with_thresholds(&self, thresholds: Thresholds) -> Params
    where
        SentenceModel: Clone,
        PathSimModel: Clone,
        TopKRanker: Clone,
    {
        Params {
            mv: self.mv.clone(),
            mrho: self.mrho.clone(),
            ranker: self.ranker.clone(),
            thresholds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert_eq!(t.sigma, 0.8);
        assert_eq!(t.delta, 2.1);
        assert_eq!(t.k, 20);
    }

    #[test]
    fn constructor_validates() {
        let t = Thresholds::new(0.7, 1.5, 5);
        assert_eq!(t.k, 5);
    }

    #[test]
    #[should_panic(expected = "σ")]
    fn sigma_out_of_range_panics() {
        let _ = Thresholds::new(1.5, 1.0, 5);
    }

    #[test]
    #[should_panic(expected = "k")]
    fn zero_k_panics() {
        let _ = Thresholds::new(0.5, 1.0, 0);
    }

    #[test]
    fn with_thresholds_overrides_only_thresholds() {
        let p = Params::untrained(16, 1);
        let q = p.with_thresholds(Thresholds::new(0.5, 1.0, 3));
        assert_eq!(q.thresholds.k, 3);
        assert_eq!(p.thresholds.k, 20);
        // Models behave identically after the copy.
        assert_eq!(p.mv.similarity("a", "b"), q.mv.similarity("a", "b"));
    }
}
