//! Warm-matcher checkout/checkin pool for the serving path.
//!
//! A [`crate::paramatch::Matcher`] accumulates state worth keeping —
//! the verdict `cache`, the lineage reverse-dependency index, and the
//! top-k selections — yet the serving path historically built a fresh
//! matcher per request and threw all of it away. [`MatcherPool`] keeps
//! a bounded free list of warm matchers: a request checks one out
//! ([`MatcherPool::checkout`]), runs under a fresh budget/cancel/ctx
//! ([`crate::paramatch::Matcher::rearm`]), and checks it back in so the
//! next request inherits the verdicts.
//!
//! Coherence rides on the existing [`SharedScores`] generation
//! protocol: `learn`/`refine` bump the shared generation, a checked-out
//! matcher reconciles lazily at its next query entry point (dropping
//! its derived caches), and the pool *counts* that reconciliation as a
//! rebuild by comparing generations at checkout. Results are therefore
//! bit-identical to fresh-matcher serving — pooling is pure reuse.
//!
//! The free list sits behind a `core.matcher_pool`-ranked lock held
//! only for a pop/push; matchers are moved out before any matching (and
//! its `core.scores_shard` locks) begins.
//!
//! [`SharedScores`]: crate::shared_scores::SharedScores

use crate::her::Her;
use crate::paramatch::{Budget, CancelToken, Matcher, MatcherOptions};
use her_sync::rank;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;

/// What one checkout cost: whether a warm matcher was reused and
/// whether its caches were (or are about to be) dropped because the
/// shared-score generation moved underneath it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolTicket {
    /// A warm matcher was reused (false: the pool was empty and a
    /// fresh matcher was built).
    pub hit: bool,
    /// The reused matcher's caches were stale against the current
    /// [`crate::shared_scores::SharedScores`] generation and will be
    /// rebuilt at its next query entry point.
    pub rebuilt: bool,
    /// Microseconds spent obtaining a ready matcher — free-list lock
    /// wait plus re-arm (hit) or fresh build (miss). The serving path
    /// files this as the flight record's `pool_wait_us`.
    pub wait_us: u64,
}

/// A bounded free list of warm matchers over one [`Her`].
///
/// Thread-safe: checkout/checkin from any handler thread. Counters are
/// mirrored into `scores.pool.{hits,misses,rebuilds}` when an
/// observability handle is attached.
pub struct MatcherPool<'h> {
    her: &'h Her,
    slots: her_sync::Mutex<Vec<Matcher<'h>>>,
    cap: usize,
    obs: Option<her_obs::Obs>,
    hits: AtomicU64,
    misses: AtomicU64,
    rebuilds: AtomicU64,
}

impl<'h> MatcherPool<'h> {
    /// An empty pool retaining at most `cap` idle matchers (checkins
    /// beyond the cap drop the matcher; `cap` is typically the server's
    /// `max_inflight`, so one warm matcher per concurrent request).
    pub fn new(her: &'h Her, cap: usize) -> Self {
        MatcherPool {
            her,
            slots: her_sync::Mutex::new(rank::MATCHER_POOL, Vec::with_capacity(cap)),
            cap,
            obs: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Attaches an observability handle: pool counters mirror into the
    /// registry, and pooled matchers are built instrumented.
    pub fn with_obs(mut self, obs: her_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    fn lock(&self) -> her_sync::MutexGuard<'_, Vec<Matcher<'h>>> {
        // A panicking request cannot poison the free list into
        // uselessness: the list only ever holds checked-in matchers,
        // which are valid by construction.
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks a matcher out: a warm one re-armed for this request when
    /// available, else a fresh build. The ticket says which.
    pub fn checkout(
        &self,
        budget: Budget,
        cancel: CancelToken,
        ctx: her_obs::ReqCtx,
    ) -> (Matcher<'h>, PoolTicket) {
        let started = std::time::Instant::now();
        let wait_us = move || started.elapsed().as_micros() as u64;
        let warm = self.lock().pop();
        match warm {
            Some(mut m) => {
                // This read only *counts* the upcoming rebuild; the
                // matcher itself still reconciles at its next declared
                // query entry point, exactly as it would unpooled.
                let rebuilt = self
                    .her
                    .shared_scores
                    .as_ref()
                    // #[allow(her::generation_entry_point)] — observational read for the rebuild counter, not a reconciliation site
                    .is_some_and(|s| s.generation() != m.scores_generation());
                m.rearm(budget, cancel, ctx);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if rebuilt {
                    self.rebuilds.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(obs) = &self.obs {
                    obs.registry.counter("scores.pool.hits").inc();
                    if rebuilt {
                        obs.registry.counter("scores.pool.rebuilds").inc();
                    }
                }
                (
                    m,
                    PoolTicket {
                        hit: true,
                        rebuilt,
                        wait_us: wait_us(),
                    },
                )
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.registry.counter("scores.pool.misses").inc();
                }
                let m = self.her.matcher_with(MatcherOptions {
                    budget,
                    cancel,
                    ctx,
                    obs: self.obs.clone(),
                    ..MatcherOptions::default()
                });
                (
                    m,
                    PoolTicket {
                        wait_us: wait_us(),
                        ..PoolTicket::default()
                    },
                )
            }
        }
    }

    /// Returns a matcher to the free list (dropped when the pool is at
    /// capacity). Check in every matcher you check out — a matcher lost
    /// to a panic is safe (the pool just refills with a miss) but
    /// wastes its warmth.
    pub fn checkin(&self, m: Matcher<'h>) {
        let mut slots = self.lock();
        if slots.len() < self.cap {
            slots.push(m);
        }
    }

    /// Checkout, run `f`, checkin; returns `f`'s result and the
    /// checkout ticket. On panic the matcher is dropped, not poisoned
    /// back into the pool.
    pub fn run<R>(
        &self,
        budget: Budget,
        cancel: CancelToken,
        ctx: her_obs::ReqCtx,
        f: impl FnOnce(&mut Matcher<'h>) -> R,
    ) -> (R, PoolTicket) {
        let (mut m, ticket) = self.checkout(budget, cancel, ctx);
        let out = f(&mut m);
        self.checkin(m);
        (out, ticket)
    }

    /// Checkouts served by a warm matcher.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Checkouts that had to build a fresh matcher.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Warm checkouts whose caches were generation-stale (a
    /// `learn`/`refine` landed since the matcher was last used).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Idle matchers currently pooled.
    pub fn idle(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::her::HerConfig;
    use crate::params::Thresholds;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::tuple::Tuple;
    use her_rdb::value::Value;
    use her_rdb::Database;
    use her_graph::GraphBuilder;

    fn fixture() -> (Her, her_rdb::TupleRef) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let t = db.insert(
            item,
            Tuple::new(vec![Value::str("Dame Shoes"), Value::str("white")]),
        );
        let mut b = GraphBuilder::new();
        let v = b.add_vertex("item");
        let vn = b.add_vertex("Dame Shoes");
        let vc = b.add_vertex("white");
        b.add_edge(v, vn, "name");
        b.add_edge(v, vc, "hasColor");
        let (g, i) = b.build();
        let cfg = HerConfig {
            thresholds: Thresholds::new(0.9, 0.05, 5),
            use_blocking: false,
            ..Default::default()
        };
        (Her::build(&db, g, i, &cfg), t)
    }

    #[test]
    fn checkout_reuses_warm_matchers_and_counts() {
        let (her, t) = fixture();
        let pool = MatcherPool::new(&her, 2);
        let expect = her.vpair(t);
        for round in 0..4 {
            let (run, _) = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
            assert_eq!(run.matches, expect, "round {round} diverged");
            assert!(run.is_complete());
        }
        assert_eq!(pool.misses(), 1, "only the first checkout builds");
        assert_eq!(pool.hits(), 3);
        assert_eq!(pool.rebuilds(), 0, "no generation bump, no rebuilds");
        assert_eq!(pool.idle(), 1);
    }

    /// Pooled per-request stats are the request's own spend: a fully
    /// warm repeat run reports zero fresh `ParaMatch` calls, all cache
    /// hits — while a fresh matcher would re-verify from scratch.
    #[test]
    fn pooled_stats_are_per_request_deltas() {
        let (her, t) = fixture();
        let pool = MatcherPool::new(&her, 2);
        let (first, _) = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        assert!(first.stats.calls > 0, "cold run does real work");
        let (second, _) = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        assert_eq!(second.stats.calls, 0, "warm repeat is fully cached");
        assert!(second.stats.cache_hits > 0);
    }

    /// A `refine` bumps the shared-score generation; the next checkout
    /// counts a rebuild and the matcher re-verifies correctly.
    #[test]
    fn generation_bump_invalidates_warm_matchers() {
        let (mut her, t) = fixture();
        let expect = her.vpair(t);
        {
            let pool = MatcherPool::new(&her, 2);
            let _ = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
            assert_eq!(pool.rebuilds(), 0);
        }
        // Refine with a confirming annotation: results stay the same,
        // but the generation moves.
        let v = expect[0];
        her.refine(&[(t, v, true)], &crate::refine::RefineConfig::default());
        let pool = MatcherPool::new(&her, 2);
        let _ = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        let (warm, _) = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        assert_eq!(warm.matches, her.vpair(t));
        // Invalidate between checkin and the next checkout: the pool
        // must see the stale generation and count the rebuild.
        her.shared_scores.as_ref().expect("shared on").invalidate();
        let (after, _) = her.try_vpair_pooled(&pool, t, Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        assert_eq!(after.matches, her.vpair(t), "rebuild preserves results");
        assert_eq!(pool.rebuilds(), 1, "stale checkout counted as rebuild");
    }

    /// A concurrent vpair storm over a warmed pool: every request after
    /// warmup reuses a warm matcher (hits climb, zero rebuilds — no
    /// generation bump happened) and every thread sees the reference
    /// answer.
    #[test]
    fn concurrent_vpair_storm_reuses_warm_matchers() {
        const THREADS: usize = 4;
        const ROUNDS: usize = 16;
        let (her, t) = fixture();
        let expect = her.vpair(t);
        let pool = MatcherPool::new(&her, THREADS);
        // Warm up: one matcher per storm thread, checked out together so
        // the free list actually holds THREADS warm matchers.
        let warm: Vec<_> = (0..THREADS)
            .map(|_| {
                pool.checkout(Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE)
                    .0
            })
            .collect();
        for mut m in warm {
            // Prime the verdict caches before checkin, as a served
            // request would.
            let run = crate::vpair::try_vpair(&mut m, her.cg.vertex_of(t), her.index.as_ref());
            assert_eq!(run.matches, expect);
            pool.checkin(m);
        }
        let warmup_misses = pool.misses();
        assert_eq!(warmup_misses, THREADS as u64);

        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..ROUNDS {
                        let (run, ticket) = her.try_vpair_pooled(
                            &pool,
                            t,
                            Budget::unlimited(),
                            CancelToken::new(),
                            her_obs::ReqCtx::NONE,
                        );
                        assert_eq!(run.matches, expect);
                        assert!(ticket.hit, "storm checkout missed a warm matcher");
                    }
                });
            }
        });

        assert_eq!(pool.misses(), warmup_misses, "storm built fresh matchers");
        assert_eq!(pool.hits(), (THREADS * ROUNDS) as u64);
        assert_eq!(pool.rebuilds(), 0, "no generation bump, no rebuilds");
        assert_eq!(pool.idle(), THREADS);
    }

    /// The pool cap bounds the free list; excess checkins drop.
    #[test]
    fn checkin_respects_capacity() {
        let (her, _t) = fixture();
        let pool = MatcherPool::new(&her, 1);
        let (a, _) = pool.checkout(Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        let (b, _) = pool.checkout(Budget::unlimited(), CancelToken::new(), her_obs::ReqCtx::NONE);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.idle(), 1, "cap of 1 holds");
        assert_eq!(pool.misses(), 2);
    }
}
