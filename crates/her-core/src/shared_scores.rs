//! Process-wide shared scoring layer.
//!
//! §IV observes that after training, `h_v`/`h_ρ` are called millions of
//! times over a much smaller set of *distinct* label pairs and path
//! label sequences. [`crate::scores::ScoreCache`] memoises those, but is
//! private to each [`crate::paramatch::Matcher`] — so every BSP/async
//! worker re-embeds the same vocabulary from scratch, multiplying
//! embedding work by the worker count.
//!
//! [`SharedScores`] is the thread-safe, sharded, read-through variant:
//! one handle (cheaply cloneable, `Arc` inside) holds `SHARD_COUNT`
//! `RwLock`-guarded memo tables keyed by interned [`LabelId`]s / label
//! sequences over one shared interner. Reads take a shard read lock;
//! misses compute and insert under the shard write lock, so each
//! distinct label is embedded **once per process** no matter how many
//! matchers share the handle.
//!
//! Two extra facilities keep sharing correct and measurable:
//!
//! - **Generation-based invalidation.** Fine-tuning (`refine`) mutates
//!   the models, so memoised scores go stale. [`SharedScores::invalidate`]
//!   clears every shard and bumps a monotonic generation counter;
//!   matchers record the generation they last synced with and drop
//!   their *derived* caches (verdicts, selections) when it moves. The
//!   same mechanism covers checkpoint/restore: restored matchers adopt
//!   the current generation and rebuild derived state lazily, which
//!   matches the checkpoint contract (memo tables are never captured).
//! - **Accounting.** The handle counts `M_v` embedding computations and
//!   memo hits; with [`SharedScores::with_obs`] these mirror into the
//!   `scores.embed_calls` / `scores.shared_hits` registry counters that
//!   the bench harness and CI assert on.
//!
//! ## Equivalence
//!
//! `SentenceModel::embed` and `PathSimModel::encode`/`score_vecs` are
//! deterministic pure functions of the (frozen-during-matching) model
//! parameters, and `SharedScores` is a pure memo over them: any
//! interleaving of readers and writers stores and returns the same
//! floats a private `ScoreCache` would. Matching results are therefore
//! bit-identical with or without sharing — Theorem 3's equivalence of
//! parallel and sequential fixpoints is untouched (see DESIGN.md §4f).

use crate::params::Params;
use her_graph::hash::{FxHashMap, FxHasher};
use her_graph::{Interner, LabelId, Path};
use her_sync::{rank, RwLock};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count: a small power of two comfortably above typical
/// worker counts, so concurrent lookups rarely contend on the same lock.
/// Larger deployments size the array from the worker count instead — see
/// [`SharedScores::for_workers`].
const DEFAULT_SHARD_COUNT: usize = 16;

/// Shards for `workers` concurrent readers: the next power of two at or
/// above the worker count, never below [`DEFAULT_SHARD_COUNT`]. Power of
/// two keeps shard selection a mask; ≥ workers keeps the expected
/// contention per shard below one thread.
fn shards_for_workers(workers: usize) -> usize {
    workers.next_power_of_two().max(DEFAULT_SHARD_COUNT)
}

/// A batch of freshly-encoded path vectors, keyed by their sequences.
type EncodedPaths<'a> = Vec<(&'a Vec<LabelId>, Arc<Vec<f32>>)>;

/// One shard's memo tables — the same four maps as `ScoreCache`.
#[derive(Default)]
struct Shard {
    label_vecs: FxHashMap<LabelId, Arc<Vec<f32>>>,
    hv_memo: FxHashMap<(LabelId, LabelId), f32>,
    path_vecs: FxHashMap<Vec<LabelId>, Arc<Vec<f32>>>,
    mrho_memo: FxHashMap<(Vec<LabelId>, Vec<LabelId>), f32>,
}

struct Inner {
    /// Power-of-two length, so shard selection is `hash & (len - 1)`.
    shards: Box<[RwLock<Shard>]>,
    /// Bumped by [`SharedScores::invalidate`]; matchers re-sync derived
    /// caches when the generation they saw last no longer matches.
    generation: AtomicU64,
    embed_calls: AtomicU64,
    shared_hits: AtomicU64,
    obs_embed: Option<Arc<her_obs::Counter>>,
    obs_hits: Option<Arc<her_obs::Counter>>,
}

/// Thread-safe, sharded, read-through score memo shared by all matchers
/// in a process (sequential `apair`, every BSP/async worker). Clones
/// share the underlying tables.
#[derive(Clone)]
pub struct SharedScores {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SharedScores {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedScores")
            .field("generation", &self.generation())
            .field("embed_calls", &self.embed_calls())
            .field("shared_hits", &self.shared_hits())
            .finish()
    }
}

impl Default for SharedScores {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedScores {
    /// Creates an empty shared cache (no telemetry attached, default
    /// shard count).
    pub fn new() -> Self {
        Self::build(None, None, DEFAULT_SHARD_COUNT)
    }

    /// Creates an empty shared cache sized for `workers` concurrent
    /// readers (next power of two, minimum [`DEFAULT_SHARD_COUNT`]).
    pub fn for_workers(workers: usize) -> Self {
        Self::build(None, None, shards_for_workers(workers))
    }

    /// Creates an empty shared cache whose embed/hit counts also feed
    /// the `scores.embed_calls` / `scores.shared_hits` counters of the
    /// given registry.
    pub fn with_obs(obs: &her_obs::Obs) -> Self {
        Self::with_obs_for_workers(obs, 0)
    }

    /// [`SharedScores::with_obs`] with the shard array sized for
    /// `workers` concurrent readers.
    pub fn with_obs_for_workers(obs: &her_obs::Obs, workers: usize) -> Self {
        Self::build(
            Some(obs.registry.counter("scores.embed_calls")),
            Some(obs.registry.counter("scores.shared_hits")),
            shards_for_workers(workers),
        )
    }

    fn build(
        obs_embed: Option<Arc<her_obs::Counter>>,
        obs_hits: Option<Arc<her_obs::Counter>>,
        shard_count: usize,
    ) -> Self {
        debug_assert!(shard_count.is_power_of_two());
        let shards = (0..shard_count)
            .map(|_| RwLock::new(rank::SCORES_SHARD, Shard::default()))
            .collect();
        Self {
            inner: Arc::new(Inner {
                shards,
                generation: AtomicU64::new(0),
                embed_calls: AtomicU64::new(0),
                shared_hits: AtomicU64::new(0),
                obs_embed,
                obs_hits,
            }),
        }
    }

    /// Number of shards in this handle's memo array (a power of two).
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    fn shard<K: Hash + ?Sized>(&self, key: &K) -> &RwLock<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.inner.shards[(h.finish() as usize) & (self.inner.shards.len() - 1)]
    }

    fn count_embed(&self, n: u64) {
        self.inner.embed_calls.fetch_add(n, Ordering::Relaxed);
        if let Some(c) = &self.inner.obs_embed {
            c.add(n);
        }
    }

    fn count_hit(&self) {
        self.inner.shared_hits.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.inner.obs_hits {
            c.inc();
        }
    }

    /// `h_v` on interned labels — same contract as `ScoreCache::hv`,
    /// including per-pair override scoping.
    pub fn hv(&self, params: &Params, interner: &Interner, l1: LabelId, l2: LabelId) -> f32 {
        if l1 == l2 && !params.mv.is_overridden(interner.resolve(l1), interner.resolve(l1)) {
            return 1.0;
        }
        let key = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let shard = self.shard(&key);
        if let Some(&s) = shard.read().expect("scores shard poisoned").hv_memo.get(&key) {
            self.count_hit();
            return s;
        }
        let s = if params.mv.is_overridden(interner.resolve(l1), interner.resolve(l2)) {
            params
                .mv
                .similarity(interner.resolve(l1), interner.resolve(l2))
        } else {
            // Embeddings resolve through the sharded label table; the
            // similarity itself is cheap and computed outside any lock.
            // A racing writer inserts the identical float — harmless.
            let v1 = self.label_vec(params, interner, l1);
            let v2 = self.label_vec(params, interner, l2);
            params.mv.similarity_from_vecs(&v1, &v2)
        };
        shard
            .write()
            .expect("scores shard poisoned")
            .hv_memo
            .insert(key, s);
        s
    }

    /// Read-through `M_v` embedding of one label. Computed under the
    /// shard write lock so each distinct label embeds exactly once
    /// process-wide (keeps `scores.embed_calls` ≤ distinct labels).
    fn label_vec(&self, params: &Params, interner: &Interner, l: LabelId) -> Arc<Vec<f32>> {
        let shard = self.shard(&l);
        if let Some(v) = shard.read().expect("scores shard poisoned").label_vecs.get(&l) {
            self.count_hit();
            return Arc::clone(v);
        }
        let mut w = shard.write().expect("scores shard poisoned");
        if let Some(v) = w.label_vecs.get(&l) {
            return Arc::clone(v);
        }
        let v = Arc::new(params.mv.embed(interner.resolve(l)));
        self.count_embed(1);
        w.label_vecs.insert(l, Arc::clone(&v));
        v
    }

    /// Read-through `M_ρ` sequence encoding (exactly-once, like
    /// [`Self::label_vec`]).
    fn path_vec(&self, params: &Params, interner: &Interner, seq: &[LabelId]) -> Arc<Vec<f32>> {
        let shard = self.shard(seq);
        if let Some(v) = shard.read().expect("scores shard poisoned").path_vecs.get(seq) {
            self.count_hit();
            return Arc::clone(v);
        }
        let mut w = shard.write().expect("scores shard poisoned");
        if let Some(v) = w.path_vecs.get(seq) {
            return Arc::clone(v);
        }
        let labels: Vec<&str> = seq.iter().map(|&l| interner.resolve(l)).collect();
        let v = Arc::new(params.mrho.encode(&labels));
        w.path_vecs.insert(seq.to_vec(), Arc::clone(&v));
        v
    }

    /// `M_ρ` on two edge-label sequences (undivided).
    pub fn mrho(
        &self,
        params: &Params,
        interner: &Interner,
        seq1: &[LabelId],
        seq2: &[LabelId],
    ) -> f32 {
        let key = (seq1.to_vec(), seq2.to_vec());
        let shard = self.shard(&key);
        if let Some(&s) = shard.read().expect("scores shard poisoned").mrho_memo.get(&key) {
            self.count_hit();
            return s;
        }
        let v1 = self.path_vec(params, interner, seq1);
        let v2 = self.path_vec(params, interner, seq2);
        let s = params.mrho.score_vecs(&v1, &v2);
        shard
            .write()
            .expect("scores shard poisoned")
            .mrho_memo
            .insert(key, s);
        s
    }

    /// `h_ρ(ρ1, ρ2) = M_ρ(L(ρ1), L(ρ2)) / (len(ρ1) + len(ρ2))` (Eq. 2).
    pub fn hrho(&self, params: &Params, interner: &Interner, rho1: &Path, rho2: &Path) -> f32 {
        let denom = (rho1.len() + rho2.len()) as f32;
        if denom == 0.0 {
            return 0.0;
        }
        self.mrho(params, interner, rho1.edge_labels(), rho2.edge_labels()) / denom
    }

    /// Parallel batch pre-embedding of the `M_v` label vocabulary:
    /// deduplicates, skips labels already cached, then embeds the rest
    /// across `threads` scoped threads (chunked like the parallel
    /// engine's selection precompute). Call before workers start so the
    /// hot loop never embeds.
    pub fn prewarm_labels(
        &self,
        params: &Params,
        interner: &Interner,
        labels: &[LabelId],
        threads: usize,
    ) {
        let mut todo: Vec<LabelId> = {
            let mut seen = her_graph::hash::FxHashSet::default();
            labels
                .iter()
                .copied()
                .filter(|l| seen.insert(*l))
                .filter(|l| {
                    !self
                        .shard(l)
                        .read()
                        .expect("scores shard poisoned")
                        .label_vecs
                        .contains_key(l)
                })
                .collect()
        };
        todo.sort_unstable();
        if todo.is_empty() {
            return;
        }
        let chunk = todo.len().div_ceil(threads.max(1)).max(1);
        let parts: Vec<Vec<(LabelId, Arc<Vec<f32>>)>> = std::thread::scope(|s| {
            todo.chunks(chunk)
                .map(|ls| {
                    s.spawn(move || {
                        ls.iter()
                            .map(|&l| (l, Arc::new(params.mv.embed(interner.resolve(l)))))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("prewarm thread panicked"))
                .collect()
        });
        for (l, v) in parts.into_iter().flatten() {
            let mut w = self.shard(&l).write().expect("scores shard poisoned");
            if w.label_vecs.insert(l, v).is_none() {
                self.count_embed(1);
            }
        }
    }

    /// Parallel batch pre-encoding of `M_ρ` edge-label sequences (e.g.
    /// every distinct path signature in the precomputed selections).
    pub fn prewarm_paths(
        &self,
        params: &Params,
        interner: &Interner,
        seqs: &[Vec<LabelId>],
        threads: usize,
    ) {
        let mut todo: Vec<&Vec<LabelId>> = {
            let mut seen = her_graph::hash::FxHashSet::default();
            seqs.iter()
                .filter(|s| seen.insert(s.as_slice()))
                .filter(|s| {
                    !self
                        .shard(s.as_slice())
                        .read()
                        .expect("scores shard poisoned")
                        .path_vecs
                        .contains_key(s.as_slice())
                })
                .collect()
        };
        todo.sort_unstable();
        if todo.is_empty() {
            return;
        }
        let chunk = todo.len().div_ceil(threads.max(1)).max(1);
        let parts: Vec<EncodedPaths<'_>> = std::thread::scope(|s| {
            todo.chunks(chunk)
                .map(|ss| {
                    s.spawn(move || {
                        ss.iter()
                            .map(|&seq| {
                                let labels: Vec<&str> =
                                    seq.iter().map(|&l| interner.resolve(l)).collect();
                                (seq, Arc::new(params.mrho.encode(&labels)))
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("prewarm thread panicked"))
                .collect()
        });
        for (seq, v) in parts.into_iter().flatten() {
            let mut w = self.shard(seq.as_slice()).write().expect("scores shard poisoned");
            w.path_vecs.entry(seq.clone()).or_insert(v);
        }
    }

    /// Drops every memo table and bumps the generation — required after
    /// model fine-tuning. Matchers holding this handle notice the bump
    /// at their next query and drop their derived caches too.
    pub fn invalidate(&self) {
        for shard in &self.inner.shards {
            let mut s = shard.write().expect("scores shard poisoned");
            s.label_vecs.clear();
            s.hv_memo.clear();
            s.path_vecs.clear();
            s.mrho_memo.clear();
        }
        self.inner.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Current invalidation generation (monotone).
    pub fn generation(&self) -> u64 {
        self.inner.generation.load(Ordering::SeqCst)
    }

    /// Total `M_v` embeddings computed through this handle.
    pub fn embed_calls(&self) -> u64 {
        self.inner.embed_calls.load(Ordering::Relaxed)
    }

    /// Total memo hits served through this handle.
    pub fn shared_hits(&self) -> u64 {
        self.inner.shared_hits.load(Ordering::Relaxed)
    }

    /// Number of memoised `h_v` entries across all shards (introspection).
    pub fn hv_entries(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().expect("scores shard poisoned").hv_memo.len())
            .sum()
    }

    /// Number of cached `M_v` label vectors across all shards.
    pub fn label_entries(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.read().expect("scores shard poisoned").label_vecs.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use crate::scores::ScoreCache;
    use her_graph::GraphBuilder;

    fn setup() -> (Params, Interner, Vec<LabelId>) {
        let mut b = GraphBuilder::new();
        let words = [
            "Germany", "Vietnam", "Japan", "phylon foam", "made_in", "factorySite", "isIn",
            "item", "white", "red", "brand", "color", "country", "name",
        ];
        let ids: Vec<LabelId> = words.iter().map(|w| b.intern(w)).collect();
        let (_, interner) = b.build();
        (Params::untrained(32, 9), interner, ids)
    }

    #[test]
    fn shard_array_is_sized_from_workers() {
        // Defaults and small fleets share the 16-shard floor.
        assert_eq!(SharedScores::new().shard_count(), 16);
        for workers in [0, 1, 4, 16] {
            assert_eq!(SharedScores::for_workers(workers).shard_count(), 16);
        }
        // Past the floor: next power of two at or above the worker count.
        for (workers, shards) in [(17, 32), (32, 32), (33, 64), (100, 128)] {
            assert_eq!(SharedScores::for_workers(workers).shard_count(), shards);
        }
    }

    /// The lock-order tracker turns a seeded shard-lock inversion into a
    /// deterministic panic naming both locks: a thread holding a
    /// higher-ranked lock (here the obs-registry rank) must not enter the
    /// score shards (rank `core.scores_shard`).
    #[test]
    fn seeded_shard_lock_inversion_panics_under_tracking() {
        if !her_sync::TRACKING {
            return;
        }
        let (p, i, labels) = setup();
        let shared = SharedScores::new();
        let outer = her_sync::Mutex::new(her_sync::rank::OBS_REGISTRY, ());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = outer.lock().unwrap();
            // Inversion: rank 40 (core.scores_shard) under rank 90.
            shared.hv(&p, &i, labels[0], labels[1]);
        }))
        .expect_err("inverted acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(msg.contains("lock-order violation"), "got: {msg}");
        assert!(
            msg.contains("core.scores_shard"),
            "panic must name the acquired lock: {msg}"
        );
        assert!(msg.contains("obs.registry"), "panic must name the held lock: {msg}");
    }

    #[test]
    fn shared_hv_matches_private_cache_bit_for_bit() {
        let (p, i, labels) = setup();
        let shared = SharedScores::new();
        let mut private = ScoreCache::new();
        for &a in &labels {
            for &b in &labels {
                assert_eq!(
                    shared.hv(&p, &i, a, b).to_bits(),
                    private.hv(&p, &i, a, b).to_bits(),
                    "hv({a:?}, {b:?}) diverged"
                );
            }
        }
    }

    /// The satellite stress test: N threads score overlapping
    /// vocabularies concurrently; every result agrees bit-for-bit with a
    /// single-threaded `ScoreCache`, and each distinct label embeds once.
    #[test]
    fn concurrent_scoring_agrees_with_sequential() {
        let (p, i, mut labels) = setup();
        // Miri runs this test too (it is the interesting one for the
        // aliasing model); shrink the workload so it finishes in CI.
        let threads = if cfg!(miri) { 3 } else { 8 };
        if cfg!(miri) {
            labels.truncate(6);
        }
        let shared = SharedScores::for_workers(threads);
        // Sizing satellite: the shard array comes from the worker count
        // (next power of two, floor 16), so small fleets get the floor...
        assert_eq!(shared.shard_count(), 16);
        // ...while larger fleets outgrow it.
        assert_eq!(SharedScores::for_workers(48).shard_count(), 64);
        let results: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..threads)
                .map(|t| {
                    let shared = shared.clone();
                    let labels = &labels;
                    let p = &p;
                    let i = &i;
                    s.spawn(move || {
                        // Each thread walks the full cross product in a
                        // different order so reads and writes interleave.
                        let mut out = Vec::new();
                        for step in 0..labels.len() * labels.len() {
                            let n = (step + t * 7) % (labels.len() * labels.len());
                            let a = labels[n / labels.len()];
                            let b = labels[n % labels.len()];
                            out.push((n, shared.hv(p, i, a, b).to_bits()));
                        }
                        out.sort_unstable();
                        out.into_iter().map(|(_, bits)| bits).collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("stress thread panicked"))
                .collect()
        });
        let mut private = ScoreCache::new();
        let expected: Vec<u32> = (0..labels.len() * labels.len())
            .map(|n| {
                let a = labels[n / labels.len()];
                let b = labels[n % labels.len()];
                private.hv(&p, &i, a, b).to_bits()
            })
            .collect();
        for (t, r) in results.iter().enumerate() {
            assert_eq!(r, &expected, "thread {t} diverged from sequential");
        }
        // Distinct labels embed once process-wide, not once per thread.
        assert_eq!(shared.embed_calls(), labels.len() as u64);
        assert!(shared.shared_hits() > 0);
    }

    #[test]
    fn concurrent_mrho_agrees_with_sequential() {
        let (p, i, mut labels) = setup();
        if cfg!(miri) {
            labels.truncate(6);
        }
        let seqs: Vec<Vec<LabelId>> = (0..labels.len())
            .map(|n| vec![labels[n], labels[(n + 1) % labels.len()]])
            .collect();
        let shared = SharedScores::new();
        let results: Vec<Vec<u32>> = std::thread::scope(|s| {
            (0..4)
                .map(|t| {
                    let shared = shared.clone();
                    let (p, i, seqs) = (&p, &i, &seqs);
                    s.spawn(move || {
                        let mut out = Vec::new();
                        for step in 0..seqs.len() {
                            let n = (step + t * 3) % seqs.len();
                            let s1 = &seqs[n];
                            let s2 = &seqs[(n + 2) % seqs.len()];
                            out.push((n, shared.mrho(p, i, s1, s2).to_bits()));
                        }
                        out.sort_unstable();
                        out.into_iter().map(|(_, bits)| bits).collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("stress thread panicked"))
                .collect()
        });
        let mut private = ScoreCache::new();
        let expected: Vec<u32> = (0..seqs.len())
            .map(|n| {
                private
                    .mrho(&p, &i, &seqs[n], &seqs[(n + 2) % seqs.len()])
                    .to_bits()
            })
            .collect();
        for r in &results {
            assert_eq!(r, &expected);
        }
    }

    #[test]
    fn prewarm_embeds_each_distinct_label_once() {
        let (p, i, labels) = setup();
        let shared = SharedScores::new();
        // Duplicate the vocabulary: dedup must keep embeds at 1× distinct.
        let doubled: Vec<LabelId> = labels.iter().chain(labels.iter()).copied().collect();
        shared.prewarm_labels(&p, &i, &doubled, 4);
        assert_eq!(shared.embed_calls(), labels.len() as u64);
        assert_eq!(shared.label_entries(), labels.len());
        // Prewarming again is a no-op.
        shared.prewarm_labels(&p, &i, &labels, 4);
        assert_eq!(shared.embed_calls(), labels.len() as u64);
        // Scoring after prewarm computes no further embeddings.
        for &a in &labels {
            for &b in &labels {
                let _ = shared.hv(&p, &i, a, b);
            }
        }
        assert_eq!(shared.embed_calls(), labels.len() as u64);
    }

    #[test]
    fn prewarmed_vectors_score_identically() {
        let (p, i, labels) = setup();
        let warm = SharedScores::new();
        warm.prewarm_labels(&p, &i, &labels, 3);
        let seqs: Vec<Vec<LabelId>> = labels.windows(2).map(|w| w.to_vec()).collect();
        warm.prewarm_paths(&p, &i, &seqs, 3);
        let cold = SharedScores::new();
        for &a in &labels {
            for &b in &labels {
                assert_eq!(warm.hv(&p, &i, a, b).to_bits(), cold.hv(&p, &i, a, b).to_bits());
            }
        }
        for s1 in &seqs {
            for s2 in &seqs {
                assert_eq!(
                    warm.mrho(&p, &i, s1, s2).to_bits(),
                    cold.mrho(&p, &i, s1, s2).to_bits()
                );
            }
        }
    }

    #[test]
    fn invalidate_clears_and_bumps_generation() {
        let (mut p, i, labels) = setup();
        let shared = SharedScores::new();
        let a = labels[0];
        let b = labels[3];
        let before = shared.hv(&p, &i, a, b);
        assert_eq!(shared.generation(), 0);
        // Fine-tune the queried pair, then invalidate: the next read
        // must see the override, and the generation must move.
        for _ in 0..6 {
            p.mv.fine_tune_pair(i.resolve(a), i.resolve(b), 1.0);
        }
        shared.invalidate();
        assert_eq!(shared.generation(), 1);
        assert_eq!(shared.hv_entries(), 0);
        let after = shared.hv(&p, &i, a, b);
        assert!(after > before);
        assert!(after > 0.9);
        // Clones observe the same generation (shared inner).
        assert_eq!(shared.clone().generation(), 1);
    }
}
