//! Memoised evaluation of the score functions `h_v` and `h_ρ`.
//!
//! §IV notes that once training completes, scoring is linear-time; the
//! matching algorithms then call `h_v` and `h_ρ` millions of times on a
//! much smaller set of *distinct* label pairs and path label sequences.
//! [`ScoreCache`] memoises per interned label / label-sequence so the hot
//! loop of `ParaMatch` performs hash lookups instead of re-embedding.

use crate::params::Params;
use her_graph::hash::FxHashMap;
use her_graph::{Interner, LabelId, Path};
use std::sync::Arc as Rc;

/// Memo tables for `h_v` and `h_ρ` over one shared interner.
pub struct ScoreCache {
    label_vecs: FxHashMap<LabelId, Rc<Vec<f32>>>,
    hv_memo: FxHashMap<(LabelId, LabelId), f32>,
    path_vecs: FxHashMap<Vec<LabelId>, Rc<Vec<f32>>>,
    mrho_memo: FxHashMap<(Vec<LabelId>, Vec<LabelId>), f32>,
    embed_calls: u64,
    obs_embed: Option<Rc<her_obs::Counter>>,
}

impl ScoreCache {
    /// Creates empty memo tables.
    pub fn new() -> Self {
        Self {
            label_vecs: FxHashMap::default(),
            hv_memo: FxHashMap::default(),
            path_vecs: FxHashMap::default(),
            mrho_memo: FxHashMap::default(),
            embed_calls: 0,
            obs_embed: None,
        }
    }

    /// Mirrors every `M_v` embedding computed by this cache into the
    /// given counter (typically `scores.embed_calls`), so private and
    /// shared caches are comparable in telemetry.
    pub fn set_embed_counter(&mut self, c: Rc<her_obs::Counter>) {
        self.obs_embed = Some(c);
    }

    /// Number of `M_v` label embeddings this cache has computed.
    pub fn embed_calls(&self) -> u64 {
        self.embed_calls
    }

    /// `h_v(u, v) = M_v(L(u), L(v))` on interned labels.
    ///
    /// When the queried pair itself carries a fine-tuned override this
    /// routes through the string interface so feedback is honoured; all
    /// other pairs keep the cached-embedding path (and the identical-label
    /// fast path) regardless of how many *unrelated* overrides exist.
    pub fn hv(&mut self, params: &Params, interner: &Interner, l1: LabelId, l2: LabelId) -> f32 {
        if l1 == l2 && !params.mv.is_overridden(interner.resolve(l1), interner.resolve(l1)) {
            // Identical interned labels always score 1 unless this exact
            // pair was fine-tuned (e.g. annotated as a false positive).
            return 1.0;
        }
        let key = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        if let Some(&s) = self.hv_memo.get(&key) {
            return s;
        }
        let s = if params.mv.is_overridden(interner.resolve(l1), interner.resolve(l2)) {
            params
                .mv
                .similarity(interner.resolve(l1), interner.resolve(l2))
        } else {
            let v1 = self.label_vec(params, interner, l1);
            let v2 = self.label_vec(params, interner, l2);
            params.mv.similarity_from_vecs(&v1, &v2)
        };
        self.hv_memo.insert(key, s);
        s
    }

    fn label_vec(&mut self, params: &Params, interner: &Interner, l: LabelId) -> Rc<Vec<f32>> {
        if let Some(v) = self.label_vecs.get(&l) {
            return Rc::clone(v);
        }
        let v = Rc::new(params.mv.embed(interner.resolve(l)));
        self.embed_calls += 1;
        if let Some(c) = &self.obs_embed {
            c.inc();
        }
        self.label_vecs.insert(l, Rc::clone(&v));
        v
    }

    fn path_vec(&mut self, params: &Params, interner: &Interner, seq: &[LabelId]) -> Rc<Vec<f32>> {
        if let Some(v) = self.path_vecs.get(seq) {
            return Rc::clone(v);
        }
        let labels: Vec<&str> = seq.iter().map(|&l| interner.resolve(l)).collect();
        let v = Rc::new(params.mrho.encode(&labels));
        self.path_vecs.insert(seq.to_vec(), Rc::clone(&v));
        v
    }

    /// `M_ρ` on two edge-label sequences (undivided).
    pub fn mrho(
        &mut self,
        params: &Params,
        interner: &Interner,
        seq1: &[LabelId],
        seq2: &[LabelId],
    ) -> f32 {
        let key = (seq1.to_vec(), seq2.to_vec());
        if let Some(&s) = self.mrho_memo.get(&key) {
            return s;
        }
        let v1 = self.path_vec(params, interner, seq1);
        let v2 = self.path_vec(params, interner, seq2);
        let s = params.mrho.score_vecs(&v1, &v2);
        self.mrho_memo.insert(key, s);
        s
    }

    /// `h_ρ(ρ1, ρ2) = M_ρ(L(ρ1), L(ρ2)) / (len(ρ1) + len(ρ2))` (Eq. 2).
    pub fn hrho(
        &mut self,
        params: &Params,
        interner: &Interner,
        rho1: &Path,
        rho2: &Path,
    ) -> f32 {
        let denom = (rho1.len() + rho2.len()) as f32;
        if denom == 0.0 {
            return 0.0;
        }
        self.mrho(params, interner, rho1.edge_labels(), rho2.edge_labels()) / denom
    }

    /// Drops everything — required after model fine-tuning.
    pub fn invalidate(&mut self) {
        self.label_vecs.clear();
        self.hv_memo.clear();
        self.path_vecs.clear();
        self.mrho_memo.clear();
    }

    /// Number of memoised `h_v` entries (introspection).
    pub fn hv_entries(&self) -> usize {
        self.hv_memo.len()
    }
}

impl Default for ScoreCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::{GraphBuilder, VertexId};

    fn setup() -> (Params, Interner) {
        let mut b = GraphBuilder::new();
        for s in ["Germany", "germany", "phylon foam", "made_in", "factorySite", "isIn"] {
            b.intern(s);
        }
        let (_, interner) = b.build();
        (Params::untrained(32, 5), interner)
    }

    #[test]
    fn hv_identical_labels_score_one() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let l = i.get("Germany").unwrap();
        assert_eq!(c.hv(&p, &i, l, l), 1.0);
    }

    #[test]
    fn hv_is_symmetric_and_memoised() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let a = i.get("Germany").unwrap();
        let b = i.get("phylon foam").unwrap();
        let s1 = c.hv(&p, &i, a, b);
        let s2 = c.hv(&p, &i, b, a);
        assert_eq!(s1, s2);
        assert_eq!(c.hv_entries(), 1);
    }

    #[test]
    fn hv_respects_fine_tuned_overrides() {
        let (mut p, i) = setup();
        let mut c = ScoreCache::new();
        let a = i.get("made_in").unwrap();
        let b = i.get("factorySite").unwrap();
        let before = c.hv(&p, &i, a, b);
        for _ in 0..6 {
            p.mv.fine_tune_pair("made_in", "factorySite", 1.0);
        }
        c.invalidate();
        let after = c.hv(&p, &i, a, b);
        assert!(after > before);
        assert!(after > 0.9);
    }

    /// Regression: a fine-tuned override on one pair used to disable the
    /// identical-label fast path (and demote every pair to string
    /// similarity) globally. The check is now scoped to the queried pair.
    #[test]
    fn unrelated_override_keeps_identical_label_fast_path() {
        let (mut p, i) = setup();
        let mut c = ScoreCache::new();
        let germany = i.get("Germany").unwrap();
        let foam = i.get("phylon foam").unwrap();
        let baseline = c.hv(&p, &i, germany, foam);
        c.invalidate();
        let embeds_before = c.embed_calls();
        // Fine-tune a completely unrelated pair.
        p.mv.fine_tune_pair("made_in", "factorySite", 1.0);
        // Identical labels still take the fast path: score 1, no memo
        // entry, no embedding computed.
        assert_eq!(c.hv(&p, &i, germany, germany), 1.0);
        assert_eq!(c.hv_entries(), 0);
        assert_eq!(c.embed_calls(), embeds_before);
        // Unrelated non-identical pairs still use cached embeddings and
        // score exactly as before the override existed.
        assert_eq!(c.hv(&p, &i, germany, foam), baseline);
        assert_eq!(c.embed_calls(), embeds_before + 2);
    }

    /// The override still wins for the annotated pair itself — including
    /// an identical-label pair annotated as a false positive.
    #[test]
    fn override_on_identical_pair_disables_its_fast_path_only() {
        let (mut p, i) = setup();
        let mut c = ScoreCache::new();
        let germany = i.get("Germany").unwrap();
        let foam = i.get("phylon foam").unwrap();
        for _ in 0..8 {
            p.mv.fine_tune_pair("Germany", "Germany", 0.0);
        }
        assert!(c.hv(&p, &i, germany, germany) < 0.1);
        // Other identical labels are untouched.
        assert_eq!(c.hv(&p, &i, foam, foam), 1.0);
    }

    #[test]
    fn embed_calls_count_distinct_labels_once() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let a = i.get("Germany").unwrap();
        let b = i.get("phylon foam").unwrap();
        let d = i.get("isIn").unwrap();
        let _ = c.hv(&p, &i, a, b);
        let _ = c.hv(&p, &i, a, d);
        let _ = c.hv(&p, &i, b, d);
        assert_eq!(c.embed_calls(), 3, "three distinct labels, one embed each");
    }

    #[test]
    fn hrho_divides_by_total_length() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let made_in = i.get("made_in").unwrap();
        let p1 = Path::new(vec![VertexId(0), VertexId(1)], vec![made_in]);
        let p2 = Path::new(vec![VertexId(2), VertexId(3)], vec![made_in]);
        let undivided = c.mrho(&p, &i, &[made_in], &[made_in]);
        let h = c.hrho(&p, &i, &p1, &p2);
        assert!((h - undivided / 2.0).abs() < 1e-6);
    }

    #[test]
    fn hrho_trivial_paths_score_zero() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let t1 = Path::trivial(VertexId(0));
        let t2 = Path::trivial(VertexId(1));
        assert_eq!(c.hrho(&p, &i, &t1, &t2), 0.0);
    }

    #[test]
    fn invalidate_clears_memos() {
        let (p, i) = setup();
        let mut c = ScoreCache::new();
        let a = i.get("Germany").unwrap();
        let b = i.get("isIn").unwrap();
        let _ = c.hv(&p, &i, a, b);
        assert_eq!(c.hv_entries(), 1);
        c.invalidate();
        assert_eq!(c.hv_entries(), 0);
    }
}
