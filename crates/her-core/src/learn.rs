//! Module Learn: thresholds by random search, and training-pair derivation.
//!
//! §IV chooses `(σ, δ, k)` by random search \[19\] over a validation set of
//! annotated pairs, maximising F-measure — grid search being too expensive.
//! This module also derives the annotated *path pairs* that train `M_ρ`
//! from tuple-level match annotations: for a confirmed tuple↔vertex match,
//! witness paths leading to (near-)identical values are matching path
//! pairs; paths leading to clearly different values are non-matching.

use crate::metrics::{confusion, Accuracy};
use crate::paramatch::Matcher;
use crate::params::{Params, Thresholds};
use her_embed::metric::LabeledPair;
use her_graph::{Graph, Interner, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random-search space over `(σ, δ, k)`.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    /// Range of σ.
    pub sigma: (f32, f32),
    /// Range of δ.
    pub delta: (f32, f32),
    /// Range of k (inclusive).
    pub k: (usize, usize),
    /// Number of random trials.
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SearchSpace {
    fn default() -> Self {
        Self {
            sigma: (0.6, 0.95),
            delta: (0.1, 3.0),
            k: (4, 24),
            trials: 48,
            seed: 0xbeef,
        }
    }
}

/// An annotated vertex pair: `(u ∈ G_D, v ∈ G, is_match)`.
pub type Annotation = (VertexId, VertexId, bool);

/// Evaluates `params` on annotated pairs, returning the confusion summary.
pub fn evaluate(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    pairs: &[Annotation],
) -> Accuracy {
    let mut m = Matcher::new(gd, g, interner, params);
    confusion(
        pairs
            .iter()
            .map(|&(u, v, truth)| (m.is_match(u, v), truth)),
    )
}

/// Random search for thresholds maximising F-measure on `validation`.
/// Returns the best thresholds and their F-measure. The incumbent
/// `params.thresholds` participates as trial zero, so the result never
/// regresses below the starting point.
pub fn random_search(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    validation: &[Annotation],
    space: &SearchSpace,
) -> (Thresholds, f64) {
    let mut rng = StdRng::seed_from_u64(space.seed);
    let mut best = params.thresholds;
    let mut best_f = evaluate(gd, g, interner, params, validation).f_measure();
    for _ in 0..space.trials {
        let t = Thresholds {
            sigma: rng.gen_range(space.sigma.0..=space.sigma.1),
            delta: rng.gen_range(space.delta.0..=space.delta.1),
            k: rng.gen_range(space.k.0..=space.k.1),
        };
        let trial = params.with_thresholds(t);
        let f = evaluate(gd, g, interner, &trial, validation).f_measure();
        if f > best_f {
            best_f = f;
            best = t;
        }
    }
    // Local refinement around the random-search winner (still a "limited
    // number of trials", §IV): nudge each threshold independently.
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 3 {
        improved = false;
        rounds += 1;
        let mut candidates = Vec::new();
        for ds in [-0.05f32, 0.05] {
            candidates.push(Thresholds {
                sigma: (best.sigma + ds).clamp(space.sigma.0, space.sigma.1),
                ..best
            });
        }
        for dd in [-0.3f32, -0.15, 0.15, 0.3] {
            candidates.push(Thresholds {
                delta: (best.delta + dd).max(space.delta.0),
                ..best
            });
        }
        for dk in [-4i64, 4] {
            let k = (best.k as i64 + dk).clamp(space.k.0 as i64, space.k.1 as i64) as usize;
            candidates.push(Thresholds { k, ..best });
        }
        for t in candidates {
            let trial = params.with_thresholds(t);
            let f = evaluate(gd, g, interner, &trial, validation).f_measure();
            if f > best_f {
                best_f = f;
                best = t;
                improved = true;
            }
        }
    }
    (best, best_f)
}

/// Derives annotated path pairs for `M_ρ` training from *positive* tuple
/// annotations: descendants of `u` and `v` whose labels agree strongly
/// (`h_v ≥ pos_cut`) yield matching path pairs; those that clearly disagree
/// (`h_v ≤ neg_cut`) yield non-matching ones.
pub fn derive_path_pairs(
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    params: &Params,
    positives: &[(VertexId, VertexId)],
    pos_cut: f32,
    neg_cut: f32,
) -> Vec<LabeledPair> {
    let mut m = Matcher::new(gd, g, interner, params);
    let mut out: Vec<LabeledPair> = Vec::new();
    let mut seen: her_graph::hash::FxHashSet<(Vec<her_graph::LabelId>, Vec<her_graph::LabelId>, bool)> =
        her_graph::hash::FxHashSet::default();
    for &(u, v) in positives {
        let su = m.select_d(u);
        let sv = m.select_g(v);
        for (ud, pu) in su.iter() {
            for (vd, pv) in sv.iter() {
                if pu.is_empty() || pv.is_empty() {
                    continue;
                }
                let sim = {
                    let (l1, l2) = (gd.label(*ud), g.label(*vd));
                    let i1 = interner.resolve(l1);
                    let i2 = interner.resolve(l2);
                    params.mv.similarity(i1, i2)
                };
                let label = if sim >= pos_cut {
                    true
                } else if sim <= neg_cut {
                    false
                } else {
                    continue; // ambiguous: skip
                };
                let key = (pu.edge_labels().to_vec(), pv.edge_labels().to_vec(), label);
                if !seen.insert(key) {
                    continue;
                }
                let s1: Vec<String> = pu
                    .edge_labels()
                    .iter()
                    .map(|&l| interner.resolve(l).to_owned())
                    .collect();
                let s2: Vec<String> = pv
                    .edge_labels()
                    .iter()
                    .map(|&l| interner.resolve(l).to_owned())
                    .collect();
                out.push((s1, s2, label));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;

    /// Twin item entities with one synonymous predicate.
    fn fixture() -> (Graph, Graph, Interner, Vec<Annotation>, Vec<(VertexId, VertexId)>) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let uc = b.add_vertex("white");
        let um = b.add_vertex("phylon foam");
        b.add_edge(u, uc, "color");
        b.add_edge(u, um, "material");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("item");
        let vc = b2.add_vertex("white");
        let vm = b2.add_vertex("phylon foam");
        b2.add_edge(v, vc, "hasColor");
        b2.add_edge(v, vm, "soleMadeBy");
        let decoy = b2.add_vertex("item");
        let dc = b2.add_vertex("red");
        let dm = b2.add_vertex("leather");
        b2.add_edge(decoy, dc, "hasColor");
        b2.add_edge(decoy, dm, "soleMadeBy");
        let (g, interner) = b2.build();
        let annotations = vec![(u, v, true), (u, decoy, false)];
        (gd, g, interner, annotations, vec![(u, v)])
    }

    #[test]
    fn evaluate_counts_correctly() {
        let (gd, g, i, ann, _) = fixture();
        let p = Params::untrained(64, 31).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let acc = evaluate(&gd, &g, &i, &p, &ann);
        assert_eq!(acc.total(), 2);
        assert_eq!(acc.tp, 1);
        assert_eq!(acc.tn, 1);
        assert_eq!(acc.f_measure(), 1.0);
    }

    #[test]
    fn random_search_never_regresses() {
        let (gd, g, i, ann, _) = fixture();
        let p = Params::untrained(64, 31).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let base = evaluate(&gd, &g, &i, &p, &ann).f_measure();
        let (best, best_f) = random_search(
            &gd,
            &g,
            &i,
            &p,
            &ann,
            &SearchSpace {
                trials: 8,
                ..Default::default()
            },
        );
        assert!(best_f >= base);
        assert!(best.k >= 1);
    }

    #[test]
    fn random_search_improves_bad_start() {
        let (gd, g, i, ann, _) = fixture();
        // δ=100 makes everything a non-match → F = 0.
        let p = Params::untrained(64, 31).with_thresholds(Thresholds::new(0.9, 100.0, 5));
        assert_eq!(evaluate(&gd, &g, &i, &p, &ann).f_measure(), 0.0);
        let (_, best_f) = random_search(&gd, &g, &i, &p, &ann, &SearchSpace::default());
        assert!(best_f > 0.9, "search should find working thresholds, got {best_f}");
    }

    #[test]
    fn derived_pairs_label_by_value_similarity() {
        let (gd, g, i, _, pos) = fixture();
        let p = Params::untrained(64, 31).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let pairs = derive_path_pairs(&gd, &g, &i, &p, &pos, 0.85, 0.3);
        assert!(!pairs.is_empty());
        // (color, hasColor) should be a positive pair (white == white).
        assert!(pairs
            .iter()
            .any(|(a, b, m)| *m && a == &vec!["color".to_owned()] && b == &vec!["hasColor".to_owned()]));
        // (color, soleMadeBy) should be negative (white vs phylon foam).
        assert!(pairs
            .iter()
            .any(|(a, b, m)| !*m && a == &vec!["color".to_owned()] && b == &vec!["soleMadeBy".to_owned()]));
        // No duplicates.
        let mut dedup = pairs.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), pairs.len());
    }
}
