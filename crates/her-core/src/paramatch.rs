//! Algorithm `ParaMatch` (Fig. 4): quadratic-time parametric simulation.
//!
//! Given `(u, v)` with `u ∈ G_D` and `v ∈ G`, decides whether the pair is a
//! match under parameters `(h_v, h_ρ, h_r, σ, δ, k)`. The implementation
//! follows the paper's three stages:
//!
//! 1. **Initial stage** — reject on `h_v < σ`; accept leaves; install an
//!    *optimistic* `cache[u,v] = [true, ∅]` entry (the coinductive
//!    assumption that lets interdependent candidates — e.g. pairs on a
//!    cycle — be resolved without infinite recursion); select top-k
//!    descendants through `ecache`; build per-descendant candidate lists
//!    sorted by descending `h_ρ`.
//! 2. **Matching stage** — maintain `MaxSco`, the best achievable aggregate
//!    score; terminate early when it sinks below `δ`; otherwise greedily
//!    grow a partial injective lineage set `W`, recursing on unresolved
//!    candidate pairs, until `Σ h_ρ ≥ δ`.
//! 3. **Cleanup stage** — when `(u, v)` is confirmed invalid, flip its cache
//!    entry to `[false, ∅]` and re-run `ParaMatch` on every recorded pair
//!    whose lineage set contains `(u, v)`, so stale optimistic conclusions
//!    are repaired (appendix C).

use crate::params::Params;
use crate::scores::ScoreCache;
use crate::shared_scores::SharedScores;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, LabelId, Path, VertexId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc as Rc;
use std::time::{Duration, Instant};

/// A candidate pair `(u, v)` with `u ∈ G_D`, `v ∈ G`.
pub type PairKey = (VertexId, VertexId);

/// Why a budgeted run stopped before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The recursive-call budget ([`Budget::max_calls`]) ran out.
    Calls,
    /// The wall-clock deadline ([`Budget::deadline`]) passed.
    Deadline,
    /// The verdict cache hit its capacity ([`Budget::max_cache_entries`]).
    CacheCapacity,
    /// The shared [`CancelToken`] was triggered.
    Cancelled,
}

impl std::fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExhaustReason::Calls => write!(f, "recursive-call budget exhausted"),
            ExhaustReason::Deadline => write!(f, "wall-clock deadline passed"),
            ExhaustReason::CacheCapacity => write!(f, "verdict-cache capacity reached"),
            ExhaustReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Tri-state verdict: distinguishes "provably not a match" from "the run
/// was cut short by its [`Budget`] or [`CancelToken`]".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    Matched,
    Unmatched,
    Exhausted(ExhaustReason),
}

impl Outcome {
    pub fn is_matched(&self) -> bool {
        matches!(self, Outcome::Matched)
    }

    /// True when the verdict is definitive (not an exhaustion).
    pub fn is_decided(&self) -> bool {
        !matches!(self, Outcome::Exhausted(_))
    }
}

/// Resource limits for matcher runs. The default is unlimited; every limit
/// is opt-in and checked at each `ParaMatch` invocation, so an exhausted
/// run stops within one recursive call of the limit.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    /// Maximum number of recursive `ParaMatch` invocations.
    pub max_calls: Option<u64>,
    /// Absolute wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum number of verdict-cache entries.
    pub max_cache_entries: Option<usize>,
}

impl Budget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    pub fn with_max_calls(mut self, n: u64) -> Self {
        self.max_calls = Some(n);
        self
    }

    /// Sets the deadline to `now + d`.
    pub fn with_deadline_in(self, d: Duration) -> Self {
        self.with_deadline(Instant::now() + d)
    }

    pub fn with_deadline(mut self, at: Instant) -> Self {
        self.deadline = Some(at);
        self
    }

    pub fn with_max_cache_entries(mut self, n: usize) -> Self {
        self.max_cache_entries = Some(n);
        self
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_calls.is_none() && self.deadline.is_none() && self.max_cache_entries.is_none()
    }
}

/// Shared cooperative cancellation flag. Cloning yields another handle to
/// the same flag, so one token can stop a whole fleet of matchers.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Rc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every matcher sharing this token observes it
    /// at its next `ParaMatch` invocation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Counters exposed for the efficiency experiments and ablations.
///
/// Every field is monotonically non-decreasing over a matcher's
/// lifetime (nothing resets them, not even [`Matcher::invalidate`] or
/// [`Matcher::renew_budget`]). [`Matcher::stats`] returns a *detached
/// point-in-time snapshot* — a `Copy` of the counters at call time
/// that does not track later mutation; diff two snapshots with
/// [`MatchStats::delta_since`] to attribute work to a phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Recursive `ParaMatch` invocations.
    pub calls: u64,
    /// Candidate resolutions served from `cache`.
    pub cache_hits: u64,
    /// Early terminations via the `MaxSco` bound.
    pub early_terminations: u64,
    /// Cleanup-stage re-evaluations.
    pub cleanups: u64,
    /// Top-k selections served from `ecache`.
    pub ecache_hits: u64,
}

impl MatchStats {
    /// Field-wise `self - earlier`, saturating at zero — the work done
    /// between the `earlier` snapshot and this one. (Saturation only
    /// matters if snapshots from different matchers are mixed up;
    /// within one matcher counters are monotone.)
    pub fn delta_since(&self, earlier: &MatchStats) -> MatchStats {
        MatchStats {
            calls: self.calls.saturating_sub(earlier.calls),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            early_terminations: self
                .early_terminations
                .saturating_sub(earlier.early_terminations),
            cleanups: self.cleanups.saturating_sub(earlier.cleanups),
            ecache_hits: self.ecache_hits.saturating_sub(earlier.ecache_hits),
        }
    }

    /// `cache_hits / (cache_hits + calls)` — the fraction of candidate
    /// resolutions served without recursing. 0 when nothing ran.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.calls;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Resolved instrument handles (one atomic op per bump on the hot
/// path). Built once in [`Matcher::with_options`] when the options
/// carry an [`her_obs::Obs`]; `None` otherwise, so uninstrumented
/// matchers pay a single branch per site.
struct Probes {
    /// Request context the matcher was built for; tags every trace
    /// event the probes emit so per-request breakdowns attribute
    /// budget exhaustion to the originating request.
    ctx: her_obs::ReqCtx,
    calls: Rc<her_obs::Counter>,
    cache_hits: Rc<her_obs::Counter>,
    ecache_hits: Rc<her_obs::Counter>,
    early_terminations: Rc<her_obs::Counter>,
    cleanups: Rc<her_obs::Counter>,
    exhausted: Rc<her_obs::Counter>,
    cache_entries: Rc<her_obs::Gauge>,
    lineage_size: Rc<her_obs::Histogram>,
    candidate_list_len: Rc<her_obs::Histogram>,
}

impl Probes {
    fn resolve(obs: &her_obs::Obs, ctx: her_obs::ReqCtx) -> Self {
        let r = &obs.registry;
        Probes {
            ctx,
            calls: r.counter("paramatch.calls"),
            cache_hits: r.counter("paramatch.cache_hits"),
            ecache_hits: r.counter("paramatch.ecache_hits"),
            early_terminations: r.counter("paramatch.early_terminations"),
            cleanups: r.counter("paramatch.cleanups"),
            exhausted: r.counter("paramatch.exhausted"),
            cache_entries: r.gauge("paramatch.cache_entries"),
            lineage_size: r.histogram("paramatch.lineage_size"),
            candidate_list_len: r.histogram("paramatch.candidate_list_len"),
        }
    }
}

/// Feature toggles for the ablation benchmarks (DESIGN.md §6) plus
/// resource governance. The toggles preserve correctness and only change
/// performance; the budget/cancellation fields bound how much work a run
/// may do before reporting [`Outcome::Exhausted`].
#[derive(Clone, Debug)]
pub struct MatcherOptions {
    /// Use the `MaxSco` early-termination bound (Fig. 4 lines 12-14, 25-27).
    pub early_termination: bool,
    /// Memoise top-k descendant selections in `ecache` (lines 6-10).
    pub use_ecache: bool,
    /// Sort candidate lists by descending `h_ρ` (line 11).
    pub sorted_lists: bool,
    /// Resource limits (unlimited by default).
    pub budget: Budget,
    /// Shared cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Observability handle: when set, the matcher mirrors its
    /// [`MatchStats`] counters into the shared registry under the
    /// `paramatch.*` namespace and emits trace events for budget
    /// exhaustion. `None` (the default) costs one branch per site.
    pub obs: Option<her_obs::Obs>,
    /// Process-wide score memo ([`SharedScores`]): when set, `h_v`/`h_ρ`
    /// read through the shared sharded tables instead of a private
    /// [`ScoreCache`], so all matchers holding the same handle embed
    /// each distinct label once. Scores are pure memoised functions, so
    /// results are bit-identical either way; the matcher tracks the
    /// handle's invalidation generation and drops its derived caches
    /// (verdicts, selections) when fine-tuning bumps it.
    pub shared_scores: Option<SharedScores>,
    /// Request-scoped trace context ([`her_obs::ReqCtx`]): minted at
    /// the serving path's admission gate and threaded here so the
    /// matcher's spans (`vpair`/`apair`) and exhaustion events carry
    /// the originating request's trace id. Defaults to the ambient
    /// (request-free) context.
    pub ctx: her_obs::ReqCtx,
}

impl Default for MatcherOptions {
    fn default() -> Self {
        Self {
            early_termination: true,
            use_ecache: true,
            sorted_lists: true,
            budget: Budget::default(),
            cancel: CancelToken::new(),
            obs: None,
            shared_scores: None,
            ctx: her_obs::ReqCtx::NONE,
        }
    }
}

#[derive(Clone, Debug)]
struct CacheEntry {
    valid: bool,
    /// The lineage set `W` witnessing validity (empty for leaves/invalid).
    deps: Vec<PairKey>,
}

/// One candidate `v'` for a fixed descendant `u'`.
#[derive(Clone, Debug)]
struct Cand {
    v: VertexId,
    hrho: f32,
}

/// Where this matcher's score memos live: a private per-matcher
/// [`ScoreCache`] (the default) or a process-wide [`SharedScores`]
/// handle. Both memoise the same pure functions, so a matcher behaves
/// identically under either — only the amount of re-embedding differs.
enum Scores {
    Private(ScoreCache),
    Shared(SharedScores),
}

/// Stateful matcher over a fixed `(G_D, G)` pair. Reuse one matcher across
/// many queries so `cache` and `ecache` amortise (this is what VPair and
/// APair rely on).
pub struct Matcher<'a> {
    gd: &'a Graph,
    g: &'a Graph,
    interner: &'a Interner,
    params: &'a Params,
    options: MatcherOptions,
    scores: Scores,
    /// The [`SharedScores`] generation this matcher last synced with
    /// (always 0 with a private cache).
    seen_generation: u64,
    cache: FxHashMap<PairKey, CacheEntry>,
    /// Reverse dependencies: pair → recorded pairs whose `W` contains it.
    rdeps: FxHashMap<PairKey, Vec<PairKey>>,
    /// `ecache` for `G_D` and `G` respectively.
    sel_d: FxHashMap<VertexId, Rc<Vec<(VertexId, Path)>>>,
    sel_g: FxHashMap<VertexId, Rc<Vec<(VertexId, Path)>>>,
    stats: MatchStats,
    /// Border vertices of `G` (parallel fragments, §VI-B): pairs reaching
    /// them are optimistically assumed valid, PPSim-style.
    border: Option<FxHashSet<VertexId>>,
    /// Border pairs assumed valid since the last drain.
    new_assumptions: Vec<PairKey>,
    /// Sticky exhaustion state: once a budget limit trips, every further
    /// query short-circuits to `Outcome::Exhausted` until the budget is
    /// renewed via [`Matcher::renew_budget`].
    exhausted: Option<ExhaustReason>,
    /// Resolved metric handles mirroring [`MatchStats`] (None when
    /// `options.obs` is unset).
    probes: Option<Probes>,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher over `G_D` and `G` sharing `interner`.
    pub fn new(gd: &'a Graph, g: &'a Graph, interner: &'a Interner, params: &'a Params) -> Self {
        Self::with_options(gd, g, interner, params, MatcherOptions::default())
    }

    /// Creates a matcher with explicit feature toggles (ablations).
    pub fn with_options(
        gd: &'a Graph,
        g: &'a Graph,
        interner: &'a Interner,
        params: &'a Params,
        options: MatcherOptions,
    ) -> Self {
        let probes = options
            .obs
            .as_ref()
            .map(|obs| Probes::resolve(obs, options.ctx));
        let (scores, seen_generation) = match &options.shared_scores {
            Some(shared) => (Scores::Shared(shared.clone()), shared.generation()),
            None => {
                let mut c = ScoreCache::new();
                if let Some(obs) = &options.obs {
                    // Mirror private embeds into the same counter the
                    // shared layer uses, so ablations compare directly.
                    c.set_embed_counter(obs.registry.counter("scores.embed_calls"));
                }
                (Scores::Private(c), 0)
            }
        };
        Self {
            gd,
            g,
            interner,
            params,
            options,
            scores,
            seen_generation,
            cache: FxHashMap::default(),
            rdeps: FxHashMap::default(),
            sel_d: FxHashMap::default(),
            sel_g: FxHashMap::default(),
            stats: MatchStats::default(),
            border: None,
            new_assumptions: Vec::new(),
            exhausted: None,
            probes,
        }
    }

    /// Marks `border` vertices of `G` as data-absent (§VI-B): any non-leaf
    /// pair reaching one is optimistically assumed a match, recorded as an
    /// assumption for the BSP engine to verify at the owner.
    pub fn with_border(mut self, border: FxHashSet<VertexId>) -> Self {
        self.border = Some(border);
        self
    }

    /// Drains border pairs assumed valid since the last call.
    pub fn take_new_assumptions(&mut self) -> Vec<PairKey> {
        std::mem::take(&mut self.new_assumptions)
    }

    /// Worker recovery (§VI-B): adopts `vs` into this matcher's fragment.
    /// The vertices leave the border set, and every cached pair resolved
    /// against them is forgotten (together with anything whose lineage
    /// reached it), so the next evaluation verifies them authoritatively on
    /// local data instead of assuming. Re-verification is safe because
    /// invalidation is monotone: recomputing can only confirm an assumption
    /// or flip it `true → false`, both of which the IncPSim cleanup already
    /// handles, so the fixpoint is unchanged.
    pub fn adopt_border(&mut self, vs: &FxHashSet<VertexId>) {
        if let Some(border) = &mut self.border {
            for v in vs {
                border.remove(v);
            }
        }
        let stale: Vec<PairKey> = self
            .cache
            .keys()
            .filter(|k| vs.contains(&k.1))
            .copied()
            .collect();
        for p in stale {
            self.purge(p);
        }
        // Pending assumptions on adopted vertices would otherwise turn into
        // requests addressed to ourselves.
        self.new_assumptions.retain(|p| !vs.contains(&p.1));
    }

    /// Pre-seeds `ecache` with top-k selections computed elsewhere — the
    /// parallel engine precomputes `h_r` globally (a preprocessing pass,
    /// §IV "Complexity") so all workers rank descendants identically
    /// regardless of fragment boundaries.
    pub fn with_selections(
        mut self,
        sel_d: FxHashMap<VertexId, Rc<Vec<(VertexId, Path)>>>,
        sel_g: FxHashMap<VertexId, Rc<Vec<(VertexId, Path)>>>,
    ) -> Self {
        self.sel_d = sel_d;
        self.sel_g = sel_g;
        self
    }

    /// Applies an externally-deduced invalidation (IncPSim, §VI-B): flips
    /// `(u, v)` to false and re-checks every recorded dependent. If the
    /// budget runs out mid-repair the unfinished dependents are *purged*
    /// (forgotten, not mis-cached) and the exhaustion is recorded in
    /// [`Matcher::exhausted`].
    pub fn apply_invalidation(&mut self, u: VertexId, v: VertexId) {
        self.set_verdict(u, v, false, Vec::new());
        let _ = self.cleanup(u, v);
    }

    /// The canonical graph `G_D`.
    pub fn gd(&self) -> &Graph {
        self.gd
    }

    /// The data graph `G`.
    pub fn g(&self) -> &Graph {
        self.g
    }

    /// The shared interner.
    pub fn interner(&self) -> &Interner {
        self.interner
    }

    /// The parameters in force.
    pub fn params(&self) -> &Params {
        self.params
    }

    /// Accumulated counters, as a *detached point-in-time snapshot*:
    /// the returned `Copy` reflects the matcher's state at the moment
    /// of the call and never changes afterwards, while the matcher's
    /// own counters continue to grow monotonically. Take snapshots
    /// before and after a phase and diff with
    /// [`MatchStats::delta_since`] to measure that phase alone.
    #[must_use = "stats() returns a detached snapshot, not a live view"]
    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    /// The request-scoped trace context this matcher runs under
    /// (ambient [`her_obs::ReqCtx::NONE`] outside the serving path).
    pub fn ctx(&self) -> her_obs::ReqCtx {
        self.options.ctx
    }

    /// The observability handle this matcher reports into, if any.
    pub fn obs(&self) -> Option<&her_obs::Obs> {
        self.options.obs.as_ref()
    }

    /// The budget limit that tripped, if any. Sticky until
    /// [`Matcher::renew_budget`] is called; while set, every query returns
    /// [`Outcome::Exhausted`] without doing further work, and cached
    /// verdicts resolved *before* exhaustion remain available (partial
    /// results are surfaced, not discarded).
    pub fn exhausted(&self) -> Option<ExhaustReason> {
        self.exhausted
    }

    /// The [`SharedScores`] generation this matcher last synced with
    /// (always 0 when scoring through a private cache). Introspection for
    /// the invalidation protocol.
    pub fn scores_generation(&self) -> u64 {
        self.seen_generation
    }

    /// Installs a fresh budget and clears the sticky exhaustion state so
    /// the matcher can resume. Already-resolved verdicts are kept.
    pub fn renew_budget(&mut self, budget: Budget) {
        self.options.budget = budget;
        self.exhausted = None;
    }

    /// Re-arms a pooled matcher for a new request: fresh budget, fresh
    /// cancellation token, the new request's trace context (threaded
    /// into the probes so exhaustion events attribute correctly), and
    /// the sticky exhaustion state cleared. Verdict cache, lineage
    /// index and selections survive — that is the point of pooling; a
    /// stale [`SharedScores`] generation is reconciled lazily at the
    /// next query entry point as usual.
    pub fn rearm(&mut self, budget: Budget, cancel: CancelToken, ctx: her_obs::ReqCtx) {
        self.options.budget = budget;
        self.options.cancel = cancel;
        self.options.ctx = ctx;
        if let Some(p) = &mut self.probes {
            p.ctx = ctx;
        }
        self.exhausted = None;
    }

    /// Runs `f` against the resolved probes when observability is on.
    #[inline]
    fn probe(&self, f: impl FnOnce(&Probes)) {
        if let Some(p) = &self.probes {
            f(p);
        }
    }

    /// `h_v` on interned labels via whichever memo this matcher uses.
    fn score_hv(&mut self, l1: LabelId, l2: LabelId) -> f32 {
        let (params, interner) = (self.params, self.interner);
        match &mut self.scores {
            Scores::Private(c) => c.hv(params, interner, l1, l2),
            Scores::Shared(s) => s.hv(params, interner, l1, l2),
        }
    }

    /// `h_ρ` on two paths via whichever memo this matcher uses.
    fn score_hrho(&mut self, rho1: &Path, rho2: &Path) -> f32 {
        let (params, interner) = (self.params, self.interner);
        match &mut self.scores {
            Scores::Private(c) => c.hrho(params, interner, rho1, rho2),
            Scores::Shared(s) => s.hrho(params, interner, rho1, rho2),
        }
    }

    /// When scoring through a [`SharedScores`] handle, reconciles with
    /// its invalidation generation: if fine-tuning elsewhere bumped it,
    /// this matcher's derived caches (verdicts, lineage index,
    /// selections) were computed against stale scores and are dropped.
    /// Called at the non-recursive query entry points only — never
    /// mid-recursion, where in-flight optimistic entries must survive.
    fn sync_shared_generation(&mut self) {
        if let Scores::Shared(s) = &self.scores {
            let gen = s.generation();
            if gen != self.seen_generation {
                self.seen_generation = gen;
                self.cache.clear();
                self.rdeps.clear();
                self.sel_d.clear();
                self.sel_g.clear();
            }
        }
    }

    /// `h_v` between a `G_D` vertex and a `G` vertex (used by candidate
    /// generation in VPair/APair).
    pub fn hv_pair(&mut self, u: VertexId, v: VertexId) -> f32 {
        let (l1, l2) = (self.gd.label(u), self.g.label(v));
        self.score_hv(l1, l2)
    }

    /// Module SPair: does `(u, v)` match by parametric simulation?
    ///
    /// Serves previously-resolved pairs from `cache`. A budget-exhausted
    /// run conservatively reports `false`; use [`Matcher::try_match`] when
    /// the caller must distinguish `Unmatched` from `Exhausted`.
    pub fn is_match(&mut self, u: VertexId, v: VertexId) -> bool {
        self.try_match(u, v).is_matched()
    }

    /// As [`Matcher::is_match`], but reporting the tri-state [`Outcome`]:
    /// cached verdicts (even ones resolved before an exhaustion) are served
    /// as `Matched`/`Unmatched`; unresolved pairs after exhaustion report
    /// `Exhausted` without doing further work.
    pub fn try_match(&mut self, u: VertexId, v: VertexId) -> Outcome {
        self.sync_shared_generation();
        if let Some(e) = self.cache.get(&(u, v)) {
            self.stats.cache_hits += 1;
            let valid = e.valid;
            self.probe(|p| p.cache_hits.inc());
            return if valid {
                Outcome::Matched
            } else {
                Outcome::Unmatched
            };
        }
        match self.para_match(u, v) {
            Ok(true) => Outcome::Matched,
            Ok(false) => Outcome::Unmatched,
            Err(reason) => Outcome::Exhausted(reason),
        }
    }

    /// The cached verdict for a pair, if already resolved.
    pub fn cached(&self, u: VertexId, v: VertexId) -> Option<bool> {
        self.cache.get(&(u, v)).map(|e| e.valid)
    }

    /// The witness `Π(u, v)`: the pair itself plus the transitive closure of
    /// recorded lineage sets. `None` if `(u, v)` is not a cached match.
    pub fn witness(&self, u: VertexId, v: VertexId) -> Option<Vec<PairKey>> {
        match self.cache.get(&(u, v)) {
            Some(e) if e.valid => {}
            _ => return None,
        }
        let mut seen: FxHashSet<PairKey> = FxHashSet::default();
        let mut queue = vec![(u, v)];
        let mut out = Vec::new();
        while let Some(p) = queue.pop() {
            if !seen.insert(p) {
                continue;
            }
            out.push(p);
            if let Some(e) = self.cache.get(&p) {
                queue.extend(e.deps.iter().copied());
            }
        }
        out.sort();
        Some(out)
    }

    /// The recorded lineage set `S_(u,v)` (direct dependencies only).
    pub fn lineage(&self, u: VertexId, v: VertexId) -> Option<&[PairKey]> {
        self.cache
            .get(&(u, v))
            .filter(|e| e.valid)
            .map(|e| e.deps.as_slice())
    }

    /// Top-k selection for a `G_D` vertex (exposed for schema matching).
    pub fn select_d(&mut self, u: VertexId) -> Rc<Vec<(VertexId, Path)>> {
        if self.options.use_ecache {
            if let Some(s) = self.sel_d.get(&u) {
                self.stats.ecache_hits += 1;
                let s = Rc::clone(s);
                self.probe(|p| p.ecache_hits.inc());
                return s;
            }
        }
        let s = Rc::new(
            self.params
                .ranker
                .select(self.gd, u, self.params.thresholds.k),
        );
        if self.options.use_ecache {
            self.sel_d.insert(u, Rc::clone(&s));
        }
        s
    }

    /// Top-k selection for a `G` vertex (exposed for schema matching).
    pub fn select_g(&mut self, v: VertexId) -> Rc<Vec<(VertexId, Path)>> {
        if self.options.use_ecache {
            if let Some(s) = self.sel_g.get(&v) {
                self.stats.ecache_hits += 1;
                let s = Rc::clone(s);
                self.probe(|p| p.ecache_hits.inc());
                return s;
            }
        }
        let s = Rc::new(
            self.params
                .ranker
                .select(self.g, v, self.params.thresholds.k),
        );
        if self.options.use_ecache {
            self.sel_g.insert(v, Rc::clone(&s));
        }
        s
    }

    /// `M_ρ` on two raw edge-label sequences (memoised). Used by schema
    /// matching to score path prefixes (appendix D).
    pub fn mrho_seq(&mut self, seq1: &[her_graph::LabelId], seq2: &[her_graph::LabelId]) -> f32 {
        self.sync_shared_generation();
        let (params, interner) = (self.params, self.interner);
        match &mut self.scores {
            Scores::Private(c) => c.mrho(params, interner, seq1, seq2),
            Scores::Shared(s) => s.mrho(params, interner, seq1, seq2),
        }
    }

    /// Captures the durable state of this matcher — the verdict cache
    /// with lineage sets, border/assumption bookkeeping, exhaustion flag
    /// and counters — as a serializable
    /// [`MatcherCheckpoint`](crate::checkpoint::MatcherCheckpoint).
    ///
    /// Call only at quiescent points (no `try_match` in flight): an
    /// in-flight run holds optimistic cache entries that must not be
    /// persisted as verdicts. Derived memos (`ecache`, score cache) are
    /// not captured; they re-fill on demand after
    /// [`restore`](Matcher::restore).
    pub fn checkpoint(&self) -> crate::checkpoint::MatcherCheckpoint {
        let mut entries: Vec<crate::checkpoint::CheckpointEntry> = self
            .cache
            .iter()
            .map(|(&pair, e)| (pair, e.valid, e.deps.clone()))
            .collect();
        entries.sort_by_key(|(pair, _, _)| *pair);
        let border = self.border.as_ref().map(|b| {
            let mut vs: Vec<VertexId> = b.iter().copied().collect();
            vs.sort_unstable();
            vs
        });
        let mut new_assumptions = self.new_assumptions.clone();
        new_assumptions.sort_unstable();
        crate::checkpoint::MatcherCheckpoint {
            entries,
            border,
            new_assumptions,
            exhausted: self.exhausted,
            stats: self.stats,
        }
    }

    /// Restores the state captured by [`checkpoint`](Matcher::checkpoint)
    /// into this matcher (which must be built over the same `(G_D, G)`
    /// pair and parameters). The reverse-dependency index is rebuilt from
    /// the recorded lineage sets; derived memos are left to re-fill.
    pub fn restore(&mut self, ck: &crate::checkpoint::MatcherCheckpoint) {
        self.cache.clear();
        self.rdeps.clear();
        for (pair, valid, deps) in &ck.entries {
            for &d in deps {
                self.rdeps.entry(d).or_default().push(*pair);
            }
            self.cache.insert(
                *pair,
                CacheEntry {
                    valid: *valid,
                    deps: deps.clone(),
                },
            );
        }
        self.border = ck
            .border
            .as_ref()
            .map(|b| b.iter().copied().collect::<FxHashSet<VertexId>>());
        self.new_assumptions = ck.new_assumptions.clone();
        self.exhausted = ck.exhausted;
        self.stats = ck.stats;
        // Score memos are derived state and never checkpointed: a restored
        // matcher adopts the shared layer's *current* generation, reading
        // whatever (possibly post-fine-tuning) scores it now holds.
        if let Scores::Shared(s) = &self.scores {
            self.seen_generation = s.generation();
        }
        let entries = self.cache.len();
        self.probe(|p| p.cache_entries.set(entries as f64));
    }

    /// Invalidates memoised scores and verdicts — required after model
    /// fine-tuning changes the parameter functions. With a
    /// [`SharedScores`] handle this also bumps the shared generation, so
    /// every other matcher on the handle re-syncs at its next query.
    pub fn invalidate(&mut self) {
        match &mut self.scores {
            Scores::Private(c) => c.invalidate(),
            Scores::Shared(s) => {
                s.invalidate();
                self.seen_generation = s.generation();
            }
        }
        self.cache.clear();
        self.rdeps.clear();
        self.sel_d.clear();
        self.sel_g.clear();
    }

    // ------------------------------------------------------------------
    // The algorithm of Fig. 4.
    // ------------------------------------------------------------------

    /// Checks budget limits and the cancellation token. Once a limit trips
    /// the exhaustion is sticky, so the whole recursion unwinds promptly
    /// and later queries short-circuit.
    fn check_budget(&mut self) -> Result<(), ExhaustReason> {
        if let Some(reason) = self.exhausted {
            return Err(reason);
        }
        let budget = self.options.budget;
        let reason = if self.options.cancel.is_cancelled() {
            Some(ExhaustReason::Cancelled)
        } else if budget.max_calls.is_some_and(|max| self.stats.calls >= max) {
            Some(ExhaustReason::Calls)
        } else if budget.deadline.is_some_and(|dl| Instant::now() >= dl) {
            Some(ExhaustReason::Deadline)
        } else if budget
            .max_cache_entries
            .is_some_and(|cap| self.cache.len() >= cap)
        {
            Some(ExhaustReason::CacheCapacity)
        } else {
            None
        };
        match reason {
            Some(r) => {
                self.exhausted = Some(r);
                self.probe(|p| p.exhausted.inc());
                if let Some(obs) = &self.options.obs {
                    let ctx = self.probes.as_ref().map_or(self.options.ctx, |p| p.ctx);
                    obs.tracer
                        .event_ctx("paramatch.exhausted", &format!("{r}"), ctx);
                }
                Err(r)
            }
            None => Ok(()),
        }
    }

    /// Removes a pair's verdict and transitively forgets every cached match
    /// whose lineage reaches it. Used when exhaustion interrupts a run:
    /// in-flight optimistic entries (and anything that came to depend on
    /// them) must not survive as unproven `Matched` verdicts, so that the
    /// *partial* results left behind are still sound.
    fn purge(&mut self, origin: PairKey) {
        let mut queue = vec![origin];
        while let Some(p) = queue.pop() {
            self.cache.remove(&p);
            if let Some(dependents) = self.rdeps.remove(&p) {
                for d in dependents {
                    let depends = self
                        .cache
                        .get(&d)
                        .map(|e| e.valid && e.deps.contains(&p))
                        .unwrap_or(false);
                    if depends {
                        queue.push(d);
                    }
                }
            }
        }
    }

    fn para_match(&mut self, u: VertexId, v: VertexId) -> Result<bool, ExhaustReason> {
        self.check_budget()?;
        self.stats.calls += 1;
        self.probe(|p| p.calls.inc());
        let Params { thresholds, .. } = self.params;
        let sigma = thresholds.sigma;

        // --- Initial stage (lines 1-11) ---
        let hv = self.hv_pair(u, v);
        if hv < sigma {
            self.set_verdict(u, v, false, Vec::new());
            return Ok(false);
        }
        if self.gd.is_leaf(u) {
            self.set_verdict(u, v, true, Vec::new());
            return Ok(true);
        }
        // Parallel fragments: v's out-edges live on another worker — assume
        // the pair valid (PPSim) and let the owner verify it (§VI-B).
        if let Some(border) = &self.border {
            if border.contains(&v) {
                self.set_verdict(u, v, true, Vec::new());
                self.new_assumptions.push((u, v));
                return Ok(true);
            }
        }
        // Optimistic assumption enabling cyclic interdependence (appendix C).
        self.cache.insert(
            (u, v),
            CacheEntry {
                valid: true,
                deps: Vec::new(),
            },
        );

        match self.matching_stage(u, v) {
            Ok(verdict) => Ok(verdict),
            Err(reason) => {
                // Graceful unwind: retract the in-flight optimistic entry
                // (and any verdict that leaned on it) instead of caching an
                // unproven `true`.
                self.purge((u, v));
                Err(reason)
            }
        }
    }

    /// Matching + cleanup stages (Fig. 4 lines 12-32), separated from
    /// [`Matcher::para_match`] so a budget exhaustion anywhere below can be
    /// intercepted to retract the optimistic cache entry of `(u, v)`.
    fn matching_stage(&mut self, u: VertexId, v: VertexId) -> Result<bool, ExhaustReason> {
        let Params { thresholds, .. } = self.params;
        let (sigma, delta) = (thresholds.sigma, thresholds.delta);

        let su = self.select_d(u);
        let sv = self.select_g(v);

        // Line 11: candidate lists per selected descendant u', sorted by
        // descending h_ρ of the witness paths.
        let mut lists: Vec<Vec<Cand>> = Vec::with_capacity(su.len());
        for (_, pu) in su.iter() {
            let mut l: Vec<Cand> = Vec::new();
            for (vp, pv) in sv.iter() {
                let lu = self.gd.label(pu.end());
                let lv = self.g.label(*vp);
                if self.score_hv(lu, lv) >= sigma {
                    let hrho = self.score_hrho(pu, pv);
                    l.push(Cand { v: *vp, hrho });
                }
            }
            if self.options.sorted_lists {
                l.sort_by(|a, b| b.hrho.total_cmp(&a.hrho).then_with(|| a.v.cmp(&b.v)));
            }
            self.probe(|p| p.candidate_list_len.observe(l.len() as u64));
            lists.push(l);
        }

        // --- Matching stage (lines 12-27) ---
        // Line 12: the best achievable aggregate score.
        let mut max_sco: f32 = lists
            .iter()
            .map(|l| l.first().map(|c| c.hrho).unwrap_or(0.0))
            .sum();
        if self.options.early_termination && max_sco < delta {
            self.stats.early_terminations += 1;
            self.probe(|p| p.early_terminations.inc());
            self.set_verdict(u, v, false, Vec::new());
            return Ok(false);
        }

        let mut sum = 0.0f32;
        let mut w: Vec<(PairKey, f32)> = Vec::new();
        let mut used: FxHashSet<VertexId> = FxHashSet::default();

        'outer: for (ui, l) in lists.iter().enumerate() {
            let u_desc = su[ui].0;
            for (ci, cand) in l.iter().enumerate() {
                // Partial injective mapping: each v' matches at most one u'.
                let skip = used.contains(&cand.v);
                let matched = if skip {
                    false
                } else {
                    let key = (u_desc, cand.v);
                    if let Some(e) = self.cache.get(&key) {
                        self.stats.cache_hits += 1;
                        let valid = e.valid;
                        self.probe(|p| p.cache_hits.inc());
                        valid
                    } else {
                        self.para_match(u_desc, cand.v)?
                    }
                };
                if matched {
                    sum += cand.hrho;
                    w.push(((u_desc, cand.v), cand.hrho));
                    used.insert(cand.v);
                    if sum >= delta {
                        // Recursion below us may have invalidated an earlier
                        // optimistic dependency; prune stale entries before
                        // concluding (keeps the witness sound).
                        self.prune_stale(&mut w, &mut used, &mut sum);
                        if sum >= delta {
                            let deps: Vec<PairKey> = w.iter().map(|(p, _)| *p).collect();
                            self.set_verdict(u, v, true, deps);
                            return Ok(true);
                        }
                    }
                    break; // next u'
                }
                // Line 25: replace this candidate's contribution by the next
                // still-available one.
                if self.options.early_termination {
                    let next = l[ci + 1..]
                        .iter()
                        .find(|c| !used.contains(&c.v))
                        .map(|c| c.hrho)
                        .unwrap_or(0.0);
                    max_sco = max_sco - cand.hrho + next;
                    if max_sco < delta {
                        self.stats.early_terminations += 1;
                        self.probe(|p| p.early_terminations.inc());
                        break 'outer;
                    }
                }
            }
        }

        // --- Cleanup stage (lines 28-32) ---
        self.set_verdict(u, v, false, Vec::new());
        self.cleanup(u, v)?;
        Ok(false)
    }

    /// Removes pairs from `w` whose cache verdict has flipped to false.
    fn prune_stale(
        &self,
        w: &mut Vec<(PairKey, f32)>,
        used: &mut FxHashSet<VertexId>,
        sum: &mut f32,
    ) {
        w.retain(|(p, h)| {
            let ok = self.cache.get(p).map(|e| e.valid).unwrap_or(false);
            if !ok {
                *sum -= h;
                used.remove(&p.1);
            }
            ok
        });
    }

    /// Installs a verdict, maintaining the reverse-dependency index.
    fn set_verdict(&mut self, u: VertexId, v: VertexId, valid: bool, deps: Vec<PairKey>) {
        // Unregister any previous deps of this pair.
        if let Some(old) = self.cache.get(&(u, v)) {
            let old_deps = old.deps.clone();
            for d in old_deps {
                if let Some(r) = self.rdeps.get_mut(&d) {
                    r.retain(|p| *p != (u, v));
                }
            }
        }
        for d in &deps {
            self.rdeps.entry(*d).or_default().push((u, v));
        }
        if valid && !deps.is_empty() {
            self.probe(|p| p.lineage_size.observe(deps.len() as u64));
        }
        self.cache.insert((u, v), CacheEntry { valid, deps });
        let entries = self.cache.len();
        self.probe(|p| p.cache_entries.set(entries as f64));
    }

    /// Re-runs `ParaMatch` on every recorded pair that depended on the
    /// freshly-invalidated `(u, v)` (Fig. 4 lines 29-31).
    ///
    /// If the budget runs out mid-repair, the dependents not yet re-checked
    /// are purged (their verdicts were justified by the now-false pair), so
    /// every verdict that survives an exhausted run is still sound.
    fn cleanup(&mut self, u: VertexId, v: VertexId) -> Result<(), ExhaustReason> {
        let dependents = match self.rdeps.remove(&(u, v)) {
            Some(d) => d,
            None => return Ok(()),
        };
        for (i, &(up, vp)) in dependents.iter().enumerate() {
            let needs_recheck = self
                .cache
                .get(&(up, vp))
                .map(|e| e.valid && e.deps.contains(&(u, v)))
                .unwrap_or(false);
            if needs_recheck {
                self.stats.cleanups += 1;
                self.probe(|p| p.cleanups.inc());
                // Unset and recompute.
                self.set_verdict(up, vp, false, Vec::new());
                self.cache.remove(&(up, vp));
                if let Err(reason) = self.para_match(up, vp) {
                    for &rest in &dependents[i + 1..] {
                        self.purge(rest);
                    }
                    return Err(reason);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Params, Thresholds};
    use her_graph::GraphBuilder;

    /// Builds a tiny `G_D` ("tuple" r with two attributes) and a `G`
    /// (entity with the same values under different predicates) over one
    /// interner. Returns (gd, g, interner, u_root, v_root, v_decoy).
    fn fixture() -> (Graph, Graph, Interner, VertexId, VertexId, VertexId) {
        let mut b = GraphBuilder::new();
        // G_D part
        let u_root = b.add_vertex("item");
        let u_color = b.add_vertex("white");
        let u_mat = b.add_vertex("phylon foam");
        b.add_edge(u_root, u_color, "color");
        b.add_edge(u_root, u_mat, "material");
        let (gd, interner) = b.build();

        let mut b2 = GraphBuilder::with_interner(interner);
        let v_root = b2.add_vertex("item");
        let v_color = b2.add_vertex("white");
        let v_mat = b2.add_vertex("phylon foam");
        b2.add_edge(v_root, v_color, "color");
        b2.add_edge(v_root, v_mat, "material");
        let v_decoy = b2.add_vertex("item");
        let v_red = b2.add_vertex("red");
        let v_leather = b2.add_vertex("leather");
        b2.add_edge(v_decoy, v_red, "color");
        b2.add_edge(v_decoy, v_leather, "material");
        let (g, interner) = b2.build();
        (gd, g, interner, u_root, v_root, v_decoy)
    }

    fn params(sigma: f32, delta: f32, k: usize) -> Params {
        Params::untrained(64, 7).with_thresholds(Thresholds::new(sigma, delta, k))
    }

    #[test]
    fn identical_structures_match() {
        let (gd, g, interner, u, v, _) = fixture();
        // Identical predicates: untrained M_ρ gives each pair some score s; with
        // δ=0 the aggregate always passes, so matching hinges on h_v.
        let p = params(0.9, 0.0, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
    }

    #[test]
    fn label_mismatch_rejected_immediately() {
        let (gd, g, interner, u, _, _) = fixture();
        let p = params(0.9, 0.0, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        // "white" attribute vertex vs "item" root: labels differ.
        let u_attr = gd.children(u)[0];
        assert!(!m.is_match(u_attr, VertexId(0)));
        assert_eq!(m.cached(u_attr, VertexId(0)), Some(false));
    }

    #[test]
    fn decoy_with_different_values_rejected() {
        let (gd, g, interner, u, _, decoy) = fixture();
        // δ > 0 forces at least one descendant pair to match; the decoy's
        // values (red/leather) fail the σ check against white/phylon foam.
        let p = params(0.9, 0.2, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(!m.is_match(u, decoy));
    }

    #[test]
    fn leaves_match_on_label_alone() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 5.0, 5); // impossible δ, irrelevant for leaves
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        let u_color = gd.children(u)[0];
        let v_color = g.children(v)[0];
        assert!(m.is_match(u_color, v_color));
    }

    #[test]
    fn witness_contains_root_and_lineage() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
        let w = m.witness(u, v).unwrap();
        assert!(w.contains(&(u, v)));
        assert!(w.len() >= 2, "expected lineage in witness: {w:?}");
        // Every pair in the witness is itself cached valid.
        assert!(w.iter().all(|&(a, b)| m.cached(a, b) == Some(true)));
    }

    #[test]
    fn no_witness_for_non_match() {
        let (gd, g, interner, u, _, decoy) = fixture();
        let p = params(0.9, 0.2, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(!m.is_match(u, decoy));
        assert!(m.witness(u, decoy).is_none());
    }

    #[test]
    fn cache_hit_on_repeat_query() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
        let calls_before = m.stats().calls;
        assert!(m.is_match(u, v));
        assert_eq!(m.stats().calls, calls_before, "second query must be cached");
        assert!(m.stats().cache_hits > 0);
    }

    #[test]
    fn early_termination_counted_for_impossible_delta() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 100.0, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(!m.is_match(u, v));
        assert!(m.stats().early_terminations > 0);
    }

    #[test]
    fn options_do_not_change_verdicts() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 0.1, 5);
        let all = MatcherOptions::default();
        let none = MatcherOptions {
            early_termination: false,
            use_ecache: false,
            sorted_lists: false,
            ..Default::default()
        };
        for opts in [all, none] {
            let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts.clone());
            assert!(m.is_match(u, v), "opts {opts:?}");
            assert!(!m.is_match(u, decoy), "opts {opts:?}");
        }
    }

    /// Appendix C's cyclic scenario: u→u1→u2→u1 (cycle) with matching
    /// labels in G, where a third pair fails and forces cleanup.
    #[test]
    fn interdependent_cycle_with_cleanup() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("a");
        let u1 = b.add_vertex("b");
        let u2 = b.add_vertex("c");
        let u3 = b.add_vertex("poison");
        b.add_edge(u, u1, "e");
        b.add_edge(u1, u2, "e");
        b.add_edge(u2, u1, "e");
        b.add_edge(u1, u3, "f");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("a");
        let v1 = b2.add_vertex("b");
        let v2 = b2.add_vertex("c");
        let v3 = b2.add_vertex("different");
        b2.add_edge(v, v1, "e");
        b2.add_edge(v1, v2, "e");
        b2.add_edge(v2, v1, "e");
        b2.add_edge(v1, v3, "f");
        let (g, interner) = b2.build();

        // δ small enough that one matching descendant suffices; the poison
        // vertex mismatch must not break the cycle pairs.
        let p = params(0.95, 0.05, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
        assert_eq!(m.cached(u1, v1), Some(true));
        assert_eq!(m.cached(u2, v2), Some(true));
        // The poison pair never became a match (it is either filtered out
        // at candidate-list construction or cached false).
        assert_ne!(m.cached(u3, v3), Some(true));
    }

    #[test]
    fn call_budget_reports_exhausted_not_false() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let opts = MatcherOptions {
            budget: Budget::unlimited().with_max_calls(1),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        let out = m.try_match(u, v);
        assert!(matches!(out, Outcome::Exhausted(ExhaustReason::Calls)), "{out:?}");
        assert_eq!(m.exhausted(), Some(ExhaustReason::Calls));
        // Conservative boolean view.
        assert!(!m.is_match(u, v));
        // No unproven optimistic verdict may survive the unwind.
        assert_ne!(m.cached(u, v), Some(true));
    }

    #[test]
    fn renew_budget_resumes_and_finishes() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let opts = MatcherOptions {
            budget: Budget::unlimited().with_max_calls(1),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        assert!(!m.try_match(u, v).is_decided());
        m.renew_budget(Budget::unlimited());
        assert_eq!(m.try_match(u, v), Outcome::Matched);
    }

    #[test]
    fn cancel_token_stops_work_and_is_shared() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let token = CancelToken::new();
        let opts = MatcherOptions {
            cancel: token.clone(),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        token.cancel();
        assert_eq!(
            m.try_match(u, v),
            Outcome::Exhausted(ExhaustReason::Cancelled)
        );
        assert_eq!(m.stats().calls, 0, "no work after cancellation");
    }

    #[test]
    fn deadline_in_the_past_exhausts_immediately() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let opts = MatcherOptions {
            budget: Budget::unlimited().with_deadline_in(std::time::Duration::ZERO),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        assert_eq!(
            m.try_match(u, v),
            Outcome::Exhausted(ExhaustReason::Deadline)
        );
    }

    #[test]
    fn partial_results_survive_exhaustion() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 0.1, 5);
        let mut m = Matcher::with_options(
            &gd,
            &g,
            &interner,
            &p,
            MatcherOptions::default(),
        );
        // Resolve one pair fully, then exhaust the budget on the next.
        assert_eq!(m.try_match(u, v), Outcome::Matched);
        let used = m.stats().calls;
        m.renew_budget(Budget::unlimited().with_max_calls(used));
        assert!(!m.try_match(u, decoy).is_decided());
        // The pre-exhaustion verdict is still served (partial results).
        assert_eq!(m.try_match(u, v), Outcome::Matched);
        assert_eq!(m.cached(u, v), Some(true));
    }

    #[test]
    fn cache_capacity_budget_trips() {
        let (gd, g, interner, u, v, _) = fixture();
        let p = params(0.9, 0.1, 5);
        let opts = MatcherOptions {
            budget: Budget::unlimited().with_max_cache_entries(0),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        assert_eq!(
            m.try_match(u, v),
            Outcome::Exhausted(ExhaustReason::CacheCapacity)
        );
    }

    /// When δ forces *both* descendants of u1 to match, the poison pair's
    /// failure must propagate: the cycle pairs and the root all become
    /// invalid via the cleanup stage.
    #[test]
    fn cleanup_propagates_invalidation() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("a");
        let u1 = b.add_vertex("b");
        let u3 = b.add_vertex("poison");
        b.add_edge(u, u1, "e");
        b.add_edge(u, u3, "f");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("a");
        let v1 = b2.add_vertex("b");
        let v3 = b2.add_vertex("different");
        b2.add_edge(v, v1, "e");
        b2.add_edge(v, v3, "f");
        let (g, interner) = b2.build();

        // Untrained M_ρ: all pairwise hρ ≈ same value s. Choose δ between s
        // and 2s so both descendants are needed — impossible since poison
        // fails — by probing with δ=0 first.
        let probe = params(0.95, 0.0, 5);
        let mut pm = Matcher::new(&gd, &g, &interner, &probe);
        assert!(pm.is_match(u, v));
        // h_ρ of the (b,b) witness pair:
        let s = {
            use her_graph::Path;
            let pu = Path::new(vec![u, u1], vec![gd.edge_label(u, u1).unwrap()]);
            let pv = Path::new(vec![v, v1], vec![g.edge_label(v, v1).unwrap()]);
            let mut sc = crate::scores::ScoreCache::new();
            sc.hrho(&probe, &interner, &pu, &pv)
        };
        let p = params(0.95, s * 1.5, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(!m.is_match(u, v), "needing both descendants must fail");
        assert_eq!(m.cached(u, v), Some(false));
    }

    /// Every `MatchStats` field is non-decreasing across a run, and a
    /// snapshot taken earlier is detached (unchanged by later work).
    #[test]
    fn stats_are_monotonic_and_snapshots_detached() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 0.1, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);

        let fields = |s: MatchStats| {
            [
                s.calls,
                s.cache_hits,
                s.early_terminations,
                s.cleanups,
                s.ecache_hits,
            ]
        };
        let mut prev = m.stats();
        assert_eq!(fields(prev), [0; 5]);
        let queries: [(VertexId, VertexId); 4] = [(u, v), (u, decoy), (u, v), (u, decoy)];
        for (a, b) in queries {
            let before = m.stats();
            let _ = m.is_match(a, b);
            let after = m.stats();
            for (x, y) in fields(before).iter().zip(fields(after)) {
                assert!(*x <= y, "stats must be monotonic: {before:?} -> {after:?}");
            }
            // The earlier snapshot is a detached copy: re-reading it
            // still yields the values captured before this query.
            assert_eq!(fields(prev), fields(before));
            prev = after;
        }
        assert!(prev.calls > 0);
        // delta_since attributes exactly the in-between work.
        let mid = m.stats();
        let _ = m.is_match(u, v); // cached: hits grow, calls don't
        let d = m.stats().delta_since(&mid);
        assert_eq!(d.calls, 0);
        assert_eq!(d.cache_hits, 1);
    }

    /// checkpoint → restore into a fresh matcher preserves every verdict,
    /// the stats, and the rdeps index (exercised via invalidation).
    #[test]
    fn checkpoint_restore_round_trips_verdicts_and_cleanup() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 0.1, 5);
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        assert!(m.is_match(u, v));
        assert!(!m.is_match(u, decoy));
        let ck = m.checkpoint();
        assert_eq!(ck.encode(), m.checkpoint().encode(), "deterministic bytes");

        let decoded =
            crate::checkpoint::MatcherCheckpoint::decode(&ck.encode()).expect("decode");
        let mut r = Matcher::new(&gd, &g, &interner, &p);
        r.restore(&decoded);
        // Every cached verdict carried over.
        for (pair, valid, _) in &ck.entries {
            assert_eq!(r.cached(pair.0, pair.1), Some(*valid));
        }
        assert_eq!(r.stats(), m.stats());
        // Cached queries are served without recursion.
        let calls = r.stats().calls;
        assert!(r.is_match(u, v));
        assert_eq!(r.stats().calls, calls);
        // The rebuilt rdeps index drives cleanup exactly like the original:
        // invalidate a lineage dependency of (u, v) in both matchers.
        let dep = m.lineage(u, v).and_then(|d| d.first().copied());
        if let Some((du, dv)) = dep {
            m.apply_invalidation(du, dv);
            r.apply_invalidation(du, dv);
            assert_eq!(r.cached(u, v), m.cached(u, v), "cleanup diverged after restore");
        }
    }

    /// With an `Obs` handle set, the registry mirrors `MatchStats`.
    #[test]
    fn obs_registry_mirrors_stats() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 100.0, 5); // impossible δ → early terminations
        let obs = her_obs::Obs::new();
        let opts = MatcherOptions {
            obs: Some(obs.clone()),
            ..Default::default()
        };
        let mut m = Matcher::with_options(&gd, &g, &interner, &p, opts);
        let _ = m.is_match(u, v);
        let _ = m.is_match(u, decoy);
        let _ = m.is_match(u, v);
        let stats = m.stats();
        let snap = obs.snapshot();
        if her_obs::ENABLED {
            assert_eq!(snap.counter("paramatch.calls"), stats.calls);
            assert_eq!(snap.counter("paramatch.cache_hits"), stats.cache_hits);
            assert_eq!(
                snap.counter("paramatch.early_terminations"),
                stats.early_terminations
            );
            assert!(stats.early_terminations > 0);
            assert!(snap.gauge("paramatch.cache_entries") > 0.0);
        } else {
            assert_eq!(snap.counter("paramatch.calls"), 0);
        }
    }

    /// Matchers scoring through one [`SharedScores`] handle decide exactly
    /// like matchers with private caches (pure memoization), and the
    /// second matcher's embeds are served from the shared tables.
    #[test]
    fn shared_scores_matchers_agree_with_private() {
        let (gd, g, interner, u, v, decoy) = fixture();
        let p = params(0.9, 0.1, 5);
        let shared = SharedScores::new();
        let opts = || MatcherOptions {
            shared_scores: Some(shared.clone()),
            ..Default::default()
        };
        let mut private = Matcher::new(&gd, &g, &interner, &p);
        let mut s1 = Matcher::with_options(&gd, &g, &interner, &p, opts());
        let mut s2 = Matcher::with_options(&gd, &g, &interner, &p, opts());
        for (a, b) in [(u, v), (u, decoy)] {
            let want = private.try_match(a, b);
            assert_eq!(s1.try_match(a, b), want);
            assert_eq!(s2.try_match(a, b), want);
        }
        let embeds_after_s1 = shared.embed_calls();
        // s2 ran the same queries entirely from the shared tables.
        assert!(embeds_after_s1 > 0);
        assert!(shared.shared_hits() > 0);
        let mut s3 = Matcher::with_options(&gd, &g, &interner, &p, opts());
        assert!(s3.is_match(u, v));
        assert_eq!(shared.embed_calls(), embeds_after_s1, "no re-embedding");
    }

    /// The invalidation-generation protocol across matchers: fine-tuning
    /// plus `invalidate()` on one matcher bumps the shared generation,
    /// and a *different* matcher on the same handle drops its stale
    /// verdicts at its next query. Restore adopts the current generation.
    #[test]
    fn shared_generation_invalidation_covers_fine_tune_and_restore() {
        let (gd, g, interner, u, v, _) = fixture();
        let mut p = params(0.9, 0.1, 5);
        let shared = SharedScores::new();
        let opts = || MatcherOptions {
            shared_scores: Some(shared.clone()),
            ..Default::default()
        };
        let ck = {
            let mut a = Matcher::with_options(&gd, &g, &interner, &p, opts());
            let mut b = Matcher::with_options(&gd, &g, &interner, &p, opts());
            assert!(a.is_match(u, v));
            assert!(b.is_match(u, v));
            let ck = b.checkpoint();
            // Invalidating through matcher `a` bumps the shared
            // generation; matcher `b` notices at its next query and
            // re-derives instead of serving its (potentially stale)
            // cached verdict.
            a.invalidate();
            assert_eq!(shared.generation(), 1);
            let calls = b.stats().calls;
            assert!(b.is_match(u, v), "unchanged params, same verdict");
            assert!(b.stats().calls > calls, "verdict re-derived, not served stale");
            ck
        };

        // Fine-tune while the shared handle outlives every matcher — the
        // Her::refine pattern. The handle still holds pre-tuning memos;
        // invalidate() drops them and bumps the generation.
        for _ in 0..12 {
            p.mv.fine_tune_pair("item", "item", 0.0);
        }
        shared.invalidate();
        assert_eq!(shared.generation(), 2);
        let mut c = Matcher::with_options(&gd, &g, &interner, &p, opts());
        assert!(!c.is_match(u, v), "fine-tuned to a non-match");

        // Restore pre-fine-tuning verdicts into a fresh matcher: the
        // checkpoint carries verdicts (by design), but the matcher adopts
        // the *current* generation, so post-restore scoring uses the
        // refined models rather than a mix of generations.
        let mut r = Matcher::with_options(&gd, &g, &interner, &p, opts());
        r.restore(&ck);
        assert_eq!(r.cached(u, v), Some(true), "checkpoint verdicts restored");
        assert_eq!(r.scores_generation(), shared.generation());
        // A further invalidation elsewhere is still picked up post-restore.
        shared.invalidate();
        assert_eq!(r.cached(u, v), Some(true));
        assert!(!r.is_match(u, v), "generation sync clears restored verdicts");
    }
}
