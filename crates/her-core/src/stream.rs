//! Incremental / pay-as-you-go linking (§VI-B Remark 2, and the paper's
//! VPair motivation of real-time analysis à la pay-as-you-go ER \[88\]).
//!
//! [`StreamLinker`] processes tuples as they arrive, keeping one persistent
//! [`Matcher`] so verdicts, `ecache` selections and score memos amortise
//! across the stream — exactly the property `IncPSim`'s incremental
//! refinement exploits. External invalidations (e.g. a vertex retracted
//! from `G`) propagate through the cleanup machinery.

use crate::her::Her;
use crate::paramatch::Matcher;
use crate::vpair;
use her_graph::VertexId;
use her_rdb::TupleRef;
use std::collections::BTreeSet;

/// Per-tuple processing statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Recursive `ParaMatch` calls this tuple required.
    pub calls: u64,
    /// Verdicts served from the shared cache.
    pub cache_hits: u64,
}

/// A streaming linker over a fixed `(D, G)` pair.
pub struct StreamLinker<'a> {
    her: &'a Her,
    matcher: Matcher<'a>,
    matches: BTreeSet<(TupleRef, VertexId)>,
    processed: Vec<TupleRef>,
}

impl<'a> StreamLinker<'a> {
    /// Creates an empty session over a trained system.
    pub fn new(her: &'a Her) -> Self {
        Self {
            her,
            matcher: her.matcher(),
            matches: BTreeSet::new(),
            processed: Vec::new(),
        }
    }

    /// Links one arriving tuple (VPair with shared caches); returns its
    /// matches and the incremental work it cost.
    pub fn process(&mut self, t: TupleRef) -> (Vec<VertexId>, StreamStats) {
        let before = self.matcher.stats();
        let u = self.her.cg.vertex_of(t);
        let found = vpair::vpair(&mut self.matcher, u, self.her.index.as_ref());
        for &v in &found {
            self.matches.insert((t, v));
        }
        self.processed.push(t);
        // `stats()` snapshots are detached copies, so the before/after
        // diff attributes exactly this tuple's work.
        let delta = self.matcher.stats().delta_since(&before);
        if let Some(obs) = self.matcher.obs() {
            obs.registry.counter("stream.tuples").inc();
        }
        (
            found,
            StreamStats {
                calls: delta.calls,
                cache_hits: delta.cache_hits,
            },
        )
    }

    /// Applies an external update: vertex `v` of `G` is no longer a valid
    /// match target (e.g. retracted or re-labeled). All cached verdicts
    /// involving `v` flip to false and their dependents are re-checked
    /// (IncPSim's cleanup); accumulated matches pointing at `v` are
    /// withdrawn.
    pub fn retract_vertex(&mut self, v: VertexId) {
        let affected: Vec<(TupleRef, VertexId)> = self
            .matches
            .iter()
            .filter(|&&(_, mv)| mv == v)
            .copied()
            .collect();
        for (t, mv) in affected {
            self.matches.remove(&(t, mv));
            let u = self.her.cg.vertex_of(t);
            self.matcher.apply_invalidation(u, mv);
        }
        if let Some(obs) = self.matcher.obs() {
            obs.registry.counter("stream.retractions").inc();
        }
    }

    /// All matches accumulated so far, sorted.
    pub fn matches(&self) -> Vec<(TupleRef, VertexId)> {
        self.matches.iter().copied().collect()
    }

    /// Tuples processed so far, in arrival order.
    pub fn processed(&self) -> &[TupleRef] {
        &self.processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::her::HerConfig;
    use crate::learn::SearchSpace;
    use crate::params::Thresholds;
    use her_graph::GraphBuilder;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    fn system() -> (Her, Vec<TupleRef>, Vec<VertexId>) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let mut b = GraphBuilder::new();
        let mut ts = Vec::new();
        let mut vs = Vec::new();
        for i in 0..8 {
            let name = format!("entity {i}");
            let color = ["white", "red"][i % 2];
            ts.push(db.insert(
                item,
                Tuple::new(vec![Value::Str(name.clone()), Value::str(color)]),
            ));
            let v = b.add_vertex("item");
            let n = b.add_vertex(&name);
            let c = b.add_vertex(color);
            b.add_edge(v, n, "label");
            b.add_edge(v, c, "hasColor");
            vs.push(v);
        }
        let (g, interner) = b.build();
        let cfg = HerConfig {
            // δ high enough that colour alone (≈0.45) cannot carry a match;
            // name + colour (≈0.95) can.
            thresholds: Thresholds::new(0.9, 0.7, 5),
            use_blocking: false,
            ..Default::default()
        };
        let mut her = Her::build(&db, g, interner, &cfg);
        let ann: Vec<_> = ts.iter().zip(&vs).map(|(&t, &v)| (t, v, true)).collect();
        her.learn(
            &ann,
            &ann,
            &cfg,
            &SearchSpace {
                trials: 0,
                ..Default::default()
            },
        );
        (her, ts, vs)
    }

    #[test]
    fn stream_accumulates_matches() {
        let (her, ts, vs) = system();
        let mut linker = StreamLinker::new(&her);
        for (i, &t) in ts.iter().enumerate() {
            let (found, _) = linker.process(t);
            assert!(found.contains(&vs[i]), "tuple {i} missed its entity");
        }
        assert_eq!(linker.matches().len(), ts.len());
        assert_eq!(linker.processed().len(), ts.len());
    }

    #[test]
    fn caches_amortise_across_the_stream() {
        let (her, ts, _) = system();
        let mut linker = StreamLinker::new(&her);
        let (_, first) = linker.process(ts[0]);
        // Re-processing the same tuple is nearly free.
        let (_, again) = linker.process(ts[0]);
        assert!(
            again.calls < first.calls.max(1),
            "second pass should reuse verdicts: {first:?} vs {again:?}"
        );
    }

    /// Property: stream results are order-independent and retraction
    /// commutes with processing order — processing in a random order,
    /// retracting a random vertex, then re-processing in another random
    /// order leaves exactly the matches a fresh batch run (natural order +
    /// the same retraction) produces. Cases are driven by the proptest
    /// rng in a hand-rolled loop so the trained fixture is built once.
    #[test]
    fn random_order_with_retraction_equals_batch_run() {
        use proptest::rng::TestRng;
        let (her, ts, vs) = system();
        let shuffle = |order: &mut Vec<usize>, rng: &mut TestRng| {
            for i in (1..order.len()).rev() {
                let j = rng.below((i + 1) as u64) as usize;
                order.swap(i, j);
            }
        };
        for case in 0..12u64 {
            let mut rng = TestRng::for_case("stream_order_retraction", case);
            let mut order: Vec<usize> = (0..ts.len()).collect();
            shuffle(&mut order, &mut rng);
            let retract = vs[rng.below(vs.len() as u64) as usize];

            let mut linker = StreamLinker::new(&her);
            for &i in &order {
                linker.process(ts[i]);
            }
            linker.retract_vertex(retract);
            shuffle(&mut order, &mut rng);
            for &i in &order {
                linker.process(ts[i]);
            }

            let mut batch = StreamLinker::new(&her);
            for &t in &ts {
                batch.process(t);
            }
            batch.retract_vertex(retract);

            assert_eq!(
                linker.matches(),
                batch.matches(),
                "case {case}: order {order:?}, retracted {retract:?}"
            );
        }
    }

    #[test]
    fn retraction_withdraws_matches() {
        let (her, ts, vs) = system();
        let mut linker = StreamLinker::new(&her);
        let (found, _) = linker.process(ts[0]);
        assert!(found.contains(&vs[0]));
        linker.retract_vertex(vs[0]);
        assert!(linker.matches().iter().all(|&(_, v)| v != vs[0]));
        // The invalidation is sticky: reprocessing does not resurrect it.
        let (found, _) = linker.process(ts[0]);
        assert!(!found.contains(&vs[0]));
    }
}
