//! Incremental / pay-as-you-go linking (§VI-B Remark 2, and the paper's
//! VPair motivation of real-time analysis à la pay-as-you-go ER \[88\]).
//!
//! [`StreamLinker`] processes tuples as they arrive, keeping one persistent
//! [`Matcher`] so verdicts, `ecache` selections and score memos amortise
//! across the stream — exactly the property `IncPSim`'s incremental
//! refinement exploits. External invalidations (e.g. a vertex retracted
//! from `G`) propagate through the cleanup machinery.

//! A session survives process death via [`DurableStreamLinker`], which
//! journals every operation into an `her-store` write-ahead log before
//! applying it; re-opening the log replays the journal into a fresh
//! session, reproducing the exact in-memory state (the fixpoint is unique,
//! so replay order = original order gives identical matches).

use crate::her::Her;
use crate::paramatch::{Matcher, MatcherOptions};
use crate::vpair;
use her_graph::VertexId;
use her_rdb::TupleRef;
use her_store::wal::{self, WalReplay, WalWriter};
use her_store::{vfs, CodecError, Dec, Enc, StoreError, Vfs};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Per-tuple processing statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Recursive `ParaMatch` calls this tuple required.
    pub calls: u64,
    /// Verdicts served from the shared cache.
    pub cache_hits: u64,
}

/// A streaming linker over a fixed `(D, G)` pair.
pub struct StreamLinker<'a> {
    her: &'a Her,
    matcher: Matcher<'a>,
    matches: BTreeSet<(TupleRef, VertexId)>,
    processed: Vec<TupleRef>,
}

impl<'a> StreamLinker<'a> {
    /// Creates an empty session over a trained system. The session's
    /// matcher reads scores through the facade's [`crate::SharedScores`]
    /// handle (when enabled on `her`), so labels embedded by any earlier
    /// run — batch, parallel, or a previous stream session — are served
    /// from the shared memo instead of re-embedded per session.
    pub fn new(her: &'a Her) -> Self {
        Self::with_obs(her, None)
    }

    /// [`StreamLinker::new`] with an observability handle: per-tuple work
    /// lands in the `paramatch.*` counters and each operation ticks
    /// `stream.tuples` / `stream.retractions`.
    pub fn with_obs(her: &'a Her, obs: Option<her_obs::Obs>) -> Self {
        Self {
            her,
            matcher: her.matcher_with(MatcherOptions {
                obs,
                ..Default::default()
            }),
            matches: BTreeSet::new(),
            processed: Vec::new(),
        }
    }

    /// Links one arriving tuple (VPair with shared caches); returns its
    /// matches and the incremental work it cost.
    pub fn process(&mut self, t: TupleRef) -> (Vec<VertexId>, StreamStats) {
        let before = self.matcher.stats();
        let u = self.her.cg.vertex_of(t);
        let found = vpair::vpair(&mut self.matcher, u, self.her.index.as_ref());
        for &v in &found {
            self.matches.insert((t, v));
        }
        self.processed.push(t);
        // `stats()` snapshots are detached copies, so the before/after
        // diff attributes exactly this tuple's work.
        let delta = self.matcher.stats().delta_since(&before);
        if let Some(obs) = self.matcher.obs() {
            obs.registry.counter("stream.tuples").inc();
        }
        (
            found,
            StreamStats {
                calls: delta.calls,
                cache_hits: delta.cache_hits,
            },
        )
    }

    /// Applies an external update: vertex `v` of `G` is no longer a valid
    /// match target (e.g. retracted or re-labeled). All cached verdicts
    /// involving `v` flip to false and their dependents are re-checked
    /// (IncPSim's cleanup); accumulated matches pointing at `v` are
    /// withdrawn.
    pub fn retract_vertex(&mut self, v: VertexId) {
        let affected: Vec<(TupleRef, VertexId)> = self
            .matches
            .iter()
            .filter(|&&(_, mv)| mv == v)
            .copied()
            .collect();
        for (t, mv) in affected {
            self.matches.remove(&(t, mv));
            let u = self.her.cg.vertex_of(t);
            self.matcher.apply_invalidation(u, mv);
        }
        if let Some(obs) = self.matcher.obs() {
            obs.registry.counter("stream.retractions").inc();
        }
    }

    /// All matches accumulated so far, sorted.
    pub fn matches(&self) -> Vec<(TupleRef, VertexId)> {
        self.matches.iter().copied().collect()
    }

    /// Tuples processed so far, in arrival order.
    pub fn processed(&self) -> &[TupleRef] {
        &self.processed
    }

    /// Snapshots the session — accumulated matches, the processed log and
    /// the matcher's durable state — tagged with `ops_applied`, the number
    /// of journaled operations this state reflects (so a durable reopen
    /// knows where WAL replay must resume).
    pub fn checkpoint(&self, ops_applied: u64) -> StreamCheckpoint {
        StreamCheckpoint {
            ops_applied,
            matches: self.matches(),
            processed: self.processed.clone(),
            matcher: self.matcher.checkpoint(),
        }
    }

    /// Restores a snapshot taken by [`StreamLinker::checkpoint`] into this
    /// session, replacing its state wholesale. Derived memos refill on
    /// demand; the restored matcher adopts the shared score layer's
    /// current generation (see [`crate::checkpoint::MatcherCheckpoint`]).
    pub fn restore(&mut self, ck: &StreamCheckpoint) {
        self.matches = ck.matches.iter().copied().collect();
        self.processed = ck.processed.clone();
        self.matcher.restore(&ck.matcher);
    }
}

/// A whole-session snapshot of a [`StreamLinker`], positioned in its WAL
/// by `ops_applied`. Encoding is deterministic (sorted matches, explicit
/// little-endian codec), so identical states produce identical bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamCheckpoint {
    /// Journaled operations already reflected in this state; a durable
    /// reopen replays only WAL records after this count.
    pub ops_applied: u64,
    /// Accumulated matches, sorted.
    pub matches: Vec<(TupleRef, VertexId)>,
    /// Tuples processed, in arrival order.
    pub processed: Vec<TupleRef>,
    /// The session matcher's durable state.
    pub matcher: crate::checkpoint::MatcherCheckpoint,
}

const STREAM_CK_VERSION: u32 = 1;

impl StreamCheckpoint {
    /// Serializes to deterministic bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u32(STREAM_CK_VERSION).put_u64(self.ops_applied);
        e.put_u32(self.matches.len() as u32);
        for (t, v) in &self.matches {
            e.put_u32(t.relation).put_u32(t.row).put_u32(v.0);
        }
        e.put_u32(self.processed.len() as u32);
        for t in &self.processed {
            e.put_u32(t.relation).put_u32(t.row);
        }
        e.put_bytes(&self.matcher.encode());
        e.into_bytes()
    }

    /// Decodes bytes written by [`StreamCheckpoint::encode`]. Bounds-
    /// checked throughout; malformed input errors, never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let version = d.u32()?;
        if version != STREAM_CK_VERSION {
            return Err(CodecError {
                offset: 0,
                message: format!(
                    "stream checkpoint v{version} (this build reads v{STREAM_CK_VERSION})"
                ),
            });
        }
        let ops_applied = d.u64()?;
        let n = d.u32()? as usize;
        let mut matches = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            matches.push((
                TupleRef {
                    relation: d.u32()?,
                    row: d.u32()?,
                },
                VertexId(d.u32()?),
            ));
        }
        let n = d.u32()? as usize;
        let mut processed = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            processed.push(TupleRef {
                relation: d.u32()?,
                row: d.u32()?,
            });
        }
        let matcher = crate::checkpoint::MatcherCheckpoint::decode(d.bytes()?)?;
        d.finish()?;
        Ok(StreamCheckpoint {
            ops_applied,
            matches,
            processed,
            matcher,
        })
    }
}

/// One journaled streaming operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// A tuple arrived and was linked.
    Process(TupleRef),
    /// A `G` vertex was retracted.
    Retract(VertexId),
}

const OP_PROCESS: u8 = 1;
const OP_RETRACT: u8 = 2;

impl StreamOp {
    /// Serializes this operation as one WAL record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            StreamOp::Process(t) => {
                e.put_u8(OP_PROCESS).put_u32(t.relation).put_u32(t.row);
            }
            StreamOp::Retract(v) => {
                e.put_u8(OP_RETRACT).put_u32(v.0);
            }
        }
        e.into_bytes()
    }

    /// Decodes a record payload written by [`StreamOp::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let op = match d.u8()? {
            OP_PROCESS => StreamOp::Process(TupleRef {
                relation: d.u32()?,
                row: d.u32()?,
            }),
            OP_RETRACT => StreamOp::Retract(VertexId(d.u32()?)),
            tag => {
                return Err(CodecError {
                    offset: 0,
                    message: format!("bad stream-op tag {tag:#04x}"),
                })
            }
        };
        d.finish()?;
        Ok(op)
    }
}

/// A [`StreamLinker`] whose operations are journaled to a write-ahead log
/// *before* being applied, so a killed session resumes to exactly the
/// state it had.
///
/// Each `process`/`retract_vertex` appends one record and fsyncs it; this
/// trades per-op latency for the guarantee that an acknowledged operation
/// survives power loss. Re-opening truncates a torn tail (crash artifact)
/// and replays the clean prefix; a corrupt record — a complete frame with
/// a failing checksum — is rejected with [`StoreError::Corrupt`] rather
/// than replayed.
pub struct DurableStreamLinker<'a> {
    inner: StreamLinker<'a>,
    wal: WalWriter,
    vfs: Arc<dyn Vfs>,
    obs: Option<her_obs::Obs>,
    /// Journaled operations reflected in `inner` (replayed + appended).
    ops_applied: u64,
    /// Set when an append/sync failed AND the in-place rollback could
    /// not restore the synced prefix; [`DurableStreamLinker::reopen`]
    /// must trim the journal before further appends are sound.
    journal_broken: bool,
}

impl<'a> DurableStreamLinker<'a> {
    /// Opens (or creates) the WAL at `path` and replays it into a fresh
    /// session over `her`. Returns the resumed linker and what replay
    /// found.
    pub fn open(
        her: &'a Her,
        path: impl AsRef<Path>,
        obs: Option<her_obs::Obs>,
    ) -> Result<(Self, WalReplay), StoreError> {
        Self::open_impl(her, path.as_ref(), vfs::real(), obs, None)
    }

    /// [`DurableStreamLinker::open`] over an explicit [`Vfs`], so serve
    /// drills and fault tests can inject storage failures into the
    /// journal path.
    pub fn open_vfs(
        her: &'a Her,
        path: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        obs: Option<her_obs::Obs>,
    ) -> Result<(Self, WalReplay), StoreError> {
        Self::open_impl(her, path.as_ref(), vfs, obs, None)
    }

    /// [`DurableStreamLinker::open`] resuming from a prior
    /// [`StreamCheckpoint`]: the session starts from the snapshot's state
    /// and replay skips the `ck.ops_applied` WAL records the snapshot
    /// already reflects, applying only the suffix journaled after it.
    /// This is the warm-restart path — restart cost is proportional to
    /// the ops since the last snapshot, not the session's lifetime.
    pub fn open_at(
        her: &'a Her,
        path: impl AsRef<Path>,
        obs: Option<her_obs::Obs>,
        ck: &StreamCheckpoint,
    ) -> Result<(Self, WalReplay), StoreError> {
        Self::open_impl(her, path.as_ref(), vfs::real(), obs, Some(ck))
    }

    /// [`DurableStreamLinker::open_at`] over an explicit [`Vfs`].
    pub fn open_at_vfs(
        her: &'a Her,
        path: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        obs: Option<her_obs::Obs>,
        ck: &StreamCheckpoint,
    ) -> Result<(Self, WalReplay), StoreError> {
        Self::open_impl(her, path.as_ref(), vfs, obs, Some(ck))
    }

    fn open_impl(
        her: &'a Her,
        path: &Path,
        vfs: Arc<dyn Vfs>,
        obs: Option<her_obs::Obs>,
        ck: Option<&StreamCheckpoint>,
    ) -> Result<(Self, WalReplay), StoreError> {
        // The session matcher and the WAL share one obs handle, so
        // `stream.*` counters cover journaled sessions too (they were
        // previously wired only into the WAL's `store.*` metrics).
        let mut inner = StreamLinker::with_obs(her, obs.clone());
        let skip = match ck {
            Some(ck) => {
                inner.restore(ck);
                ck.ops_applied
            }
            None => 0,
        };
        let mut record = 0u64;
        let (wal, replay) = WalWriter::open_with(path, Arc::clone(&vfs), obs.clone(), |payload| {
            record += 1;
            if record <= skip {
                // Already reflected in the restored snapshot; the WAL
                // layer has still CRC-verified the frame.
                return Ok(());
            }
            let op = StreamOp::decode(payload).map_err(|e| {
                StoreError::Corrupt {
                    path: path.into(),
                    offset: 0,
                    message: format!("WAL record {record}: {e}"),
                }
            })?;
            match op {
                StreamOp::Process(t) => {
                    inner.process(t);
                }
                StreamOp::Retract(v) => inner.retract_vertex(v),
            }
            Ok(())
        })?;
        // A snapshot can be ahead of a torn WAL tail only if the journal
        // itself lost acknowledged records; keep the larger of the two
        // positions so appended ops number past everything reflected.
        let ops_applied = replay.records.max(skip);
        Ok((
            DurableStreamLinker {
                inner,
                wal,
                vfs,
                obs,
                ops_applied,
                journal_broken: false,
            },
            replay,
        ))
    }

    /// Appends one record and fsyncs it; only then does the caller apply
    /// the operation and acknowledge it. On failure the unsynced bytes
    /// are rolled back in place so they can never replay as a phantom;
    /// if even the rollback fails, the journal is flagged broken and
    /// [`DurableStreamLinker::reopen`] is required before new appends.
    fn journal(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if self.journal_broken {
            return Err(StoreError::Io {
                path: self.wal.path().into(),
                source: std::io::Error::other(
                    "journal needs reopen after an unrecovered append failure",
                ),
            });
        }
        match self.wal.append(payload).and_then(|()| self.wal.sync()) {
            Ok(()) => {
                self.ops_applied += 1;
                Ok(())
            }
            Err(e) => {
                if self.wal.rollback_to_synced().is_err() {
                    self.journal_broken = true;
                }
                Err(e)
            }
        }
    }

    /// Re-opens the journal after storage failures, trimming it to
    /// exactly the acknowledged prefix (`ops_applied` records). The
    /// in-memory session is untouched — nothing past the acknowledged
    /// prefix was ever applied, so there is nothing to replay. Errors if
    /// the file no longer holds every acknowledged record (real data
    /// loss) or the storage is still failing.
    pub fn reopen(&mut self) -> Result<(), StoreError> {
        let path: PathBuf = self.wal.path().into();
        let wal = WalWriter::open_trimmed(
            &path,
            Arc::clone(&self.vfs),
            self.obs.clone(),
            self.ops_applied,
        )?;
        self.wal = wal;
        self.journal_broken = false;
        Ok(())
    }

    /// The journal file path.
    pub fn wal_path(&self) -> &Path {
        self.wal.path()
    }

    /// Journals then links one arriving tuple.
    pub fn process(
        &mut self,
        t: TupleRef,
    ) -> Result<(Vec<VertexId>, StreamStats), StoreError> {
        self.journal(&StreamOp::Process(t).encode())?;
        Ok(self.inner.process(t))
    }

    /// Journals then applies a vertex retraction.
    pub fn retract_vertex(&mut self, v: VertexId) -> Result<(), StoreError> {
        self.journal(&StreamOp::Retract(v).encode())?;
        self.inner.retract_vertex(v);
        Ok(())
    }

    /// Journaled operations reflected in this session's state (replayed
    /// plus appended since open).
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Snapshots the session's current state, positioned at
    /// [`DurableStreamLinker::ops_applied`]. Persist the bytes (e.g. via
    /// `her_store::SnapshotStore`) and pass the decoded checkpoint to
    /// [`DurableStreamLinker::open_at`] to warm-restart.
    pub fn checkpoint(&self) -> StreamCheckpoint {
        self.inner.checkpoint(self.ops_applied)
    }

    /// All matches accumulated so far (including replayed ones), sorted.
    pub fn matches(&self) -> Vec<(TupleRef, VertexId)> {
        self.inner.matches()
    }

    /// Tuples processed so far (including replayed ones), in order.
    pub fn processed(&self) -> &[TupleRef] {
        self.inner.processed()
    }

    /// Replays the WAL at `path` without opening it for append, returning
    /// the journaled operations in order. Read-only resume/inspection.
    pub fn read_ops(path: impl AsRef<Path>) -> Result<(Vec<StreamOp>, WalReplay), StoreError> {
        let path = path.as_ref();
        let mut ops = Vec::new();
        let replay = wal::replay(path, |payload| {
            let op = StreamOp::decode(payload).map_err(|e| StoreError::Corrupt {
                path: path.into(),
                offset: 0,
                message: format!("WAL record {}: {e}", ops.len() + 1),
            })?;
            ops.push(op);
            Ok(())
        })?;
        Ok((ops, replay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::her::HerConfig;
    use crate::learn::SearchSpace;
    use crate::params::Thresholds;
    use her_graph::GraphBuilder;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::{Database, Tuple, Value};

    fn system() -> (Her, Vec<TupleRef>, Vec<VertexId>) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let mut b = GraphBuilder::new();
        let mut ts = Vec::new();
        let mut vs = Vec::new();
        for i in 0..8 {
            let name = format!("entity {i}");
            let color = ["white", "red"][i % 2];
            ts.push(db.insert(
                item,
                Tuple::new(vec![Value::Str(name.clone()), Value::str(color)]),
            ));
            let v = b.add_vertex("item");
            let n = b.add_vertex(&name);
            let c = b.add_vertex(color);
            b.add_edge(v, n, "label");
            b.add_edge(v, c, "hasColor");
            vs.push(v);
        }
        let (g, interner) = b.build();
        let cfg = HerConfig {
            // δ high enough that colour alone (≈0.45) cannot carry a match;
            // name + colour (≈0.95) can.
            thresholds: Thresholds::new(0.9, 0.7, 5),
            use_blocking: false,
            ..Default::default()
        };
        let mut her = Her::build(&db, g, interner, &cfg);
        let ann: Vec<_> = ts.iter().zip(&vs).map(|(&t, &v)| (t, v, true)).collect();
        her.learn(
            &ann,
            &ann,
            &cfg,
            &SearchSpace {
                trials: 0,
                ..Default::default()
            },
        );
        (her, ts, vs)
    }

    #[test]
    fn stream_accumulates_matches() {
        let (her, ts, vs) = system();
        let mut linker = StreamLinker::new(&her);
        for (i, &t) in ts.iter().enumerate() {
            let (found, _) = linker.process(t);
            assert!(found.contains(&vs[i]), "tuple {i} missed its entity");
        }
        assert_eq!(linker.matches().len(), ts.len());
        assert_eq!(linker.processed().len(), ts.len());
    }

    #[test]
    fn caches_amortise_across_the_stream() {
        let (her, ts, _) = system();
        let mut linker = StreamLinker::new(&her);
        let (_, first) = linker.process(ts[0]);
        // Re-processing the same tuple is nearly free.
        let (_, again) = linker.process(ts[0]);
        assert!(
            again.calls < first.calls.max(1),
            "second pass should reuse verdicts: {first:?} vs {again:?}"
        );
    }

    /// Property: stream results are order-independent and retraction
    /// commutes with processing order — processing in a random order,
    /// retracting a random vertex, then re-processing in another random
    /// order leaves exactly the matches a fresh batch run (natural order +
    /// the same retraction) produces. Cases are driven by the proptest
    /// rng in a hand-rolled loop so the trained fixture is built once.
    #[test]
    fn random_order_with_retraction_equals_batch_run() {
        use proptest::rng::TestRng;
        let (her, ts, vs) = system();
        let shuffle = |order: &mut Vec<usize>, rng: &mut TestRng| {
            for i in (1..order.len()).rev() {
                let j = rng.below((i + 1) as u64) as usize;
                order.swap(i, j);
            }
        };
        for case in 0..12u64 {
            let mut rng = TestRng::for_case("stream_order_retraction", case);
            let mut order: Vec<usize> = (0..ts.len()).collect();
            shuffle(&mut order, &mut rng);
            let retract = vs[rng.below(vs.len() as u64) as usize];

            let mut linker = StreamLinker::new(&her);
            for &i in &order {
                linker.process(ts[i]);
            }
            linker.retract_vertex(retract);
            shuffle(&mut order, &mut rng);
            for &i in &order {
                linker.process(ts[i]);
            }

            let mut batch = StreamLinker::new(&her);
            for &t in &ts {
                batch.process(t);
            }
            batch.retract_vertex(retract);

            assert_eq!(
                linker.matches(),
                batch.matches(),
                "case {case}: order {order:?}, retracted {retract:?}"
            );
        }
    }

    fn temp_wal(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("her-stream-wal-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let p = dir.join(format!("{tag}.hlog"));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn stream_op_codec_round_trips() {
        let ops = [
            StreamOp::Process(TupleRef {
                relation: 3,
                row: 1_000_000,
            }),
            StreamOp::Retract(VertexId(42)),
        ];
        for op in ops {
            assert_eq!(StreamOp::decode(&op.encode()).unwrap(), op);
        }
        assert!(StreamOp::decode(&[9]).is_err(), "bad tag must error");
        assert!(StreamOp::decode(&[]).is_err(), "empty payload must error");
        let mut long = StreamOp::Retract(VertexId(1)).encode();
        long.push(0);
        assert!(StreamOp::decode(&long).is_err(), "trailing bytes rejected");
    }

    /// Property (ISSUE 3 satellite): journaling a random interleaving of
    /// `process`/`retract_vertex` operations and replaying the WAL into a
    /// fresh session reproduces the in-memory session's `matches()`
    /// exactly — for every prefix length, because a crash can happen
    /// after any acknowledged operation.
    #[test]
    fn wal_replay_reproduces_interleaved_session_exactly() {
        use proptest::rng::TestRng;
        let (her, ts, vs) = system();
        for case in 0..8u64 {
            let mut rng = TestRng::for_case("stream_wal_replay", case);
            // A random op sequence: mostly processes, some retractions.
            let mut ops = Vec::new();
            for _ in 0..20 {
                if rng.below(4) == 0 {
                    ops.push(StreamOp::Retract(vs[rng.below(vs.len() as u64) as usize]));
                } else {
                    ops.push(StreamOp::Process(ts[rng.below(ts.len() as u64) as usize]));
                }
            }

            // In-memory reference session.
            let mut reference = StreamLinker::new(&her);
            let path = temp_wal(&format!("prop-{case}"));
            {
                let (mut durable, replay) =
                    DurableStreamLinker::open(&her, &path, None).unwrap();
                assert_eq!(replay.records, 0);
                for op in &ops {
                    match *op {
                        StreamOp::Process(t) => {
                            reference.process(t);
                            durable.process(t).unwrap();
                        }
                        StreamOp::Retract(v) => {
                            reference.retract_vertex(v);
                            durable.retract_vertex(v).unwrap();
                        }
                    }
                }
                assert_eq!(durable.matches(), reference.matches(), "case {case}: live");
            }

            // Cold replay from the journal alone.
            let (resumed, replay) = DurableStreamLinker::open(&her, &path, None).unwrap();
            assert_eq!(replay.records, ops.len() as u64, "case {case}");
            assert!(replay.truncated_at.is_none(), "case {case}");
            assert_eq!(
                resumed.matches(),
                reference.matches(),
                "case {case}: replayed session diverged"
            );
            assert_eq!(resumed.processed().len(), reference.processed().len());
            let _ = std::fs::remove_file(&path);
        }
    }

    /// A WAL truncated at every byte offset resumes to a clean prefix of
    /// the session — never panics, never yields a match the uninterrupted
    /// session did not have.
    #[test]
    fn truncated_wal_resumes_to_a_clean_prefix() {
        let (her, ts, vs) = system();
        let path = temp_wal("cuts");
        let ops: Vec<StreamOp> = vec![
            StreamOp::Process(ts[0]),
            StreamOp::Process(ts[1]),
            StreamOp::Retract(vs[0]),
            StreamOp::Process(ts[2]),
        ];
        // Reference states after each op prefix.
        let mut prefix_matches: Vec<Vec<(TupleRef, VertexId)>> = Vec::new();
        {
            let mut s = StreamLinker::new(&her);
            prefix_matches.push(s.matches());
            for op in &ops {
                match *op {
                    StreamOp::Process(t) => {
                        s.process(t);
                    }
                    StreamOp::Retract(v) => s.retract_vertex(v),
                }
                prefix_matches.push(s.matches());
            }
        }
        {
            let (mut durable, _) = DurableStreamLinker::open(&her, &path, None).unwrap();
            for op in &ops {
                match *op {
                    StreamOp::Process(t) => {
                        durable.process(t).unwrap();
                    }
                    StreamOp::Retract(v) => durable.retract_vertex(v).unwrap(),
                }
            }
        }
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (resumed, replay) = DurableStreamLinker::open(&her, &path, None).unwrap();
            let n = replay.records as usize;
            assert!(n <= ops.len(), "cut={cut}");
            assert_eq!(
                resumed.matches(),
                prefix_matches[n],
                "cut={cut}: resumed state is not the clean {n}-op prefix"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Property (ISSUE 8 satellite): with a `FaultVfs` failing the WAL
    /// fsync at every op index `k` in turn, the set of *acknowledged*
    /// stream ops always equals the set recovered after restart — no
    /// acknowledged-op loss, no phantom ops — and degraded-mode reads
    /// (`matches()` after the failure) match the pre-fault session.
    /// After `reopen()` (the server prober's heal path) the session
    /// finishes the workload and a restart reproduces it exactly,
    /// replaying nothing beyond what was acknowledged.
    #[test]
    fn journal_fault_at_every_op_index_loses_no_acked_op_and_fabricates_none() {
        use her_store::{FaultVfs, IoFaultPlan};
        let (her, ts, vs) = system();
        let mut ops: Vec<StreamOp> = ts.iter().map(|&t| StreamOp::Process(t)).collect();
        ops.push(StreamOp::Retract(vs[0]));
        ops.push(StreamOp::Process(ts[0]));

        for k in 0..ops.len() {
            let path = temp_wal(&format!("fault-k{k}"));
            // fsync #1 is the fresh log's header sync; op index i (0-based)
            // consumes fsync #(i + 2). Fail exactly op k's sync.
            let vfs: Arc<dyn Vfs> = Arc::new(FaultVfs::new(IoFaultPlan {
                fail_fsync_from: k as u64 + 2,
                fail_fsync_count: 1,
                ..IoFaultPlan::default()
            }));
            let (mut durable, _) =
                DurableStreamLinker::open_vfs(&her, &path, Arc::clone(&vfs), None).unwrap();
            let mut reference = StreamLinker::new(&her);
            let mut acked = 0usize;
            let mut failed_at = None;
            for (i, op) in ops.iter().enumerate() {
                let r = match *op {
                    StreamOp::Process(t) => durable.process(t).map(|_| ()),
                    StreamOp::Retract(v) => durable.retract_vertex(v),
                };
                match r {
                    Ok(()) => {
                        match *op {
                            StreamOp::Process(t) => {
                                reference.process(t);
                            }
                            StreamOp::Retract(v) => reference.retract_vertex(v),
                        }
                        acked += 1;
                    }
                    Err(_) => {
                        failed_at = Some(i);
                        break;
                    }
                }
            }
            assert_eq!(failed_at, Some(k), "fault must fire exactly at op {k}");

            // Degraded-mode reads: the live session still answers from
            // memory and reflects exactly the acknowledged prefix.
            assert_eq!(durable.matches(), reference.matches(), "k={k}: degraded reads");
            assert_eq!(durable.ops_applied(), acked as u64, "k={k}");

            // Restart (before any heal): recovery equals the acked set.
            {
                let (restarted, replay) =
                    DurableStreamLinker::open_vfs(&her, &path, Arc::clone(&vfs), None).unwrap();
                assert_eq!(replay.records, acked as u64, "k={k}: phantom or lost op");
                assert_eq!(restarted.matches(), reference.matches(), "k={k}: restart");
            }

            // Self-heal: reopen trims to the acked prefix (a no-op when
            // rollback already did), then the rest of the workload lands.
            durable.reopen().unwrap();
            for op in &ops[k..] {
                match *op {
                    StreamOp::Process(t) => {
                        durable.process(t).unwrap();
                        reference.process(t);
                    }
                    StreamOp::Retract(v) => {
                        durable.retract_vertex(v).unwrap();
                        reference.retract_vertex(v);
                    }
                }
            }
            assert_eq!(durable.matches(), reference.matches(), "k={k}: post-heal");
            drop(durable);
            let (resumed, replay) =
                DurableStreamLinker::open_vfs(&her, &path, vfs, None).unwrap();
            assert_eq!(replay.records, ops.len() as u64, "k={k}: final journal");
            assert!(replay.truncated_at.is_none(), "k={k}");
            assert_eq!(resumed.matches(), reference.matches(), "k={k}: final restart");
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Satellite (ISSUE 5): durable sessions route scoring through the
    /// facade's [`crate::SharedScores`] handle — a journaled session over
    /// a vocabulary the facade already embedded performs zero re-embeds,
    /// produces exactly the matches of a plain in-memory session, and its
    /// operations tick the `stream.*` counters of the obs handle it was
    /// opened with.
    #[test]
    fn durable_session_reads_through_facade_handle() {
        let (her, ts, _) = system();
        let shared = her
            .shared_scores
            .as_ref()
            .expect("facade handle on by default")
            .clone();

        // Warm the facade handle with a plain session (the reference for
        // the equivalence check below).
        let mut reference = StreamLinker::new(&her);
        for &t in &ts {
            reference.process(t);
        }
        let embeds_after_warm = shared.embed_calls();
        assert!(embeds_after_warm > 0, "warm run must have embedded");
        let hits_after_warm = shared.shared_hits();

        let obs = her_obs::Obs::new();
        let path = temp_wal("facade-routing");
        let (mut durable, _) =
            DurableStreamLinker::open(&her, &path, Some(obs.clone())).unwrap();
        for &t in &ts {
            durable.process(t).unwrap();
        }
        assert_eq!(durable.matches(), reference.matches());
        assert_eq!(
            shared.embed_calls(),
            embeds_after_warm,
            "durable session re-embedded labels the facade handle already holds"
        );
        assert!(
            shared.shared_hits() > hits_after_warm,
            "durable session never read the shared memo"
        );
        assert_eq!(
            obs.registry.snapshot().counter("stream.tuples"),
            ts.len() as u64,
            "journaled processes must tick stream.tuples"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Checkpoint bytes round-trip and are deterministic; truncation at
    /// every offset errors instead of panicking.
    #[test]
    fn stream_checkpoint_codec_round_trips() {
        let (her, ts, _) = system();
        let mut linker = StreamLinker::new(&her);
        for &t in &ts[..3] {
            linker.process(t);
        }
        let ck = linker.checkpoint(3);
        let bytes = ck.encode();
        assert_eq!(bytes, linker.checkpoint(3).encode(), "not deterministic");
        assert_eq!(StreamCheckpoint::decode(&bytes).unwrap(), ck);
        for cut in 0..bytes.len() {
            assert!(
                StreamCheckpoint::decode(&bytes[..cut]).is_err(),
                "cut={cut}: truncated checkpoint accepted"
            );
        }
    }

    /// Warm restart: snapshot mid-session, keep journaling, then reopen
    /// from the snapshot — replay skips the snapshotted prefix and the
    /// resumed state equals the uninterrupted session, for a snapshot
    /// taken after every op.
    #[test]
    fn open_at_checkpoint_equals_uninterrupted_session() {
        let (her, ts, vs) = system();
        let ops: Vec<StreamOp> = vec![
            StreamOp::Process(ts[0]),
            StreamOp::Process(ts[1]),
            StreamOp::Retract(vs[0]),
            StreamOp::Process(ts[2]),
            StreamOp::Process(ts[3]),
        ];
        for snap_at in 0..=ops.len() {
            let path = temp_wal(&format!("warm-{snap_at}"));
            let mut snapshot = None;
            let final_matches;
            {
                let (mut durable, _) = DurableStreamLinker::open(&her, &path, None).unwrap();
                for (i, op) in ops.iter().enumerate() {
                    if i == snap_at {
                        snapshot = Some(durable.checkpoint());
                    }
                    match *op {
                        StreamOp::Process(t) => {
                            durable.process(t).unwrap();
                        }
                        StreamOp::Retract(v) => durable.retract_vertex(v).unwrap(),
                    }
                }
                if snap_at == ops.len() {
                    snapshot = Some(durable.checkpoint());
                }
                final_matches = durable.matches();
            }
            let ck = snapshot.expect("snapshot taken");
            let bytes = ck.encode();
            let ck = StreamCheckpoint::decode(&bytes).unwrap();
            let (resumed, replay) =
                DurableStreamLinker::open_at(&her, &path, None, &ck).unwrap();
            assert_eq!(
                replay.records,
                ops.len() as u64,
                "snap_at={snap_at}: replay must still scan the whole WAL"
            );
            assert_eq!(
                resumed.matches(),
                final_matches,
                "snap_at={snap_at}: warm restart diverged"
            );
            assert_eq!(resumed.ops_applied(), ops.len() as u64);
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn retraction_withdraws_matches() {
        let (her, ts, vs) = system();
        let mut linker = StreamLinker::new(&her);
        let (found, _) = linker.process(ts[0]);
        assert!(found.contains(&vs[0]));
        linker.retract_vertex(vs[0]);
        assert!(linker.matches().iter().all(|&(_, v)| v != vs[0]));
        // The invalidation is sticky: reprocessing does not resurrect it.
        let (found, _) = linker.process(ts[0]);
        assert!(!found.contains(&vs[0]));
    }
}
