//! Interaction and refinement (§IV, Exp-4).
//!
//! HER shows matching decisions to users, collects match/mismatch feedback,
//! reduces annotation noise by majority voting across several users, and
//! fine-tunes `M_v` and `M_ρ` on the confirmed false positives (marked
//! dissimilar, target 0) and false negatives (marked similar, target 1).

use crate::paramatch::Matcher;
use crate::params::Params;
use her_graph::{Graph, Interner, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A user who annotates pairs with an error rate (flips the truth with
/// probability `error_rate`), modelling imperfect human feedback.
#[derive(Clone, Debug)]
pub struct SimulatedAnnotator {
    /// Probability of producing a wrong annotation.
    pub error_rate: f64,
    rng: StdRng,
}

impl SimulatedAnnotator {
    /// Creates an annotator with the given error rate and seed.
    pub fn new(error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate));
        Self {
            error_rate,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Annotates a pair whose ground truth is `truth`.
    pub fn annotate(&mut self, truth: bool) -> bool {
        if self.rng.gen::<f64>() < self.error_rate {
            !truth
        } else {
            truth
        }
    }
}

/// Majority vote over boolean annotations (ties count as `false`,
/// the conservative non-match).
pub fn majority_vote(votes: &[bool]) -> bool {
    let yes = votes.iter().filter(|v| **v).count();
    yes * 2 > votes.len()
}

/// Configuration of one refinement round.
#[derive(Clone, Debug)]
pub struct RefineConfig {
    /// Number of users voting on each pair (the paper uses 5).
    pub users: usize,
    /// Per-user annotation error rate.
    pub error_rate: f64,
    /// Fine-tuning steps applied per corrected pair.
    pub tune_steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RefineConfig {
    fn default() -> Self {
        Self {
            users: 5,
            error_rate: 0.1,
            tune_steps: 6,
            seed: 0xfeed,
        }
    }
}

/// Outcome of a refinement round.
#[derive(Clone, Debug, Default)]
pub struct RefineOutcome {
    /// Pairs shown to users.
    pub shown: usize,
    /// False positives corrected (marked dissimilar).
    pub fp_corrected: usize,
    /// False negatives corrected (marked similar).
    pub fn_corrected: usize,
    /// The majority-voted annotations, parallel to the shown pairs —
    /// the paper's "human feedback … verify the matches": callers store
    /// these as authoritative pair verdicts.
    pub annotations: Vec<(VertexId, VertexId, bool)>,
}

/// Runs one refinement round: for each `(u, v, truth)` pair, HER's current
/// verdict is compared against the majority-voted user annotation; wrong
/// verdicts trigger fine-tuning of `M_v` (vertex labels) and `M_ρ`
/// (witness path pairs) with the annotated target.
///
/// Mutates `params`; callers must rebuild/invalide matchers afterwards.
pub fn refine_round(
    params: &mut Params,
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    shown: &[(VertexId, VertexId, bool)],
    cfg: &RefineConfig,
) -> RefineOutcome {
    // Current verdicts and witness material under the *incoming* params.
    let mut verdicts = Vec::with_capacity(shown.len());
    let mut material = Vec::with_capacity(shown.len());
    {
        let mut m = Matcher::new(gd, g, interner, params);
        for &(u, v, _) in shown {
            verdicts.push(m.is_match(u, v));
            material.push(pair_material(&mut m, gd, g, interner, u, v));
        }
    }

    let mut annotators: Vec<SimulatedAnnotator> = (0..cfg.users)
        .map(|i| SimulatedAnnotator::new(cfg.error_rate, cfg.seed.wrapping_add(i as u64)))
        .collect();

    let mut outcome = RefineOutcome {
        shown: shown.len(),
        ..Default::default()
    };
    for (i, &(u, v, truth)) in shown.iter().enumerate() {
        let votes: Vec<bool> = annotators.iter_mut().map(|a| a.annotate(truth)).collect();
        let annotated = majority_vote(&votes);
        outcome.annotations.push((u, v, annotated));
        let predicted = verdicts[i];
        if predicted == annotated {
            continue;
        }
        // FP: predicted match, annotated non-match → target 0.
        // FN: predicted non-match, annotated match → target 1.
        let target = if annotated { 1.0 } else { 0.0 };
        if annotated {
            outcome.fn_corrected += 1;
        } else {
            outcome.fp_corrected += 1;
        }
        let (lu, lv, path_pairs) = &material[i];
        // Marking an *identical* label pair dissimilar would poison every
        // other entity carrying that label (type words, shared values), so
        // target-0 tuning only applies to differing labels; the pair itself
        // is handled by the verified-match memory the caller keeps.
        let tune_mv = target > 0.5 || !lu.eq_ignore_ascii_case(lv);
        if tune_mv {
            for _ in 0..cfg.tune_steps {
                params.mv.fine_tune_pair(lu, lv, target);
            }
        }
        // Predicate-path correspondences are global knowledge: confirmed
        // matches reinforce them, but one FP must not erase a predicate
        // mapping shared by every other entity.
        if target > 0.5 {
            for (s1, s2) in path_pairs {
                params.mrho.fine_tune_pair(s1, s2, target, cfg.tune_steps);
            }
        }
    }
    outcome
}

/// Collects the labels and witness path pairs of `(u, v)` used for
/// fine-tuning: root labels plus the edge-label sequences of paired top-k
/// descendants with agreeing values.
#[allow(clippy::type_complexity)]
fn pair_material(
    m: &mut Matcher<'_>,
    gd: &Graph,
    g: &Graph,
    interner: &Interner,
    u: VertexId,
    v: VertexId,
) -> (String, String, Vec<(Vec<String>, Vec<String>)>) {
    let lu = interner.resolve(gd.label(u)).to_owned();
    let lv = interner.resolve(g.label(v)).to_owned();
    let su = m.select_d(u);
    let sv = m.select_g(v);
    let mut pairs = Vec::new();
    for (ud, pu) in su.iter() {
        for (vd, pv) in sv.iter() {
            if pu.is_empty() || pv.is_empty() {
                continue;
            }
            let sim = m
                .params()
                .mv
                .similarity(interner.resolve(gd.label(*ud)), interner.resolve(g.label(*vd)));
            if sim >= 0.85 {
                let s1: Vec<String> = pu
                    .edge_labels()
                    .iter()
                    .map(|&l| interner.resolve(l).to_owned())
                    .collect();
                let s2: Vec<String> = pv
                    .edge_labels()
                    .iter()
                    .map(|&l| interner.resolve(l).to_owned())
                    .collect();
                pairs.push((s1, s2));
            }
        }
    }
    (lu, lv, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::evaluate;
    use crate::params::Thresholds;
    use her_graph::GraphBuilder;

    #[test]
    fn majority_vote_rules() {
        assert!(majority_vote(&[true, true, false]));
        assert!(!majority_vote(&[true, false, false]));
        assert!(!majority_vote(&[true, false])); // tie → false
        assert!(!majority_vote(&[]));
    }

    #[test]
    fn annotator_with_zero_error_is_faithful() {
        let mut a = SimulatedAnnotator::new(0.0, 1);
        for truth in [true, false, true] {
            assert_eq!(a.annotate(truth), truth);
        }
    }

    #[test]
    fn annotator_with_full_error_always_flips() {
        let mut a = SimulatedAnnotator::new(1.0, 1);
        assert!(!a.annotate(true));
        assert!(a.annotate(false));
    }

    #[test]
    fn annotator_error_rate_is_approximate() {
        let mut a = SimulatedAnnotator::new(0.3, 7);
        let flips = (0..2000).filter(|_| !a.annotate(true)).count();
        let rate = flips as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "observed flip rate {rate}");
    }

    /// A false negative caused by a synonym predicate the untrained model
    /// can't see: refinement must recover it within a few rounds.
    #[test]
    fn refinement_fixes_false_negative() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let uc = b.add_vertex("white");
        b.add_edge(u, uc, "color");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("product"); // label mismatch → h_v < σ initially
        let vc = b2.add_vertex("white");
        b2.add_edge(v, vc, "hasColor");
        let (g, interner) = b2.build();

        let mut params =
            Params::untrained(64, 41).with_thresholds(Thresholds::new(0.9, 0.01, 5));
        let ann = vec![(u, v, true)];
        let before = evaluate(&gd, &g, &interner, &params, &ann).f_measure();
        assert_eq!(before, 0.0, "fixture must start as a false negative");

        let cfg = RefineConfig {
            error_rate: 0.0,
            ..Default::default()
        };
        let mut rounds = 0;
        for _ in 0..5 {
            rounds += 1;
            let out = refine_round(&mut params, &gd, &g, &interner, &ann, &cfg);
            if out.fn_corrected == 0 {
                break;
            }
            if evaluate(&gd, &g, &interner, &params, &ann).f_measure() == 1.0 {
                break;
            }
        }
        let after = evaluate(&gd, &g, &interner, &params, &ann).f_measure();
        assert_eq!(after, 1.0, "refinement failed after {rounds} rounds");
    }

    /// A false positive across *similar but distinct* labels gets
    /// suppressed by fine-tuning. (Identical-label false positives are
    /// instead remembered as verified non-matches by the system facade —
    /// pushing an identical pair to 0 would poison every other entity
    /// with that label.)
    #[test]
    fn refinement_fixes_false_positive() {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("Paris");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("Paris Hilton"); // similar label, different entity
        let (g, interner) = b2.build();

        let mut params =
            Params::untrained(64, 43).with_thresholds(Thresholds::new(0.7, 0.0, 5));
        let ann = vec![(u, v, false)];
        {
            let mut m = Matcher::new(&gd, &g, &interner, &params);
            assert!(m.is_match(u, v), "fixture must start as a false positive");
        }
        let cfg = RefineConfig {
            error_rate: 0.0,
            ..Default::default()
        };
        for _ in 0..5 {
            refine_round(&mut params, &gd, &g, &interner, &ann, &cfg);
            let mut m = Matcher::new(&gd, &g, &interner, &params);
            if !m.is_match(u, v) {
                return;
            }
        }
        panic!("false positive survived 5 refinement rounds");
    }

    #[test]
    fn noisy_feedback_handled_by_majority() {
        // With 5 users at 20% error, majority voting almost surely recovers
        // the truth for every pair; the round must not mis-tune.
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("item");
        let (g, interner) = b2.build();
        let mut params =
            Params::untrained(64, 47).with_thresholds(Thresholds::new(0.9, 0.0, 5));
        // Truth: match; HER already predicts match → nothing to correct.
        let out = refine_round(
            &mut params,
            &gd,
            &g,
            &interner,
            &[(u, v, true)],
            &RefineConfig {
                error_rate: 0.2,
                ..Default::default()
            },
        );
        assert_eq!(out.fp_corrected + out.fn_corrected, 0);
    }
}
