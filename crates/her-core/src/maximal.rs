//! The unique maximal match `Π(u₀, v₀)` (Proposition 4, appendix A).
//!
//! Parametric simulation is coinductive: the paper proves that a unique
//! *maximum* relation `Π` witnesses every match — the union of any two
//! witnesses is a witness. This module computes it directly as a greatest
//! fixpoint: start from all pairs passing `h_v ≥ σ`, repeatedly delete
//! pairs whose best lineage set (a maximum-weight injective mapping over
//! currently-surviving pairs) cannot reach `δ`, until stable.
//!
//! The fixpoint is exponentially more careful than `ParaMatch` (it solves
//! the assignment problem exactly per pair instead of greedy-with-
//! backtracking), so it serves as the *reference oracle* in tests: any
//! witness `ParaMatch` returns must be contained in the maximal match.

use crate::params::Params;
use crate::scores::ScoreCache;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, Path, VertexId};

/// The maximal-match computation over `(G_D, G)`.
pub struct MaximalMatch<'a> {
    gd: &'a Graph,
    g: &'a Graph,
    interner: &'a Interner,
    params: &'a Params,
}

impl<'a> MaximalMatch<'a> {
    /// Creates the oracle over a graph pair sharing `interner`.
    pub fn new(gd: &'a Graph, g: &'a Graph, interner: &'a Interner, params: &'a Params) -> Self {
        Self {
            gd,
            g,
            interner,
            params,
        }
    }

    /// Computes the unique maximal simulation relation over *all* vertex
    /// pairs (restricted to pairs reachable under `h_v ≥ σ`). Exponential
    /// in `k` in the worst case (exact assignment): use on small graphs.
    pub fn compute(&self) -> FxHashSet<(VertexId, VertexId)> {
        let t = self.params.thresholds;
        let mut scores = ScoreCache::new();

        // Selections per vertex, both sides.
        let mut sel_d: FxHashMap<VertexId, Vec<(VertexId, Path)>> = FxHashMap::default();
        for u in self.gd.vertices() {
            sel_d.insert(u, self.params.ranker.select(self.gd, u, t.k));
        }
        let mut sel_g: FxHashMap<VertexId, Vec<(VertexId, Path)>> = FxHashMap::default();
        for v in self.g.vertices() {
            sel_g.insert(v, self.params.ranker.select(self.g, v, t.k));
        }

        // Greatest-fixpoint start: all σ-passing pairs.
        let mut alive: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
        for u in self.gd.vertices() {
            for v in self.g.vertices() {
                let hv = scores.hv(
                    self.params,
                    self.interner,
                    self.gd.label(u),
                    self.g.label(v),
                );
                if hv >= t.sigma {
                    alive.insert((u, v));
                }
            }
        }

        // Refine: drop pairs whose optimal lineage cannot reach δ.
        let mut changed = true;
        while changed {
            changed = false;
            let snapshot: Vec<(VertexId, VertexId)> = alive.iter().copied().collect();
            for (u, v) in snapshot {
                if self.gd.is_leaf(u) {
                    continue; // label check alone suffices
                }
                let su = &sel_d[&u];
                let sv = &sel_g[&v];
                // Weight matrix over currently-alive descendant pairs.
                let mut weights: Vec<Vec<f32>> = Vec::with_capacity(su.len());
                for (ud, pu) in su {
                    let mut row = Vec::with_capacity(sv.len());
                    for (vd, pv) in sv {
                        let ok = alive.contains(&(*ud, *vd));
                        row.push(if ok {
                            scores.hrho(self.params, self.interner, pu, pv)
                        } else {
                            0.0
                        });
                    }
                    weights.push(row);
                }
                if best_assignment(&weights) < t.delta {
                    alive.remove(&(u, v));
                    changed = true;
                }
            }
        }
        alive
    }
}

/// Maximum-weight partial injective assignment, exact via branch-and-bound
/// over rows (fine for k ≤ ~8; the oracle is for small test graphs).
fn best_assignment(weights: &[Vec<f32>]) -> f32 {
    fn recurse(weights: &[Vec<f32>], row: usize, used: &mut Vec<bool>, acc: f32, best: &mut f32) {
        if acc > *best {
            *best = acc;
        }
        if row == weights.len() {
            return;
        }
        // Upper bound: remaining rows each take their max cell.
        let bound: f32 = acc
            + weights[row..]
                .iter()
                .map(|r| r.iter().cloned().fold(0.0f32, f32::max))
                .sum::<f32>();
        if bound <= *best {
            return;
        }
        // Skip this row entirely (partial mapping).
        recurse(weights, row + 1, used, acc, best);
        for (j, &w) in weights[row].iter().enumerate() {
            if w > 0.0 && !used[j] {
                used[j] = true;
                recurse(weights, row + 1, used, acc + w, best);
                used[j] = false;
            }
        }
    }
    if weights.is_empty() {
        return 0.0;
    }
    let cols = weights[0].len();
    let mut used = vec![false; cols];
    let mut best = 0.0;
    recurse(weights, 0, &mut used, 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paramatch::Matcher;
    use crate::params::{Params, Thresholds};
    use her_graph::GraphBuilder;

    fn params(sigma: f32, delta: f32, k: usize) -> Params {
        Params::untrained(32, 101).with_thresholds(Thresholds::new(sigma, delta, k))
    }

    /// Two-entity world with matching values.
    fn fixture() -> (Graph, Graph, Interner) {
        let mut b = GraphBuilder::new();
        let u = b.add_vertex("item");
        let uc = b.add_vertex("white");
        let um = b.add_vertex("foam");
        b.add_edge(u, uc, "color");
        b.add_edge(u, um, "material");
        let (gd, i) = b.build();
        let mut b2 = GraphBuilder::with_interner(i);
        let v = b2.add_vertex("item");
        let vc = b2.add_vertex("white");
        let vm = b2.add_vertex("foam");
        b2.add_edge(v, vc, "color");
        b2.add_edge(v, vm, "material");
        let decoy = b2.add_vertex("item");
        let dc = b2.add_vertex("red");
        b2.add_edge(decoy, dc, "color");
        let (g, interner) = b2.build();
        (gd, g, interner)
    }

    #[test]
    fn assignment_known_values() {
        // Rows pick disjoint columns: best = 0.9 + 0.8.
        let w = vec![vec![0.9, 0.5], vec![0.7, 0.8]];
        assert!((best_assignment(&w) - 1.7).abs() < 1e-6);
        // Injectivity forces a choice: both rows prefer column 0, and the
        // best combination is 0.9 alone or 0.1 + 0.8 — both 0.9.
        let w = vec![vec![0.9, 0.1], vec![0.8, 0.0]];
        assert!((best_assignment(&w) - 0.9).abs() < 1e-6);
        assert_eq!(best_assignment(&[]), 0.0);
    }

    #[test]
    fn maximal_contains_paramatch_witnesses() {
        let (gd, g, interner) = fixture();
        let p = params(0.9, 0.3, 4);
        let oracle = MaximalMatch::new(&gd, &g, &interner, &p).compute();
        let mut m = Matcher::new(&gd, &g, &interner, &p);
        for u in gd.vertices() {
            for v in g.vertices() {
                if m.is_match(u, v) {
                    let w = m.witness(u, v).unwrap();
                    for pair in w {
                        assert!(
                            oracle.contains(&pair),
                            "witness pair {pair:?} outside the maximal match"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn maximal_is_a_valid_witness_everywhere() {
        // Every surviving non-leaf pair has an alive lineage reaching δ.
        let (gd, g, interner) = fixture();
        let p = params(0.9, 0.3, 4);
        let oracle = MaximalMatch::new(&gd, &g, &interner, &p).compute();
        let mut scores = ScoreCache::new();
        for &(u, v) in &oracle {
            let hv = scores.hv(&p, &interner, gd.label(u), g.label(v));
            assert!(hv >= 0.9 - 1e-6);
        }
        // The true pair (roots are vertex 0 in both graphs) survives; the
        // decoy root (vertex 3 of G) does not.
        assert!(oracle.contains(&(VertexId(0), VertexId(0))));
        assert!(!oracle.contains(&(VertexId(0), VertexId(3))));
    }

    #[test]
    fn union_property_monotone_in_delta() {
        // Lower δ can only grow the maximal match (greatest fixpoint
        // monotonicity in the constraint).
        let (gd, g, interner) = fixture();
        let loose = MaximalMatch::new(&gd, &g, &interner, &params(0.9, 0.1, 4)).compute();
        let tight = MaximalMatch::new(&gd, &g, &interner, &params(0.9, 0.8, 4)).compute();
        for pair in &tight {
            assert!(loose.contains(pair), "{pair:?} lost when δ loosened");
        }
        assert!(tight.len() <= loose.len());
    }

    #[test]
    fn deterministic() {
        let (gd, g, interner) = fixture();
        let p = params(0.85, 0.4, 4);
        let a = MaximalMatch::new(&gd, &g, &interner, &p).compute();
        let b = MaximalMatch::new(&gd, &g, &interner, &p).compute();
        let mut av: Vec<_> = a.into_iter().collect();
        let mut bv: Vec<_> = b.into_iter().collect();
        av.sort();
        bv.sort();
        assert_eq!(av, bv);
    }
}
