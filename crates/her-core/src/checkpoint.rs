//! Serializable checkpoint state for [`Matcher`](crate::Matcher).
//!
//! A [`MatcherCheckpoint`] captures exactly the state that cannot be
//! re-derived from the inputs: the verdict `cache` with its lineage sets,
//! the border/assumption bookkeeping of the parallel engine, the sticky
//! exhaustion flag and the stats counters. Derived memos (`ecache`
//! selections, score caches — private or the process-wide
//! [`SharedScores`](crate::SharedScores) layer) are deliberately *not*
//! checkpointed — they re-fill on demand and only affect speed, never
//! verdicts. A restored matcher adopts the shared layer's *current*
//! invalidation generation, so a snapshot taken before a fine-tune
//! round restores against the post-fine-tune models without ever
//! serving stale scores.
//!
//! The byte format is the explicit little-endian [`her_store::codec`];
//! entries are sorted so the same matcher state always serializes to the
//! same bytes (checkpoint determinism is what makes "resumed run equals
//! uninterrupted run" testable bit-for-bit).

use crate::paramatch::{ExhaustReason, MatchStats, PairKey};
use her_graph::VertexId;
use her_store::{CodecError, Dec, Enc};

const VERSION: u32 = 1;

/// One cached verdict: the pair, its validity, and its lineage set.
pub type CheckpointEntry = (PairKey, bool, Vec<PairKey>);

/// Snapshot of a [`Matcher`](crate::Matcher)'s durable state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MatcherCheckpoint {
    /// Cached verdicts, sorted by pair for deterministic bytes.
    pub entries: Vec<CheckpointEntry>,
    /// Border vertices of `G` (parallel fragments), sorted; `None` when
    /// the matcher runs without fragment borders.
    pub border: Option<Vec<VertexId>>,
    /// Border pairs assumed valid but not yet drained by the engine.
    pub new_assumptions: Vec<PairKey>,
    /// Sticky budget-exhaustion state.
    pub exhausted: Option<ExhaustReason>,
    /// Monotone work counters.
    pub stats: MatchStats,
}

fn put_pair(e: &mut Enc, (u, v): PairKey) {
    e.put_u32(u.0).put_u32(v.0);
}

fn get_pair(d: &mut Dec<'_>) -> Result<PairKey, CodecError> {
    Ok((VertexId(d.u32()?), VertexId(d.u32()?)))
}

fn reason_tag(r: Option<ExhaustReason>) -> u8 {
    match r {
        None => 0,
        Some(ExhaustReason::Calls) => 1,
        Some(ExhaustReason::Deadline) => 2,
        Some(ExhaustReason::CacheCapacity) => 3,
        Some(ExhaustReason::Cancelled) => 4,
    }
}

fn tag_reason(tag: u8, at: usize) -> Result<Option<ExhaustReason>, CodecError> {
    Ok(match tag {
        0 => None,
        1 => Some(ExhaustReason::Calls),
        2 => Some(ExhaustReason::Deadline),
        3 => Some(ExhaustReason::CacheCapacity),
        4 => Some(ExhaustReason::Cancelled),
        b => {
            return Err(CodecError {
                offset: at,
                message: format!("bad ExhaustReason tag {b:#04x}"),
            })
        }
    })
}

impl MatcherCheckpoint {
    /// Serializes to deterministic bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u32(VERSION);
        e.put_u8(reason_tag(self.exhausted));
        e.put_u64(self.stats.calls)
            .put_u64(self.stats.cache_hits)
            .put_u64(self.stats.early_terminations)
            .put_u64(self.stats.cleanups)
            .put_u64(self.stats.ecache_hits);
        match &self.border {
            None => {
                e.put_bool(false);
            }
            Some(b) => {
                e.put_bool(true).put_u32(b.len() as u32);
                for v in b {
                    e.put_u32(v.0);
                }
            }
        }
        e.put_u32(self.new_assumptions.len() as u32);
        for &p in &self.new_assumptions {
            put_pair(&mut e, p);
        }
        e.put_u32(self.entries.len() as u32);
        for (pair, valid, deps) in &self.entries {
            put_pair(&mut e, *pair);
            e.put_bool(*valid).put_u32(deps.len() as u32);
            for &d in deps {
                put_pair(&mut e, d);
            }
        }
        e.into_bytes()
    }

    /// Decodes bytes written by [`MatcherCheckpoint::encode`]. Every read
    /// is bounds-checked; malformed input errors, never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(bytes);
        let version = d.u32()?;
        if version != VERSION {
            return Err(CodecError {
                offset: 0,
                message: format!("matcher checkpoint v{version} (this build reads v{VERSION})"),
            });
        }
        let tag = d.u8()?;
        let exhausted = tag_reason(tag, 4)?;
        let stats = MatchStats {
            calls: d.u64()?,
            cache_hits: d.u64()?,
            early_terminations: d.u64()?,
            cleanups: d.u64()?,
            ecache_hits: d.u64()?,
        };
        let border = if d.bool()? {
            let n = d.u32()? as usize;
            let mut b = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                b.push(VertexId(d.u32()?));
            }
            Some(b)
        } else {
            None
        };
        let n_assumed = d.u32()? as usize;
        let mut new_assumptions = Vec::with_capacity(n_assumed.min(1 << 20));
        for _ in 0..n_assumed {
            new_assumptions.push(get_pair(&mut d)?);
        }
        let n = d.u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let pair = get_pair(&mut d)?;
            let valid = d.bool()?;
            let n_deps = d.u32()? as usize;
            let mut deps = Vec::with_capacity(n_deps.min(1 << 20));
            for _ in 0..n_deps {
                deps.push(get_pair(&mut d)?);
            }
            entries.push((pair, valid, deps));
        }
        d.finish()?;
        Ok(MatcherCheckpoint {
            entries,
            border,
            new_assumptions,
            exhausted,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatcherCheckpoint {
        let p = |a: u32, b: u32| (VertexId(a), VertexId(b));
        MatcherCheckpoint {
            entries: vec![
                (p(0, 0), true, vec![p(1, 1), p(2, 2)]),
                (p(1, 1), true, vec![p(2, 2)]),
                (p(2, 2), false, vec![]),
            ],
            border: Some(vec![VertexId(7), VertexId(9)]),
            new_assumptions: vec![p(3, 7)],
            exhausted: Some(ExhaustReason::Deadline),
            stats: MatchStats {
                calls: 10,
                cache_hits: 4,
                early_terminations: 1,
                cleanups: 2,
                ecache_hits: 3,
            },
        }
    }

    #[test]
    fn round_trips() {
        let ck = sample();
        let bytes = ck.encode();
        assert_eq!(MatcherCheckpoint::decode(&bytes).unwrap(), ck);
        let empty = MatcherCheckpoint::default();
        assert_eq!(
            MatcherCheckpoint::decode(&empty.encode()).unwrap(),
            empty
        );
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    /// Truncation at every byte offset errors cleanly (no panic, no
    /// partial struct).
    #[test]
    fn truncation_never_panics() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                MatcherCheckpoint::decode(&bytes[..cut]).is_err(),
                "cut={cut}: truncated checkpoint accepted"
            );
        }
    }

    #[test]
    fn bad_reason_tag_is_an_error() {
        let mut bytes = sample().encode();
        bytes[4] = 0xAA; // the ExhaustReason tag byte
        assert!(MatcherCheckpoint::decode(&bytes).is_err());
    }
}
