//! The HER system facade (§II architecture).
//!
//! Wires the five modules together: RDB2RDF (canonical graph), Learn
//! (models + thresholds), and the three query modes SPair / VPair / APair.
//!
//! ```text
//!   Database D ──RDB2RDF──▶ G_D ┐
//!                                ├─ Learn (M_v, M_ρ, M_r, σ, δ, k) ─▶ SPair/VPair/APair
//!   Graph G ────────────────────┘
//! ```

use crate::apair;
use crate::index::InvertedIndex;
use crate::learn::{self, Annotation, SearchSpace};
use crate::paramatch::{Budget, CancelToken, ExhaustReason, MatchStats, Matcher, MatcherOptions};
use crate::pool::MatcherPool;
use crate::params::{Params, Thresholds};
use crate::refine::{refine_round, RefineConfig, RefineOutcome};
use crate::schema_match::{schema_matches, SchemaMatch};
use crate::shared_scores::SharedScores;
use crate::vpair;
use her_embed::corpus::{corpus_to_strings, lm_training_paths, walk_corpus};
use her_embed::{PathLm, PathSimModel, SentenceModel, TopKRanker};
use her_graph::walk::WalkConfig;
use her_graph::{Graph, Interner, VertexId};
use her_rdb::rdb2rdf::{canonicalize_with_interner, CanonicalGraph};
use her_rdb::{Database, TupleRef};

/// Construction/training configuration for [`Her`].
#[derive(Clone, Debug)]
pub struct HerConfig {
    /// Embedding dimension for `M_v` and `M_ρ` (Table VII sweeps this).
    pub dim: usize,
    /// Initial thresholds (may be replaced by random search in `learn`).
    pub thresholds: Thresholds,
    /// Master seed for model initialisation and training shuffles.
    pub seed: u64,
    /// Random-walk corpus configuration for pre-training `M_ρ` and `M_r`.
    pub walk: WalkConfig,
    /// Maximum path length for `h_r` and LM training paths (paper: 4).
    pub lm_max_len: usize,
    /// Sample size of vertices used to prepare LM training paths
    /// (`None` = all; the paper samples representative entities).
    pub lm_sample: Option<usize>,
    /// Pre-training epochs for `M_ρ`.
    pub pretrain_epochs: usize,
    /// Supervised training epochs for `M_ρ`.
    pub train_epochs: usize,
    /// Build an inverted index over `G` for candidate blocking.
    pub use_blocking: bool,
    /// Synonym lexicon injected into `M_v` (stands in for pre-trained
    /// semantic knowledge).
    pub synonyms: Vec<(String, String)>,
    /// Share one [`SharedScores`] memo across every matcher the facade
    /// creates, so repeated queries (SPair/VPair/APair) never re-embed
    /// the same label. Pure memoization — results are unchanged; off is
    /// only useful for ablation.
    pub use_shared_scores: bool,
}

impl Default for HerConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            thresholds: Thresholds::default(),
            seed: 0x4845_5221,
            walk: WalkConfig::default(),
            lm_max_len: 4,
            lm_sample: Some(512),
            pretrain_epochs: 15,
            train_epochs: 150,
            use_blocking: true,
            synonyms: Vec::new(),
            use_shared_scores: true,
        }
    }
}

/// The assembled HER system over one `(D, G)` pair.
pub struct Her {
    /// The canonical graph `G_D` with the tuple↔vertex mapping; its
    /// interner is the *shared* label space of both graphs.
    pub cg: CanonicalGraph,
    /// The data graph `G`.
    pub g: Graph,
    /// Learned parameters.
    pub params: Params,
    /// Optional blocking index over `G`.
    pub index: Option<InvertedIndex>,
    /// User-verified pair verdicts from refinement rounds (§IV: feedback
    /// both fine-tunes the models and *verifies the matches*). Takes
    /// precedence over parametric simulation in `spair`/`evaluate`.
    /// Write through [`Her::insert_verified`] so the by-tuple overlay
    /// index stays coherent (direct inserts are visible to `spair`/
    /// `evaluate` but not to the vpair/apair overlays).
    pub verified: her_graph::hash::FxHashMap<(TupleRef, VertexId), bool>,
    /// [`Her::verified`] re-indexed by tuple, so the per-request overlay
    /// in vpair/apair touches only the queried tuple's verdicts instead
    /// of scanning the whole map (O(|verified|·|matches|) before).
    verified_by_tuple: her_graph::hash::FxHashMap<TupleRef, Vec<(VertexId, bool)>>,
    /// Process-wide score memo injected into every matcher this facade
    /// creates (`None` when [`HerConfig::use_shared_scores`] is off).
    /// [`Her::learn`] and [`Her::refine`] invalidate it after mutating
    /// the models, bumping its generation so live matchers re-sync.
    pub shared_scores: Option<SharedScores>,
}

impl Her {
    /// Builds the system: canonicalises `D` into the label space of `G`,
    /// trains the path LM (`M_r`) on both graphs, fits IDF for `M_v`, and
    /// pre-trains `M_ρ` on the random-walk corpus. Supervised training
    /// happens separately in [`Her::learn`].
    pub fn build(db: &Database, g: Graph, g_interner: Interner, cfg: &HerConfig) -> Self {
        let cg = canonicalize_with_interner(db, g_interner);
        let interner = &cg.interner;

        // M_v: synonym lexicon + IDF over all labels of both graphs.
        let mut mv = SentenceModel::new(cfg.dim);
        for (a, b) in &cfg.synonyms {
            mv.add_synonym(a, b);
        }
        mv.fit_idf(interner.iter().map(|(_, s)| s));

        // M_r: path LM trained on walks plus max-PRA training paths of G,
        // and on the (short) attribute paths of G_D.
        let mut lm = PathLm::new();
        let g_walks = walk_corpus(&g, &cfg.walk);
        lm.train(&g_walks);
        let sample: Option<Vec<VertexId>> = cfg.lm_sample.map(|n| {
            // Deterministic stride sample over G's vertices.
            let total = g.vertex_count().max(1);
            let stride = (total / n.max(1)).max(1);
            g.vertices().step_by(stride).take(n).collect()
        });
        let g_paths = lm_training_paths(&g, interner, sample.as_deref(), cfg.lm_max_len);
        lm.train(&g_paths);
        let d_walks = walk_corpus(&cg.graph, &cfg.walk);
        lm.train(&d_walks);

        // M_ρ: pre-train on the G corpus rendered to strings.
        let mut mrho = PathSimModel::new(cfg.dim, cfg.seed);
        let mut pre = corpus_to_strings(&g_walks, interner);
        pre.truncate(2000); // plenty for the head to learn the overlap prior
        mrho.pretrain(&pre, cfg.pretrain_epochs, cfg.seed ^ 0xabcd);

        let ranker = TopKRanker::new(lm).with_max_len(cfg.lm_max_len);
        let params = Params::new(mv, mrho, ranker, cfg.thresholds);
        let index = cfg.use_blocking.then(|| InvertedIndex::build(&g, interner));

        Self {
            cg,
            g,
            params,
            index,
            verified: Default::default(),
            verified_by_tuple: Default::default(),
            shared_scores: cfg.use_shared_scores.then(SharedScores::new),
        }
    }

    /// Records a user-verified verdict for `(t, v)`, keeping both the
    /// flat map and the by-tuple overlay index coherent. The last write
    /// for a pair wins, matching map semantics.
    pub fn insert_verified(&mut self, t: TupleRef, v: VertexId, verdict: bool) {
        self.verified.insert((t, v), verdict);
        let per = self.verified_by_tuple.entry(t).or_default();
        match per.iter_mut().find(|(vv, _)| *vv == v) {
            Some(slot) => slot.1 = verdict,
            None => per.push((v, verdict)),
        }
    }

    /// Supervised learning (§IV): trains `M_ρ` on path pairs derived from
    /// the positive training annotations, then picks `(σ, δ, k)` by random
    /// search on the validation annotations. Returns the validation
    /// F-measure achieved.
    pub fn learn(
        &mut self,
        train: &[(TupleRef, VertexId, bool)],
        validation: &[(TupleRef, VertexId, bool)],
        cfg: &HerConfig,
        space: &SearchSpace,
    ) -> f64 {
        let positives: Vec<(VertexId, VertexId)> = train
            .iter()
            .filter(|(_, _, m)| *m)
            .map(|&(t, v, _)| (self.cg.vertex_of(t), v))
            .collect();
        let pairs = learn::derive_path_pairs(
            &self.cg.graph,
            &self.g,
            &self.cg.interner,
            &self.params,
            &positives,
            0.85,
            0.3,
        );
        if !pairs.is_empty() {
            self.params.mrho.train(&pairs, cfg.train_epochs, cfg.seed ^ 0x7777);
            // Training mutated `M_ρ`: any score memoised before this point
            // is stale. Bump the shared generation before the threshold
            // search below (and any live matcher) reads scores again.
            if let Some(s) = &self.shared_scores {
                s.invalidate();
            }
        }
        let val: Vec<Annotation> = validation
            .iter()
            .map(|&(t, v, m)| (self.cg.vertex_of(t), v, m))
            .collect();
        let (thresholds, f) = learn::random_search(
            &self.cg.graph,
            &self.g,
            &self.cg.interner,
            &self.params,
            &val,
            space,
        );
        self.params.thresholds = thresholds;
        f
    }

    /// A fresh stateful matcher (reuse across queries for cache benefits).
    /// Scores read through the facade's [`SharedScores`] when enabled, so
    /// even throwaway matchers never re-embed known labels.
    pub fn matcher(&self) -> Matcher<'_> {
        self.matcher_with(MatcherOptions::default())
    }

    /// A matcher with ablation toggles. The facade's [`SharedScores`]
    /// handle is injected unless the options already carry one.
    pub fn matcher_with(&self, mut options: MatcherOptions) -> Matcher<'_> {
        if options.shared_scores.is_none() {
            options.shared_scores = self.shared_scores.clone();
        }
        Matcher::with_options(
            &self.cg.graph,
            &self.g,
            &self.cg.interner,
            &self.params,
            options,
        )
    }

    /// Mode SPair: does tuple `t` match vertex `v`? User-verified verdicts
    /// take precedence over parametric simulation.
    pub fn spair(&self, t: TupleRef, v: VertexId) -> bool {
        if let Some(&verdict) = self.verified.get(&(t, v)) {
            return verdict;
        }
        self.matcher().is_match(self.cg.vertex_of(t), v)
    }

    /// SPair against a caller-provided matcher (amortises caches).
    pub fn spair_with(&self, m: &mut Matcher<'_>, t: TupleRef, v: VertexId) -> bool {
        m.is_match(self.cg.vertex_of(t), v)
    }

    /// Mode VPair: all vertices of `G` matching tuple `t` (user-verified
    /// verdicts override parametric simulation, keeping all three modes
    /// consistent after refinement).
    pub fn vpair(&self, t: TupleRef) -> Vec<VertexId> {
        let mut m = self.matcher();
        let mut out = vpair::vpair(&mut m, self.cg.vertex_of(t), self.index.as_ref());
        self.apply_verified(t, &mut out);
        out
    }

    /// Budget-aware VPair: runs under the supplied matcher options (budget
    /// and/or cancellation token) and degrades gracefully — matches found
    /// before exhaustion are returned with the undecided candidates listed,
    /// instead of being discarded. Verified verdicts are overlaid on the
    /// matched set as in [`Her::vpair`].
    pub fn try_vpair(&self, t: TupleRef, options: MatcherOptions) -> vpair::VpairRun {
        let mut m = self.matcher_with(options);
        let mut run = vpair::try_vpair(&mut m, self.cg.vertex_of(t), self.index.as_ref());
        self.apply_verified(t, &mut run.matches);
        run
    }

    /// Overlays verified verdicts for tuple `t` onto a match list.
    /// Touches only tuple `t`'s entries in the by-tuple index —
    /// O(|verified(t)| + |matches|) per request, independent of how many
    /// verdicts other tuples have accumulated.
    fn apply_verified(&self, t: TupleRef, matches: &mut Vec<VertexId>) {
        let Some(per) = self.verified_by_tuple.get(&t) else {
            return;
        };
        let denied: her_graph::hash::FxHashSet<VertexId> = per
            .iter()
            .filter(|&&(_, ok)| !ok)
            .map(|&(v, _)| v)
            .collect();
        if !denied.is_empty() {
            matches.retain(|v| !denied.contains(v));
        }
        let present: her_graph::hash::FxHashSet<VertexId> = matches.iter().copied().collect();
        for &(v, ok) in per {
            if ok && !present.contains(&v) {
                matches.push(v);
            }
        }
        matches.sort();
    }

    /// Mode APair: all matches across `D` and `G`.
    pub fn apair(&self) -> Vec<(TupleRef, VertexId)> {
        self.try_apair(MatcherOptions::default()).0
    }

    /// Budget-aware APair: runs under the supplied matcher options and
    /// degrades gracefully. The returned matches are *sound* — every pair
    /// was fully verified before the budget tripped — and the second
    /// component reports the exhaustion reason (`None` = complete run).
    pub fn try_apair(
        &self,
        options: MatcherOptions,
    ) -> (Vec<(TupleRef, VertexId)>, Option<ExhaustReason>) {
        let (matches, exhausted, _) = self.try_apair_stats(options);
        (matches, exhausted)
    }

    /// As [`Her::try_apair`], additionally reporting the run's
    /// [`MatchStats`] (the matcher is fresh per call, so the stats are
    /// this run's own spend — what the serving path's flight recorder
    /// files per request).
    pub fn try_apair_stats(
        &self,
        options: MatcherOptions,
    ) -> (
        Vec<(TupleRef, VertexId)>,
        Option<ExhaustReason>,
        MatchStats,
    ) {
        let mut m = self.matcher_with(options);
        let mut tuple_vertices: Vec<(TupleRef, VertexId)> =
            self.cg.tuple_vertices().collect();
        tuple_vertices.sort();
        let us: Vec<VertexId> = tuple_vertices.iter().map(|&(_, u)| u).collect();
        let matched = apair::apair(&mut m, &us, self.index.as_ref());
        let exhausted = m.exhausted();
        let mut out: Vec<(TupleRef, VertexId)> = matched
            .into_iter()
            .filter_map(|(u, v)| self.cg.tuple_of(u).map(|t| (t, v)))
            .collect();
        // Overlay user-verified verdicts (as in vpair/spair).
        self.overlay_verified_pairs(&mut out);
        out.sort();
        let stats = m.stats();
        (out, exhausted, stats)
    }

    /// The APair-wide verified overlay: drops pairs verified false and
    /// adds pairs verified true, with set-based membership so the cost
    /// is O(|verified| + |out|) rather than O(|verified|·|out|).
    fn overlay_verified_pairs(&self, out: &mut Vec<(TupleRef, VertexId)>) {
        if self.verified.is_empty() {
            return;
        }
        out.retain(|pair| self.verified.get(pair) != Some(&false));
        let present: her_graph::hash::FxHashSet<(TupleRef, VertexId)> =
            out.iter().copied().collect();
        for (&pair, &verdict) in &self.verified {
            if verdict && !present.contains(&pair) {
                out.push(pair);
            }
        }
    }

    /// Runs `f` against a matcher checked out of `pool` — warm when one
    /// is available, fresh otherwise — re-armed with this request's
    /// budget, cancellation token and trace context. The ticket reports
    /// whether the checkout hit and whether the warm matcher was
    /// generation-stale. The serving path threads every pooled
    /// vpair/apair request through here.
    pub fn with_pooled_matcher<'h, R>(
        &self,
        pool: &MatcherPool<'h>,
        budget: Budget,
        cancel: CancelToken,
        ctx: her_obs::ReqCtx,
        f: impl FnOnce(&mut Matcher<'h>) -> R,
    ) -> (R, crate::pool::PoolTicket) {
        pool.run(budget, cancel, ctx, f)
    }

    /// [`Her::try_vpair`] through a [`MatcherPool`]: identical results
    /// (pooling is pure reuse), but the returned [`MatchStats`] are this
    /// request's *own* spend — a pooled matcher's counters are
    /// cumulative, so the run is diffed against a checkout snapshot.
    pub fn try_vpair_pooled(
        &self,
        pool: &MatcherPool<'_>,
        t: TupleRef,
        budget: Budget,
        cancel: CancelToken,
        ctx: her_obs::ReqCtx,
    ) -> (vpair::VpairRun, crate::pool::PoolTicket) {
        let (mut run, ticket) = pool.run(budget, cancel, ctx, |m| {
            let before = m.stats();
            let mut run = vpair::try_vpair(m, self.cg.vertex_of(t), self.index.as_ref());
            run.stats = run.stats.delta_since(&before);
            run
        });
        self.apply_verified(t, &mut run.matches);
        (run, ticket)
    }

    /// [`Her::try_apair_stats`] through a [`MatcherPool`]; stats are the
    /// request's own spend, as in [`Her::try_vpair_pooled`].
    pub fn try_apair_stats_pooled(
        &self,
        pool: &MatcherPool<'_>,
        budget: Budget,
        cancel: CancelToken,
        ctx: her_obs::ReqCtx,
    ) -> (
        Vec<(TupleRef, VertexId)>,
        Option<ExhaustReason>,
        MatchStats,
        crate::pool::PoolTicket,
    ) {
        let ((matched, exhausted, stats), ticket) = pool.run(budget, cancel, ctx, |m| {
            let before = m.stats();
            let mut tuple_vertices: Vec<(TupleRef, VertexId)> =
                self.cg.tuple_vertices().collect();
            tuple_vertices.sort();
            let us: Vec<VertexId> = tuple_vertices.iter().map(|&(_, u)| u).collect();
            let matched = apair::apair(m, &us, self.index.as_ref());
            let exhausted = m.exhausted();
            let stats = m.stats().delta_since(&before);
            (matched, exhausted, stats)
        });
        let mut out: Vec<(TupleRef, VertexId)> = matched
            .into_iter()
            .filter_map(|(u, v)| self.cg.tuple_of(u).map(|t| (t, v)))
            .collect();
        self.overlay_verified_pairs(&mut out);
        out.sort();
        (out, exhausted, stats, ticket)
    }

    /// Schema matches `Γ(u_t, v)` for a matched tuple/vertex pair.
    pub fn schema_match(&self, t: TupleRef, v: VertexId) -> Option<Vec<SchemaMatch>> {
        let mut m = self.matcher();
        let u = self.cg.vertex_of(t);
        if !m.is_match(u, v) {
            return None;
        }
        schema_matches(&mut m, u, v)
    }

    /// One user-feedback refinement round over the given annotated pairs.
    pub fn refine(
        &mut self,
        shown: &[(TupleRef, VertexId, bool)],
        cfg: &RefineConfig,
    ) -> RefineOutcome {
        let pairs: Vec<(VertexId, VertexId, bool)> = shown
            .iter()
            .map(|&(t, v, m)| (self.cg.vertex_of(t), v, m))
            .collect();
        let outcome = refine_round(
            &mut self.params,
            &self.cg.graph,
            &self.g,
            &self.cg.interner,
            &pairs,
            cfg,
        );
        // Fine-tuning mutated `M_v`/`M_ρ`: drop the shared memos and bump
        // the generation so every matcher re-scores with the refined
        // models (refine's contract: callers must invalidate matchers).
        if let Some(s) = &self.shared_scores {
            s.invalidate();
        }
        for (&(t, v, _), &(_, _, annotated)) in shown.iter().zip(&outcome.annotations) {
            self.insert_verified(t, v, annotated);
        }
        outcome
    }

    /// Evaluates accuracy over annotated tuple/vertex pairs (honouring
    /// user-verified verdicts, as the paper's Exp-4 does).
    pub fn evaluate(&self, pairs: &[(TupleRef, VertexId, bool)]) -> crate::metrics::Accuracy {
        let mut m = self.matcher();
        let mut acc = crate::metrics::Accuracy::default();
        for &(t, v, truth) in pairs {
            let predicted = match self.verified.get(&(t, v)) {
                Some(&verdict) => verdict,
                None => m.is_match(self.cg.vertex_of(t), v),
            };
            acc.record(predicted, truth);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_rdb::schema::{RelationSchema, Schema};
    use her_rdb::tuple::Tuple;
    use her_rdb::value::Value;
    use her_graph::GraphBuilder;

    /// A two-tuple database and a graph holding both entities plus noise.
    fn fixture() -> (Database, Graph, Interner, Vec<TupleRef>, Vec<VertexId>) {
        let mut s = Schema::new();
        let item = s.add_relation(RelationSchema::new("item", &["name", "color"]));
        let mut db = Database::new(s);
        let t1 = db.insert(
            item,
            Tuple::new(vec![Value::str("Dame Shoes"), Value::str("white")]),
        );
        let t2 = db.insert(
            item,
            Tuple::new(vec![Value::str("Runner Pro"), Value::str("red")]),
        );

        let mut b = GraphBuilder::new();
        let v1 = b.add_vertex("item");
        let v1n = b.add_vertex("Dame Shoes");
        let v1c = b.add_vertex("white");
        b.add_edge(v1, v1n, "name");
        b.add_edge(v1, v1c, "hasColor");
        let v2 = b.add_vertex("item");
        let v2n = b.add_vertex("Runner Pro");
        let v2c = b.add_vertex("red");
        b.add_edge(v2, v2n, "name");
        b.add_edge(v2, v2c, "hasColor");
        let (g, i) = b.build();
        (db, g, i, vec![t1, t2], vec![v1, v2])
    }

    fn cfg() -> HerConfig {
        HerConfig {
            thresholds: Thresholds::new(0.9, 0.05, 5),
            use_blocking: false,
            ..Default::default()
        }
    }

    #[test]
    fn build_shares_label_space() {
        let (db, g, i, ts, _) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        // "white" interned once, resolvable from the canonical side.
        let u = her.cg.vertex_of(ts[0]);
        assert_eq!(her.cg.interner.resolve(her.cg.graph.label(u)), "item");
        assert!(her.cg.interner.get("hasColor").is_some());
    }

    #[test]
    fn spair_distinguishes_entities() {
        let (db, g, i, ts, vs) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        assert!(her.spair(ts[0], vs[0]));
        assert!(her.spair(ts[1], vs[1]));
        assert!(!her.spair(ts[0], vs[1]));
        assert!(!her.spair(ts[1], vs[0]));
    }

    #[test]
    fn vpair_returns_the_right_vertex() {
        let (db, g, i, ts, vs) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        assert_eq!(her.vpair(ts[0]), vec![vs[0]]);
        assert_eq!(her.vpair(ts[1]), vec![vs[1]]);
    }

    #[test]
    fn apair_finds_all_and_only_truth() {
        let (db, g, i, ts, vs) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        assert_eq!(her.apair(), vec![(ts[0], vs[0]), (ts[1], vs[1])]);
    }

    #[test]
    fn blocking_index_consistent_with_scan() {
        let (db, g, i, ts, _) = fixture();
        let mut c = cfg();
        c.use_blocking = true;
        let her_block = Her::build(&db, g.clone(), i.clone(), &c);
        c.use_blocking = false;
        let her_scan = Her::build(&db, g, i, &c);
        assert_eq!(her_block.vpair(ts[0]), her_scan.vpair(ts[0]));
        assert_eq!(her_block.apair(), her_scan.apair());
    }

    #[test]
    fn evaluate_reports_perfect_on_fixture() {
        let (db, g, i, ts, vs) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        let ann = vec![
            (ts[0], vs[0], true),
            (ts[1], vs[1], true),
            (ts[0], vs[1], false),
            (ts[1], vs[0], false),
        ];
        assert_eq!(her.evaluate(&ann).f_measure(), 1.0);
    }

    #[test]
    fn learn_trains_mrho_and_keeps_accuracy() {
        let (db, g, i, ts, vs) = fixture();
        let mut her = Her::build(&db, g, i, &cfg());
        let train = vec![(ts[0], vs[0], true), (ts[0], vs[1], false)];
        let val = vec![(ts[1], vs[1], true), (ts[1], vs[0], false)];
        let f = her.learn(&train, &val, &cfg(), &SearchSpace::default());
        assert!(f >= 0.99, "validation F after learn was {f}");
    }

    /// The facade shares one score memo across all the matchers it
    /// creates: a repeated query embeds nothing new, results unchanged,
    /// and refinement bumps the shared generation.
    #[test]
    fn facade_shares_scores_across_queries_and_refines_safely() {
        let (db, g, i, ts, vs) = fixture();
        let mut her = Her::build(&db, g.clone(), i.clone(), &cfg());
        let shared = her.shared_scores.clone().expect("shared scores on by default");
        let first = her.apair();
        let embeds = shared.embed_calls();
        assert!(embeds > 0);
        // Re-running any mode reuses the shared tables wholesale.
        assert_eq!(her.apair(), first);
        assert!(her.spair(ts[0], vs[0]));
        assert_eq!(shared.embed_calls(), embeds, "no re-embedding across queries");
        // Ablation: shared scoring must not change any result.
        let mut c = cfg();
        c.use_shared_scores = false;
        let her_private = Her::build(&db, g, i, &c);
        assert!(her_private.shared_scores.is_none());
        assert_eq!(her_private.apair(), first);
        // Refinement fine-tunes the models → generation bump.
        let before = shared.generation();
        her.refine(&[(ts[0], vs[1], false)], &RefineConfig::default());
        assert!(shared.generation() > before);
    }

    /// Regression for the verified-overlay scan: `apply_verified` used
    /// to walk the whole verified map per request (O(|verified|·
    /// |matches|)); the by-tuple index must keep a query's overlay
    /// correct — and untouched by other tuples' verdicts — no matter
    /// how many verdicts have accumulated elsewhere.
    #[test]
    fn verified_overlay_is_correct_under_a_large_verified_set() {
        let (db, g, i, ts, vs) = fixture();
        let mut her = Her::build(&db, g, i, &cfg());
        let baseline = her.vpair(ts[0]);
        assert_eq!(baseline, vec![vs[0]]);

        // Bury the two real tuples' verdicts in a large pile of
        // verdicts for fabricated tuples (rows that no query touches).
        for row in 0..5_000u32 {
            let ghost = TupleRef::new(7, row);
            her.insert_verified(ghost, VertexId(row + 100), row % 2 == 0);
        }
        // Verdicts for the queried tuple: deny its true match, assert
        // the other entity's vertex instead — and flip one of them to
        // check last-write-wins survives the index.
        her.insert_verified(ts[0], vs[0], true);
        her.insert_verified(ts[0], vs[0], false);
        her.insert_verified(ts[0], vs[1], true);

        let overlaid = her.vpair(ts[0]);
        assert!(!overlaid.contains(&vs[0]), "denied match survived");
        assert!(overlaid.contains(&vs[1]), "asserted match missing");
        // The untouched tuple is unaffected by 5k+ foreign verdicts.
        assert_eq!(her.vpair(ts[1]), vec![vs[1]]);
        // And the apair-wide overlay agrees on the real tuples.
        let all = her.apair();
        assert!(all.contains(&(ts[0], vs[1])));
        assert!(!all.contains(&(ts[0], vs[0])));
        assert!(all.contains(&(ts[1], vs[1])));
    }

    #[test]
    fn schema_match_explains_color() {
        let (db, g, i, ts, vs) = fixture();
        let her = Her::build(&db, g, i, &cfg());
        let gamma = her.schema_match(ts[0], vs[0]).unwrap();
        let attrs: Vec<&str> = gamma
            .iter()
            .map(|sm| her.cg.interner.resolve(sm.attr))
            .collect();
        assert!(attrs.contains(&"color") || attrs.contains(&"name"), "{attrs:?}");
    }
}
