//! Inverted-index blocking for candidate generation.
//!
//! §VI remarks that HER uses inverted indices on "critical information" to
//! locate candidate vertices quickly (e.g. papers of the same year share a
//! block), in place of classic blocking which would break the recursive
//! descendant checks. [`InvertedIndex`] maps label tokens to the vertices
//! carrying them; a query label's candidates are the union of its tokens'
//! posting lists.

use her_embed::tokenize::tokenize;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, Interner, LabelId, VertexId};

/// Token → posting-list index over the vertex labels of one graph.
pub struct InvertedIndex {
    postings: FxHashMap<String, Vec<VertexId>>,
    /// Tokens appearing on more than this fraction of vertices are treated
    /// as stop tokens and skipped at query time (they destroy selectivity).
    stop_threshold: f64,
    vertex_count: usize,
}

impl InvertedIndex {
    /// Indexes every vertex of `g` under each token of its label *and* the
    /// labels of its children. Entity vertices carry generic type labels
    /// ("item", "person"), so the paper's "critical information" — the
    /// attribute values one hop away (colours, years, names) — is what
    /// actually blocks.
    pub fn build(g: &Graph, interner: &Interner) -> Self {
        let mut postings: FxHashMap<String, Vec<VertexId>> = FxHashMap::default();
        // Tokenise each distinct label once.
        let mut label_tokens: FxHashMap<LabelId, Vec<String>> = FxHashMap::default();
        let mut tokens_of = |l: LabelId| -> Vec<String> {
            label_tokens
                .entry(l)
                .or_insert_with(|| tokenize(interner.resolve(l)))
                .clone()
        };
        for v in g.vertices() {
            let mut mine: Vec<String> = tokens_of(g.label(v));
            for &c in g.children(v) {
                mine.extend(tokens_of(g.label(c)));
            }
            mine.sort();
            mine.dedup();
            for t in mine {
                postings.entry(t).or_default().push(v);
            }
        }
        Self {
            postings,
            stop_threshold: 0.5,
            vertex_count: g.vertex_count(),
        }
    }

    /// Vertices whose label shares at least one non-stop token with `label`,
    /// deduplicated, in id order.
    ///
    /// When *every* indexed query token is a stop token, skipping them all
    /// would return no candidates at all — silently losing every true
    /// match and breaking blocking-vs-scan equivalence on skewed label
    /// distributions. In that case the least-frequent (most selective)
    /// stop token's posting list is used as a fallback: a superset of the
    /// vertices sharing all query tokens, so recall is preserved. Tokens
    /// absent from the index contribute nothing either way.
    pub fn candidates(&self, label: &str) -> Vec<VertexId> {
        let mut out: FxHashSet<VertexId> = FxHashSet::default();
        let cap = ((self.vertex_count as f64) * self.stop_threshold).max(1.0) as usize;
        let mut fallback: Option<&Vec<VertexId>> = None;
        for t in tokenize(label) {
            if let Some(list) = self.postings.get(&t) {
                if list.len() > cap {
                    // Stop token: remember the most selective one in case
                    // no non-stop token survives.
                    if fallback.is_none_or(|f| list.len() < f.len()) {
                        fallback = Some(list);
                    }
                    continue;
                }
                out.extend(list.iter().copied());
            }
        }
        if out.is_empty() {
            if let Some(list) = fallback {
                out.extend(list.iter().copied());
            }
        }
        let mut v: Vec<VertexId> = out.into_iter().collect();
        v.sort();
        v
    }

    /// Number of distinct indexed tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }
}

/// The blocking query for a `G_D` vertex: its own label plus its children's
/// labels (the tuple's attribute values), mirroring what [`InvertedIndex::build`]
/// indexes on the `G` side.
pub fn blocking_query(gd: &Graph, interner: &Interner, u: VertexId) -> String {
    let mut q = interner.resolve(gd.label(u)).to_owned();
    for &c in gd.children(u) {
        q.push(' ');
        q.push_str(interner.resolve(gd.label(c)));
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use her_graph::GraphBuilder;

    fn graph() -> (Graph, Interner, Vec<VertexId>) {
        let mut b = GraphBuilder::new();
        let shoes = b.add_vertex("Dame Basketball Shoes");
        let running = b.add_vertex("Lightweight Running Shoes");
        let germany = b.add_vertex("Germany");
        let dame7 = b.add_vertex("Dame Gen 7");
        let (g, i) = b.build();
        (g, i, vec![shoes, running, germany, dame7])
    }

    #[test]
    fn shared_token_yields_candidates() {
        let (g, i, vs) = graph();
        let idx = InvertedIndex::build(&g, &i);
        let c = idx.candidates("Dame Basketball Shoes D7");
        assert!(c.contains(&vs[0]));
        assert!(c.contains(&vs[3])); // shares "dame"
        assert!(c.contains(&vs[1])); // shares "shoes"
        assert!(!c.contains(&vs[2]));
    }

    #[test]
    fn no_shared_tokens_no_candidates() {
        let (g, i, _) = graph();
        let idx = InvertedIndex::build(&g, &i);
        assert!(idx.candidates("phylon foam").is_empty());
    }

    #[test]
    fn candidates_are_sorted_and_unique() {
        let (g, i, _) = graph();
        let idx = InvertedIndex::build(&g, &i);
        let c = idx.candidates("Dame Shoes");
        let mut sorted = c.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(c, sorted);
    }

    #[test]
    fn stop_tokens_skipped() {
        // "common" appears on >50% of vertices → it is skipped whenever a
        // more selective token is available.
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add_vertex(&format!("common label {i}"));
        }
        b.add_vertex("rare gem");
        let (g, i) = b.build();
        let idx = InvertedIndex::build(&g, &i);
        assert_eq!(idx.candidates("rare gem").len(), 1);
        // Specific tokens still work even if combined with stop tokens:
        // the stop token's 10-vertex list is not unioned in.
        assert_eq!(idx.candidates("common 3").len(), 1);
    }

    /// Regression: a query whose every indexed token is a stop token used
    /// to return *no* candidates, silently losing all true matches on
    /// skewed label distributions. It now falls back to the least-frequent
    /// stop token's posting list.
    #[test]
    fn all_stop_token_query_falls_back_to_most_selective_list() {
        let mut b = GraphBuilder::new();
        // >50% of vertices share every query token ("common" on all 10,
        // "label" on 6) — both are stop tokens in an 11-vertex graph.
        let mut with_label = Vec::new();
        for i in 0..10 {
            let v = if i < 6 {
                b.add_vertex(&format!("common label {i}"))
            } else {
                b.add_vertex(&format!("common thing {i}"))
            };
            if i < 6 {
                with_label.push(v);
            }
        }
        b.add_vertex("rare gem");
        let (g, i) = b.build();
        let idx = InvertedIndex::build(&g, &i);
        // "label" (6 vertices) is more selective than "common" (10): the
        // fallback is exactly its posting list.
        assert_eq!(idx.candidates("common label"), with_label);
        // A single all-stop token falls back to its own list.
        assert_eq!(idx.candidates("common").len(), 10);
        // Tokens absent from the index still yield nothing.
        assert!(idx.candidates("phylon foam").is_empty());
    }

    #[test]
    fn token_count_reflects_vocabulary() {
        let (g, i, _) = graph();
        let idx = InvertedIndex::build(&g, &i);
        assert!(idx.token_count() >= 7);
    }
}
