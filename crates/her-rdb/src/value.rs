//! Attribute values.

use crate::tuple::TupleRef;
use serde::{Deserialize, Serialize};

/// A single attribute value in a tuple.
///
/// `Ref` values implement foreign keys: the value *is* the referenced tuple
/// (Table I's `brand` column holds `b1`, a reference into relation `brand`).
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL. RDB2RDF maps no vertex for a null attribute.
    Null,
    /// A string value.
    Str(String),
    /// An integer value.
    Int(i64),
    /// A floating-point value.
    Float(f64),
    /// A foreign-key reference to another tuple.
    Ref(TupleRef),
}

impl Value {
    /// Renders the value as the label string RDB2RDF attaches to the
    /// attribute vertex. `None` for NULL and for references (which become
    /// edges, not attribute vertices).
    pub fn as_label(&self) -> Option<String> {
        match self {
            Value::Null | Value::Ref(_) => None,
            Value::Str(s) => Some(s.clone()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(format_float(*f)),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The referenced tuple, if this is a foreign-key value.
    pub fn as_ref(&self) -> Option<TupleRef> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }

    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        format!("{}", f)
    }
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Ref(r) => write!(f, "&{r:?}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<TupleRef> for Value {
    fn from(r: TupleRef) -> Self {
        Value::Ref(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_for_scalars() {
        assert_eq!(Value::str("white").as_label().as_deref(), Some("white"));
        assert_eq!(Value::Int(500).as_label().as_deref(), Some("500"));
        assert_eq!(Value::Float(2.5).as_label().as_deref(), Some("2.5"));
        assert_eq!(Value::Float(2.0).as_label().as_deref(), Some("2.0"));
    }

    #[test]
    fn null_and_ref_have_no_label() {
        assert_eq!(Value::Null.as_label(), None);
        let r = TupleRef::new(0, 3);
        assert_eq!(Value::Ref(r).as_label(), None);
        assert_eq!(Value::Ref(r).as_ref(), Some(r));
        assert_eq!(Value::str("x").as_ref(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }
}
