//! Loading relations from external formats (CSV, JSON lines) into a
//! [`Database`] — §VIII's "extend HER to other data formats".

use crate::csv;
use crate::database::Database;
use crate::json;
use crate::schema::{RelationSchema, Schema};
use crate::tuple::{Tuple, TupleRef};

/// Errors raised while loading external data.
#[derive(Debug)]
pub enum LoadError {
    /// CSV syntax error.
    Csv(csv::CsvError),
    /// JSON syntax error.
    Json(json::JsonError),
    /// The data's columns don't match the target relation's schema.
    SchemaMismatch {
        /// The relation involved.
        relation: String,
        /// Explanation.
        message: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Csv(e) => write!(f, "{e}"),
            LoadError::Json(e) => write!(f, "{e}"),
            LoadError::SchemaMismatch { relation, message } => {
                write!(f, "schema mismatch for {relation:?}: {message}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<csv::CsvError> for LoadError {
    fn from(e: csv::CsvError) -> Self {
        LoadError::Csv(e)
    }
}

impl From<json::JsonError> for LoadError {
    fn from(e: json::JsonError) -> Self {
        LoadError::Json(e)
    }
}

/// Creates a single-relation database from CSV text: the header row names
/// the attributes, every field becomes a string value (empty → NULL).
pub fn database_from_csv(relation_name: &str, text: &str) -> Result<Database, LoadError> {
    let (header, tuples) = csv::parse_relation(text)?;
    let names: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut schema = Schema::new();
    let idx = schema.add_relation(RelationSchema::new(relation_name, &names));
    let mut db = Database::new(schema);
    for t in tuples {
        db.insert(idx, t);
    }
    Ok(db)
}

/// Appends CSV rows to an existing relation (header must match the schema's
/// attribute names in order). Returns the inserted tuple refs.
pub fn append_csv(
    db: &mut Database,
    relation_name: &str,
    text: &str,
) -> Result<Vec<TupleRef>, LoadError> {
    let (header, tuples) = csv::parse_relation(text)?;
    let idx = db
        .schema()
        .relation_index(relation_name)
        .ok_or_else(|| LoadError::SchemaMismatch {
            relation: relation_name.to_owned(),
            message: "unknown relation".to_owned(),
        })?;
    let attrs = db.schema().relation(idx).attrs().to_vec();
    if header != attrs {
        return Err(LoadError::SchemaMismatch {
            relation: relation_name.to_owned(),
            message: format!("CSV header {header:?} != schema attributes {attrs:?}"),
        });
    }
    Ok(tuples.into_iter().map(|t| db.insert(idx, t)).collect())
}

/// Creates a single-relation database from JSON-lines text: the attribute
/// set is the union of keys across objects; missing keys become NULL.
pub fn database_from_json_lines(
    relation_name: &str,
    text: &str,
) -> Result<Database, LoadError> {
    let (header, rows) = json::parse_lines(text)?;
    let names: Vec<&str> = header.iter().map(|h| h.as_str()).collect();
    let mut schema = Schema::new();
    let idx = schema.add_relation(RelationSchema::new(relation_name, &names));
    let mut db = Database::new(schema);
    for row in rows {
        db.insert(idx, Tuple::new(row));
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn csv_to_database() {
        let db = database_from_csv("item", "name,color\nDame Shoes,white\nRunner,\n").unwrap();
        assert_eq!(db.tuple_count(), 2);
        let t0 = TupleRef::new(0, 0);
        assert_eq!(db.attr_value(t0, "name"), Some(&Value::str("Dame Shoes")));
        let t1 = TupleRef::new(0, 1);
        assert_eq!(db.attr_value(t1, "color"), Some(&Value::Null));
    }

    #[test]
    fn append_checks_header() {
        let mut db = database_from_csv("item", "name,color\na,b\n").unwrap();
        let added = append_csv(&mut db, "item", "name,color\nc,d\n").unwrap();
        assert_eq!(added.len(), 1);
        assert_eq!(db.tuple_count(), 2);
        let err = append_csv(&mut db, "item", "wrong,cols\nx,y\n").unwrap_err();
        assert!(matches!(err, LoadError::SchemaMismatch { .. }));
        assert!(append_csv(&mut db, "nope", "a\n1\n").is_err());
    }

    #[test]
    fn json_lines_to_database() {
        let db = database_from_json_lines(
            "movie",
            "{\"title\": \"Alien\", \"year\": 1979}\n{\"title\": \"Heat\"}\n",
        )
        .unwrap();
        assert_eq!(db.tuple_count(), 2);
        let t0 = TupleRef::new(0, 0);
        assert_eq!(db.attr_value(t0, "year"), Some(&Value::Int(1979)));
        let t1 = TupleRef::new(0, 1);
        assert_eq!(db.attr_value(t1, "year"), Some(&Value::Null));
    }

    #[test]
    fn csv_error_propagates() {
        assert!(matches!(
            database_from_csv("r", "a,b\n\"oops\n"),
            Err(LoadError::Csv(_))
        ));
    }
}
