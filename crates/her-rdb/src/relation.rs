//! Relation instances.

use crate::tuple::Tuple;
use serde::{Deserialize, Serialize};

/// An instance of one relation schema: an ordered collection of tuples.
///
/// (The paper treats relations as sets; we keep insertion order so row
/// indices are stable [`crate::TupleRef`] targets.)
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Relation {
    tuples: Vec<Tuple>,
}

impl Relation {
    /// An empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a tuple; returns its row index.
    pub fn push(&mut self, t: Tuple) -> u32 {
        self.tuples.push(t);
        (self.tuples.len() - 1) as u32
    }

    /// The tuple at `row`.
    pub fn get(&self, row: u32) -> &Tuple {
        &self.tuples[row as usize]
    }

    /// All tuples in row order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn push_and_get() {
        let mut r = Relation::new();
        assert!(r.is_empty());
        let row = r.push(Tuple::new(vec![Value::str("a")]));
        assert_eq!(row, 0);
        let row2 = r.push(Tuple::new(vec![Value::str("b")]));
        assert_eq!(row2, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1).get(0), &Value::str("b"));
    }
}
