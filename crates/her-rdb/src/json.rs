//! Minimal JSON ingestion (the paper's §VIII future work: "extend HER to
//! other data formats such as JSON").
//!
//! Parses a restricted but practical JSON subset — objects with string,
//! number, boolean and null values, arrays of such objects — sufficient to
//! load JSON-lines exports as relations. A hand-rolled recursive-descent
//! parser keeps the crate dependency-free.

use crate::value::Value;

/// A parsed JSON scalar.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as f64; integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
}

impl JsonValue {
    /// Converts to a relational [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            JsonValue::Null => Value::Null,
            JsonValue::Bool(b) => Value::Str(b.to_string()),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    Value::Int(*n as i64)
                } else {
                    Value::Float(*n)
                }
            }
            JsonValue::String(s) => Value::Str(s.clone()),
        }
    }
}

/// Parse error with byte offset.
#[derive(Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_owned(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn parse_object(&mut self) -> Result<Vec<(String, JsonValue)>, JsonError> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_scalar()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'n') => self.parse_keyword("null", JsonValue::Null),
            Some(b't') => self.parse_keyword("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_keyword("false", JsonValue::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a scalar value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("expected {word:?}"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(n) => Ok(JsonValue::Number(n)),
            Err(_) => self.err("invalid number"),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("invalid \\u escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError {
                            offset: self.pos,
                            message: "invalid UTF-8".to_owned(),
                        })?;
                    let Some(c) = s.chars().next() else {
                        return self.err("unexpected end of input in string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

/// Parses one flat JSON object into `(key, value)` pairs.
pub fn parse_object(text: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let obj = p.parse_object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content");
    }
    Ok(obj)
}

/// Parses JSON-lines text (one flat object per non-empty line) into
/// `(header, rows)`: the header is the union of keys in first-seen order;
/// missing keys become [`Value::Null`].
pub fn parse_lines(text: &str) -> Result<(Vec<String>, Vec<Vec<Value>>), JsonError> {
    let mut header: Vec<String> = Vec::new();
    let mut objects = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_object(line)?;
        for (k, _) in &obj {
            if !header.contains(k) {
                header.push(k.clone());
            }
        }
        objects.push(obj);
    }
    let rows = objects
        .into_iter()
        .map(|obj| {
            header
                .iter()
                .map(|k| {
                    obj.iter()
                        .find(|(key, _)| key == k)
                        .map(|(_, v)| v.to_value())
                        .unwrap_or(Value::Null)
                })
                .collect()
        })
        .collect();
    Ok((header, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_object() {
        let obj = parse_object(r#"{"name": "Dame Shoes", "qty": 500, "ok": true}"#).unwrap();
        assert_eq!(obj.len(), 3);
        assert_eq!(obj[0], ("name".into(), JsonValue::String("Dame Shoes".into())));
        assert_eq!(obj[1], ("qty".into(), JsonValue::Number(500.0)));
        assert_eq!(obj[2], ("ok".into(), JsonValue::Bool(true)));
    }

    #[test]
    fn empty_object_and_null() {
        assert!(parse_object("{}").unwrap().is_empty());
        let obj = parse_object(r#"{"a": null}"#).unwrap();
        assert_eq!(obj[0].1, JsonValue::Null);
    }

    #[test]
    fn string_escapes() {
        let obj = parse_object(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(obj[0].1, JsonValue::String("a\"b\\c\ndA".into()));
    }

    #[test]
    fn unicode_passthrough() {
        let obj = parse_object(r#"{"city": "Cần Đước"}"#).unwrap();
        assert_eq!(obj[0].1, JsonValue::String("Cần Đước".into()));
    }

    #[test]
    fn numbers_become_int_or_float() {
        assert_eq!(JsonValue::Number(500.0).to_value(), Value::Int(500));
        assert_eq!(JsonValue::Number(2.5).to_value(), Value::Float(2.5));
        let obj = parse_object(r#"{"x": -3.5e2}"#).unwrap();
        assert_eq!(obj[0].1, JsonValue::Number(-350.0));
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_object(r#"{"a": }"#).unwrap_err();
        assert!(e.message.contains("scalar"));
        assert!(e.offset >= 5);
        assert!(parse_object(r#"{"a": 1} extra"#).is_err());
        assert!(parse_object(r#"{"unterminated"#).is_err());
    }

    /// Truncated escapes must surface as parse errors, never panics: the
    /// escaped quote swallows the closing delimiter in `{"a": "\"}`, so the
    /// string (and then the input) just ends.
    #[test]
    fn truncated_escapes_error_instead_of_panicking() {
        let e = parse_object("{\"a\": \"\\\"}").unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
        let e = parse_object("{\"a\": \"\\").unwrap_err();
        assert!(e.message.contains("escape"), "{e}");
        let e = parse_object("{\"a\": \"\\u12").unwrap_err();
        assert!(e.message.contains("\\u"), "{e}");
        assert!(parse_object("{\"a\": \"").is_err());
    }

    #[test]
    fn json_lines_aligns_columns() {
        let text = "{\"a\": \"x\", \"b\": 1}\n\n{\"b\": 2, \"c\": \"y\"}\n";
        let (header, rows) = parse_lines(text).unwrap();
        assert_eq!(header, vec!["a", "b", "c"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::str("x"), Value::Int(1), Value::Null]);
        assert_eq!(rows[1], vec![Value::Null, Value::Int(2), Value::str("y")]);
    }
}
