//! RDB2RDF: the canonical mapping `f_D` from a database to a graph.
//!
//! Following the W3C direct-mapping rules the paper adopts (§II), for a
//! database `D` of schema `R` the canonical graph `G_D = f_D(D)` contains:
//!
//! 1. one vertex `u_t` labeled `R` per tuple `t` of relation schema `R`;
//! 2. one vertex `u_{t,A}` per non-null scalar attribute `A` of `t`, labeled
//!    with the value `t.A`, connected by an edge `(u_t, u_{t,A})` labeled `A`;
//! 3. one edge `(u_t, u_{t'})` per foreign-key attribute `A` of `t`
//!    referencing tuple `t'`, labeled `A` and flagged with the distinguished
//!    marker `γ` (exposed via [`CanonicalGraph::is_fk_edge`]).
//!
//! The mapping is 1-1 on tuples: [`CanonicalGraph::vertex_of`] and
//! [`CanonicalGraph::tuple_of`] navigate both directions, which is exactly
//! what module SPair needs to find `u_t` for a user-supplied tuple `t`.

use crate::database::Database;
use crate::tuple::TupleRef;
use crate::value::Value;
use her_graph::hash::{FxHashMap, FxHashSet};
use her_graph::{Graph, GraphBuilder, Interner, VertexId};

/// The canonical graph `G_D` of a database, with the tuple↔vertex mapping.
pub struct CanonicalGraph {
    /// The graph `G_D`.
    pub graph: Graph,
    /// Interner resolving `G_D`'s labels (possibly shared with `G`).
    pub interner: Interner,
    tuple_vertex: FxHashMap<TupleRef, VertexId>,
    vertex_tuple: FxHashMap<VertexId, TupleRef>,
    fk_edges: FxHashSet<(VertexId, VertexId)>,
}

impl CanonicalGraph {
    /// The vertex `u_t` denoting tuple `t`.
    pub fn vertex_of(&self, t: TupleRef) -> VertexId {
        self.tuple_vertex[&t]
    }

    /// The tuple denoted by `v`, if `v` is a tuple vertex (attribute
    /// vertices return `None`).
    pub fn tuple_of(&self, v: VertexId) -> Option<TupleRef> {
        self.vertex_tuple.get(&v).copied()
    }

    /// Whether `t` denotes a tuple of the canonicalised database.
    /// `vertex_of` panics on unknown tuples; boundary code (e.g. a server
    /// validating a request) checks here first.
    pub fn has_tuple(&self, t: TupleRef) -> bool {
        self.tuple_vertex.contains_key(&t)
    }

    /// Whether edge `(u, v)` carries the foreign-key marker `γ`.
    pub fn is_fk_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.fk_edges.contains(&(u, v))
    }

    /// All tuple vertices (the images of `f_D` on tuples).
    pub fn tuple_vertices(&self) -> impl Iterator<Item = (TupleRef, VertexId)> + '_ {
        self.tuple_vertex.iter().map(|(&t, &v)| (t, v))
    }

    /// Number of tuple vertices.
    pub fn tuple_vertex_count(&self) -> usize {
        self.tuple_vertex.len()
    }
}

/// Applies the canonical mapping with a fresh interner.
pub fn canonicalize(db: &Database) -> CanonicalGraph {
    canonicalize_with_interner(db, Interner::new())
}

/// Applies the canonical mapping, continuing `interner` so `G_D` shares a
/// label space with a previously-built graph `G`.
pub fn canonicalize_with_interner(db: &Database, interner: Interner) -> CanonicalGraph {
    let mut b = GraphBuilder::with_interner(interner);
    let mut tuple_vertex: FxHashMap<TupleRef, VertexId> = FxHashMap::default();
    let mut vertex_tuple: FxHashMap<VertexId, TupleRef> = FxHashMap::default();
    let mut fk_edges: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();

    // Pass 1: a vertex per tuple, labeled by the relation name.
    for (tr, _) in db.tuples() {
        let rel_name = db.schema().relation(tr.relation as usize).name();
        let u = b.add_vertex(rel_name);
        tuple_vertex.insert(tr, u);
        vertex_tuple.insert(u, tr);
    }

    // Pass 2: attribute vertices and edges; foreign-key edges.
    for (tr, t) in db.tuples() {
        let u_t = tuple_vertex[&tr];
        let rs = db.schema().relation(tr.relation as usize);
        for (i, v) in t.values().iter().enumerate() {
            let attr = &rs.attrs()[i];
            match v {
                Value::Ref(target) => {
                    let u_target = tuple_vertex[target];
                    b.add_edge(u_t, u_target, attr);
                    fk_edges.insert((u_t, u_target));
                }
                other => {
                    if let Some(label) = other.as_label() {
                        let u_attr = b.add_vertex(&label);
                        b.add_edge(u_t, u_attr, attr);
                    }
                    // NULL: no vertex, no edge.
                }
            }
        }
    }

    let (graph, interner) = b.build();
    CanonicalGraph {
        graph,
        interner,
        tuple_vertex,
        vertex_tuple,
        fk_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelationSchema, Schema};
    use crate::tuple::Tuple;

    /// The paper's running example: tuples t1 (item) and b1 (brand),
    /// producing the canonical graph of Fig. 3.
    fn paper_db() -> (Database, TupleRef, TupleRef) {
        let mut s = Schema::new();
        let brand_idx = s.add_relation(RelationSchema::new(
            "brand",
            &["name", "country", "manufacturer", "made_in"],
        ));
        let item_idx = s.add_relation(
            RelationSchema::new(
                "item",
                &["item", "material", "color", "type", "brand", "qty"],
            )
            .with_foreign_key("brand", brand_idx),
        );
        let mut db = Database::new(s);
        let b1 = db.insert(
            brand_idx,
            Tuple::new(vec![
                Value::str("Addidas Originals"),
                Value::str("Germany"),
                Value::str("Addidas AG"),
                Value::str("Can Duoc, VN"),
            ]),
        );
        let t1 = db.insert(
            item_idx,
            Tuple::new(vec![
                Value::str("Dame Basketball Shoes D7"),
                Value::str("phylon foam"),
                Value::str("white"),
                Value::str("Dame 7"),
                Value::Ref(b1),
                Value::Int(500),
            ]),
        );
        (db, t1, b1)
    }

    #[test]
    fn fig3_shape() {
        let (db, t1, b1) = paper_db();
        let cg = canonicalize(&db);
        // 2 tuple vertices + 4 brand attributes + 5 scalar item attributes.
        assert_eq!(cg.graph.vertex_count(), 11);
        // 4 + 5 attribute edges + 1 FK edge.
        assert_eq!(cg.graph.edge_count(), 10);
        let u1 = cg.vertex_of(t1);
        let u2 = cg.vertex_of(b1);
        assert_eq!(cg.interner.resolve(cg.graph.label(u1)), "item");
        assert_eq!(cg.interner.resolve(cg.graph.label(u2)), "brand");
        assert!(cg.graph.has_edge(u1, u2));
        assert!(cg.is_fk_edge(u1, u2));
    }

    #[test]
    fn attribute_edges_carry_attr_names() {
        let (db, t1, _) = paper_db();
        let cg = canonicalize(&db);
        let u1 = cg.vertex_of(t1);
        let labels: Vec<&str> = cg
            .graph
            .out_edges(u1)
            .map(|(l, _)| cg.interner.resolve(l))
            .collect();
        for expected in ["item", "material", "color", "type", "brand", "qty"] {
            assert!(labels.contains(&expected), "missing edge label {expected}");
        }
    }

    #[test]
    fn attribute_vertices_carry_values() {
        let (db, t1, _) = paper_db();
        let cg = canonicalize(&db);
        let u1 = cg.vertex_of(t1);
        let material = cg
            .graph
            .out_edges(u1)
            .find(|(l, _)| cg.interner.resolve(*l) == "material")
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(cg.interner.resolve(cg.graph.label(material)), "phylon foam");
        let qty = cg
            .graph
            .out_edges(u1)
            .find(|(l, _)| cg.interner.resolve(*l) == "qty")
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(cg.interner.resolve(cg.graph.label(qty)), "500");
    }

    #[test]
    fn mapping_is_bijective_on_tuples() {
        let (db, t1, b1) = paper_db();
        let cg = canonicalize(&db);
        for tr in [t1, b1] {
            assert_eq!(cg.tuple_of(cg.vertex_of(tr)), Some(tr));
        }
        assert_eq!(cg.tuple_vertex_count(), db.tuple_count());
        // Attribute vertices map back to no tuple.
        let u1 = cg.vertex_of(t1);
        let attr_vertex = cg
            .graph
            .children(u1)
            .iter()
            .copied()
            .find(|v| cg.tuple_of(*v).is_none());
        assert!(attr_vertex.is_some());
    }

    #[test]
    fn null_attributes_are_skipped() {
        let mut s = Schema::new();
        let r = s.add_relation(RelationSchema::new("r", &["a", "b"]));
        let mut db = Database::new(s);
        let t = db.insert(r, Tuple::new(vec![Value::Null, Value::str("x")]));
        let cg = canonicalize(&db);
        let u = cg.vertex_of(t);
        assert_eq!(cg.graph.out_degree(u), 1);
    }

    #[test]
    fn shared_interner_aligns_label_ids() {
        let (db, _, _) = paper_db();
        let mut ext = Interner::new();
        let germany = ext.intern("Germany");
        let cg = canonicalize_with_interner(&db, ext);
        assert_eq!(cg.interner.get("Germany"), Some(germany));
    }

    #[test]
    fn non_fk_edges_not_flagged() {
        let (db, t1, _) = paper_db();
        let cg = canonicalize(&db);
        let u1 = cg.vertex_of(t1);
        let scalar_children: Vec<VertexId> = cg
            .graph
            .children(u1)
            .iter()
            .copied()
            .filter(|v| cg.tuple_of(*v).is_none())
            .collect();
        assert!(scalar_children
            .iter()
            .all(|&v| !cg.is_fk_edge(u1, v)));
    }
}
