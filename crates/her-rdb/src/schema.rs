//! Database schemas: relation schemas, attributes, foreign keys.

use serde::{Deserialize, Serialize};

/// A declared foreign key: attribute `attr` of this relation references
/// tuples of relation `target_relation`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Attribute position within the owning relation schema.
    pub attr: usize,
    /// Index of the referenced relation within the database schema.
    pub target_relation: usize,
}

/// Schema of one relation: `R = (A1, …, Ak)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelationSchema {
    name: String,
    attrs: Vec<String>,
    foreign_keys: Vec<ForeignKey>,
}

impl RelationSchema {
    /// Creates a schema with the given relation name and attribute names.
    pub fn new(name: &str, attrs: &[&str]) -> Self {
        Self {
            name: name.to_owned(),
            attrs: attrs.iter().map(|a| (*a).to_owned()).collect(),
            foreign_keys: Vec::new(),
        }
    }

    /// Declares that attribute `attr_name` references `target_relation`.
    ///
    /// # Panics
    /// Panics if `attr_name` is not an attribute of this schema.
    pub fn with_foreign_key(mut self, attr_name: &str, target_relation: usize) -> Self {
        let attr = self
            .attr_index(attr_name)
            .unwrap_or_else(|| panic!("unknown attribute {attr_name:?}"));
        self.foreign_keys.push(ForeignKey {
            attr,
            target_relation,
        });
        self
    }

    /// The relation name `R`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute names, positionally.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// Number of attributes `k`.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of attribute `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a == name)
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Whether attribute `attr` participates in a foreign key.
    pub fn is_fk_attr(&self, attr: usize) -> bool {
        self.foreign_keys.iter().any(|fk| fk.attr == attr)
    }
}

/// A database schema `R = (R1, …, Rn)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    relations: Vec<RelationSchema>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation schema; returns its index.
    pub fn add_relation(&mut self, rs: RelationSchema) -> usize {
        self.relations.push(rs);
        self.relations.len() - 1
    }

    /// All relation schemas.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// The schema of relation `i`.
    pub fn relation(&self, i: usize) -> &RelationSchema {
        &self.relations[i]
    }

    /// Index of the relation named `name`.
    pub fn relation_index(&self, name: &str) -> Option<usize> {
        self.relations.iter().position(|r| r.name == name)
    }

    /// Number of relations `n`.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the schema declares no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schema() -> Schema {
        // Tables I and II of the paper.
        let mut s = Schema::new();
        let brand = s.add_relation(RelationSchema::new(
            "brand",
            &["name", "country", "manufacturer", "made_in"],
        ));
        s.add_relation(
            RelationSchema::new("item", &["item", "material", "color", "type", "brand", "qty"])
                .with_foreign_key("brand", brand),
        );
        s
    }

    #[test]
    fn relation_lookup() {
        let s = paper_schema();
        assert_eq!(s.len(), 2);
        assert_eq!(s.relation_index("item"), Some(1));
        assert_eq!(s.relation_index("nope"), None);
        assert_eq!(s.relation(0).name(), "brand");
    }

    #[test]
    fn attr_lookup() {
        let s = paper_schema();
        let item = s.relation(1);
        assert_eq!(item.arity(), 6);
        assert_eq!(item.attr_index("color"), Some(2));
        assert_eq!(item.attr_index("missing"), None);
    }

    #[test]
    fn foreign_keys_resolve() {
        let s = paper_schema();
        let item = s.relation(1);
        let fks = item.foreign_keys();
        assert_eq!(fks.len(), 1);
        assert_eq!(fks[0].attr, item.attr_index("brand").unwrap());
        assert_eq!(fks[0].target_relation, 0);
        assert!(item.is_fk_attr(fks[0].attr));
        assert!(!item.is_fk_attr(0));
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn fk_on_missing_attr_panics() {
        let _ = RelationSchema::new("r", &["a"]).with_foreign_key("b", 0);
    }
}
