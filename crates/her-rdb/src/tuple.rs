//! Tuples and tuple references.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A stable reference to a tuple: `(relation index, row index)` within one
/// [`crate::Database`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleRef {
    /// Index of the relation within the database schema.
    pub relation: u32,
    /// Row index within that relation.
    pub row: u32,
}

impl TupleRef {
    /// Creates a reference to row `row` of relation `relation`.
    pub fn new(relation: u32, row: u32) -> Self {
        Self { relation, row }
    }
}

impl std::fmt::Debug for TupleRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}.{}", self.relation, self.row)
    }
}

/// One tuple: a vector of [`Value`]s positionally matching its relation
/// schema's attributes.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from its attribute values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The value at attribute position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values, positionally.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_access() {
        let t = Tuple::new(vec![Value::str("Dame 7"), Value::Int(500)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get(0), &Value::str("Dame 7"));
        assert_eq!(t.get(1), &Value::Int(500));
    }

    #[test]
    fn tuple_ref_identity() {
        let a = TupleRef::new(1, 2);
        let b = TupleRef::new(1, 2);
        let c = TupleRef::new(2, 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(format!("{a:?}"), "t1.2");
    }

    #[test]
    fn tuple_ref_ordering_groups_by_relation() {
        assert!(TupleRef::new(0, 9) < TupleRef::new(1, 0));
        assert!(TupleRef::new(1, 0) < TupleRef::new(1, 1));
    }
}
