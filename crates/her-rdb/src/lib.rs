//! Relational substrate for HER.
//!
//! The paper (§II) assumes a database schema `R = (R1, …, Rn)` where each
//! `Ri = (A1, …, Ak)` has attributes from alphabet Υ; a database `D` of `R`
//! is a relation instance per schema. This crate provides:
//!
//! - [`schema`]: relation schemas with named attributes and foreign keys;
//! - [`value`] / [`mod@tuple`] / [`relation`] / [`database`]: the instances;
//! - [`csv`] / [`json`] / [`load`]: CSV and JSON-lines ingestion (§VIII's
//!   "other data formats" future work);
//! - [`rdb2rdf`]: the W3C-RDB2RDF-style *canonical mapping* `f_D` producing
//!   the canonical graph `G_D` and the 1-1 tuple↔vertex correspondence that
//!   module SPair uses to locate `u_t` for a tuple `t`.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod csv;
pub mod database;
pub mod json;
pub mod load;
pub mod rdb2rdf;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use database::Database;
pub use rdb2rdf::CanonicalGraph;
pub use schema::{RelationSchema, Schema};
pub use tuple::{Tuple, TupleRef};
pub use value::Value;
