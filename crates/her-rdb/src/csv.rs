//! Minimal CSV reading/writing for relation instances.
//!
//! The paper's real-life datasets ship as CSV exports (UKGOV, DBLP, IMDB
//! relational dumps). This module parses RFC-4180-style CSV — quoted fields,
//! embedded commas/quotes/newlines — into tuples of string values, and
//! serialises relations back out. Foreign keys are resolved separately by
//! the caller (CSV has no reference type).

use crate::tuple::Tuple;
use crate::value::Value;

/// Parse error with 1-based line information.
#[derive(Debug, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Parses CSV text into records of string fields.
///
/// Handles quoted fields with embedded commas, doubled quotes (`""`) and
/// newlines. The final record may or may not end with a newline.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(CsvError {
                            line,
                            message: "quote inside unquoted field".to_owned(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => { /* tolerate CRLF */ }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError {
            line,
            message: "unterminated quoted field".to_owned(),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parses CSV with a header row into `(header, tuples)`. Each field becomes
/// a [`Value::Str`] (empty fields become [`Value::Null`]).
pub fn parse_relation(text: &str) -> Result<(Vec<String>, Vec<Tuple>), CsvError> {
    let mut records = parse(text)?;
    if records.is_empty() {
        return Err(CsvError {
            line: 1,
            message: "missing header row".to_owned(),
        });
    }
    let header = records.remove(0);
    let arity = header.len();
    let mut tuples = Vec::with_capacity(records.len());
    for (i, rec) in records.into_iter().enumerate() {
        if rec.len() != arity {
            return Err(CsvError {
                line: i + 2,
                message: format!("expected {arity} fields, found {}", rec.len()),
            });
        }
        tuples.push(Tuple::new(
            rec.into_iter()
                .map(|f| {
                    if f.is_empty() {
                        Value::Null
                    } else {
                        Value::Str(f)
                    }
                })
                .collect(),
        ));
    }
    Ok((header, tuples))
}

/// Serialises records to CSV, quoting fields when needed.
pub fn write(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        for (i, f) in rec.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if f.contains(',') || f.contains('"') || f.contains('\n') {
                out.push('"');
                out.push_str(&f.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(f);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_fields() {
        let r = parse("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(r, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let r = parse("\"a,b\",\"say \"\"hi\"\"\"\n").unwrap();
        assert_eq!(r, vec![vec!["a,b", "say \"hi\""]]);
    }

    #[test]
    fn quoted_newline() {
        let r = parse("\"line1\nline2\",x\n").unwrap();
        assert_eq!(r[0][0], "line1\nline2");
        assert_eq!(r[0][1], "x");
    }

    #[test]
    fn crlf_tolerated() {
        let r = parse("a,b\r\nc,d\r\n").unwrap();
        assert_eq!(r, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn missing_trailing_newline() {
        let r = parse("a,b\nc,d").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["c", "d"]);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let e = parse("\"oops\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn stray_quote_is_error() {
        let e = parse("ab\"c\n").unwrap_err();
        assert!(e.message.contains("quote inside"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn relation_parsing_nulls_empty_fields() {
        let (header, tuples) = parse_relation("name,qty\nshoes,\n,5\n").unwrap();
        assert_eq!(header, vec!["name", "qty"]);
        assert_eq!(tuples[0].get(1), &Value::Null);
        assert_eq!(tuples[1].get(0), &Value::Null);
        assert_eq!(tuples[1].get(1), &Value::str("5"));
    }

    #[test]
    fn relation_parsing_checks_arity() {
        let e = parse_relation("a,b\n1\n").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn relation_parsing_needs_header() {
        assert!(parse_relation("").is_err());
    }

    #[test]
    fn roundtrip() {
        let recs = vec![
            vec!["plain".to_owned(), "with,comma".to_owned()],
            vec!["with \"quote\"".to_owned(), "multi\nline".to_owned()],
        ];
        let text = write(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }
}
