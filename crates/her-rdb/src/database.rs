//! Databases: a schema plus one relation instance per relation schema.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::{Tuple, TupleRef};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A database `D = (D1, …, Dn)` of schema `R = (R1, …, Rn)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Database {
    schema: Schema,
    relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database with one empty relation per schema entry.
    pub fn new(schema: Schema) -> Self {
        let relations = (0..schema.len()).map(|_| Relation::new()).collect();
        Self { schema, relations }
    }

    /// The database schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Inserts `tuple` into relation `relation`; returns its reference.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the relation schema.
    pub fn insert(&mut self, relation: usize, tuple: Tuple) -> TupleRef {
        assert_eq!(
            tuple.arity(),
            self.schema.relation(relation).arity(),
            "tuple arity must match schema of relation {:?}",
            self.schema.relation(relation).name()
        );
        let row = self.relations[relation].push(tuple);
        TupleRef::new(relation as u32, row)
    }

    /// Convenience: insert by relation name.
    pub fn insert_into(&mut self, relation_name: &str, tuple: Tuple) -> TupleRef {
        let idx = self
            .schema
            .relation_index(relation_name)
            .unwrap_or_else(|| panic!("unknown relation {relation_name:?}"));
        self.insert(idx, tuple)
    }

    /// The tuple referenced by `r`.
    pub fn tuple(&self, r: TupleRef) -> &Tuple {
        self.relations[r.relation as usize].get(r.row)
    }

    /// The relation instance at index `i`.
    pub fn relation(&self, i: usize) -> &Relation {
        &self.relations[i]
    }

    /// Iterates over every tuple in the database with its reference.
    pub fn tuples(&self) -> impl Iterator<Item = (TupleRef, &Tuple)> {
        self.relations.iter().enumerate().flat_map(|(ri, rel)| {
            rel.tuples()
                .iter()
                .enumerate()
                .map(move |(row, t)| (TupleRef::new(ri as u32, row as u32), t))
        })
    }

    /// Total number of tuples across all relations.
    pub fn tuple_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// The value of attribute `attr_name` of tuple `r`, if the attribute
    /// exists in the owning relation's schema.
    pub fn attr_value(&self, r: TupleRef, attr_name: &str) -> Option<&Value> {
        let rs = self.schema.relation(r.relation as usize);
        let i = rs.attr_index(attr_name)?;
        Some(self.tuple(r).get(i))
    }

    /// Validates that every `Value::Ref` points at an existing tuple of the
    /// relation its foreign key declares. Returns the offending references.
    pub fn dangling_refs(&self) -> Vec<(TupleRef, usize)> {
        let mut bad = Vec::new();
        for (tr, t) in self.tuples() {
            let rs = self.schema.relation(tr.relation as usize);
            for (i, v) in t.values().iter().enumerate() {
                if let Value::Ref(target) = v {
                    let declared = rs
                        .foreign_keys()
                        .iter()
                        .find(|fk| fk.attr == i)
                        .map(|fk| fk.target_relation);
                    let ok = declared == Some(target.relation as usize)
                        && (target.row as usize)
                            < self.relations[target.relation as usize].len();
                    if !ok {
                        bad.push((tr, i));
                    }
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;

    fn db() -> Database {
        let mut s = Schema::new();
        let brand = s.add_relation(RelationSchema::new("brand", &["name", "country"]));
        s.add_relation(
            RelationSchema::new("item", &["item", "brand"]).with_foreign_key("brand", brand),
        );
        Database::new(s)
    }

    #[test]
    fn insert_and_lookup() {
        let mut d = db();
        let b = d.insert_into(
            "brand",
            Tuple::new(vec![Value::str("Addidas"), Value::str("Germany")]),
        );
        let t = d.insert_into(
            "item",
            Tuple::new(vec![Value::str("Shoes"), Value::Ref(b)]),
        );
        assert_eq!(d.tuple_count(), 2);
        assert_eq!(d.attr_value(t, "item"), Some(&Value::str("Shoes")));
        assert_eq!(d.attr_value(b, "country"), Some(&Value::str("Germany")));
        assert_eq!(d.attr_value(t, "nope"), None);
    }

    #[test]
    fn tuples_iterates_all_with_refs() {
        let mut d = db();
        let b = d.insert_into(
            "brand",
            Tuple::new(vec![Value::str("A"), Value::str("DE")]),
        );
        d.insert_into("item", Tuple::new(vec![Value::str("x"), Value::Ref(b)]));
        d.insert_into("item", Tuple::new(vec![Value::str("y"), Value::Ref(b)]));
        let refs: Vec<TupleRef> = d.tuples().map(|(r, _)| r).collect();
        assert_eq!(
            refs,
            vec![
                TupleRef::new(0, 0),
                TupleRef::new(1, 0),
                TupleRef::new(1, 1)
            ]
        );
    }

    #[test]
    fn fk_validation_flags_dangling() {
        let mut d = db();
        // Reference a brand row that does not exist.
        d.insert_into(
            "item",
            Tuple::new(vec![Value::str("x"), Value::Ref(TupleRef::new(0, 7))]),
        );
        assert_eq!(d.dangling_refs().len(), 1);
    }

    #[test]
    fn fk_validation_flags_wrong_relation() {
        let mut d = db();
        let b = d.insert_into(
            "brand",
            Tuple::new(vec![Value::str("A"), Value::str("DE")]),
        );
        let i = d.insert_into("item", Tuple::new(vec![Value::str("x"), Value::Ref(b)]));
        assert!(d.dangling_refs().is_empty());
        // A ref on an attribute with no declared FK (or to the wrong relation) is flagged.
        d.insert_into("item", Tuple::new(vec![Value::Ref(i), Value::Ref(b)]));
        assert_eq!(d.dangling_refs().len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut d = db();
        d.insert_into("brand", Tuple::new(vec![Value::str("just one")]));
    }
}
