//! # her-sync — the workspace's synchronization facade
//!
//! Every lock in the HER workspace is taken through the [`Mutex`] and
//! [`RwLock`] wrappers defined here (the `her::raw_sync_lock` lint in
//! `her-analysis` enforces that no other crate touches
//! `std::sync::{Mutex, RwLock}` directly). The wrappers mirror the std
//! API — `lock()`, `read()`, `write()` return [`LockResult`]s with the
//! usual poisoning semantics — plus one addition: every lock carries a
//! [`Rank`] from the global [`rank`] table, and a runtime tracker
//! checks, per thread, that
//!
//! 1. locks are acquired in **strictly increasing rank order**, and
//! 2. no lock is acquired **re-entrantly** (same instance twice on one
//!    thread — which deadlocks outright for `Mutex`/write locks, and
//!    deadlocks against a queued writer for read locks).
//!
//! A violation panics immediately and deterministically, naming the
//! attempted lock, every lock the thread currently holds, and both
//! acquisition backtraces (captured when `RUST_BACKTRACE` is set).
//! Latent deadlocks — which otherwise require an unlucky interleaving
//! under load — thus become ordinary test failures.
//!
//! Tracking is active in debug/test builds (`debug_assertions`) and in
//! release builds that enable the `lock-order` feature; otherwise the
//! wrappers compile down to the bare std primitives plus one predictable
//! branch.
//!
//! The total order over the workspace's locks lives in [`rank`]; see
//! DESIGN.md §4g for the rationale behind each rank.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::fmt;
use std::sync::{LockResult, PoisonError};

/// `true` when the lock-order tracker is compiled in: every debug/test
/// build, plus release builds with the `lock-order` feature.
pub const TRACKING: bool = cfg!(any(feature = "lock-order", debug_assertions));

/// A lock's position in the workspace-wide acquisition order, plus the
/// name violations are reported under. Declare ranks in [`rank`] only,
/// so the total order stays reviewable in one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rank {
    /// Acquisition order: a thread may only acquire a lock whose order
    /// is strictly greater than every lock it already holds.
    pub order: u32,
    /// Stable dotted name used in panic messages and DESIGN.md's table.
    pub name: &'static str,
}

impl Rank {
    pub const fn new(order: u32, name: &'static str) -> Self {
        Rank { order, name }
    }
}

/// The workspace lock-rank table — the single source of truth for the
/// acquisition order (outermost/lowest first). Keep in sync with the
/// table in DESIGN.md §4g.
pub mod rank {
    use super::Rank;

    /// `her-serve` watchdog in-flight table: registration at request
    /// start/end plus the reaper's scan. Ranked above (acquired before)
    /// the admission gate because the reaper force-releases a stuck
    /// request's permit — an admission acquisition — while scanning.
    pub const SERVE_WATCHDOG: Rank = Rank::new(3, "serve.watchdog");
    /// `her-serve` admission gate: in-flight/queue bookkeeping. Outermost
    /// serve-side lock — held only for bookkeeping, never across a match.
    pub const SERVE_ADMISSION: Rank = Rank::new(4, "serve.admission");
    /// `her-serve` session registry: the stream-id → session map. Held
    /// only to look up or create a session handle, then released before
    /// the session's own `SERVE_STREAM` lock is taken, but ranked above
    /// it so a lookup-then-lock sequence is provably ordered.
    pub const SERVE_SESSIONS: Rank = Rank::new(5, "serve.sessions");
    /// `her-serve` stream session: serializes stream mutations and
    /// snapshots. Held across matching, which takes `SCORES_SHARD` and
    /// the obs locks, so it must rank below all of those.
    pub const SERVE_STREAM: Rank = Rank::new(6, "serve.stream");
    /// `her-serve` health state machine: the degradation-reason cell.
    /// Taken while the stream session lock is held (a failed journal
    /// append degrades in place), so it ranks below `SERVE_STREAM`.
    pub const SERVE_HEALTH: Rank = Rank::new(7, "serve.health");
    /// `her-parallel` partition table (`SharedPartition`): owner lookups
    /// and recovery-time reassignment.
    pub const PARTITION: Rank = Rank::new(10, "parallel.partition");
    /// `her-parallel` fault plan: once-only kill bookkeeping.
    pub const FAULT_KILLS: Rank = Rank::new(20, "parallel.fault_kills");
    /// `her-parallel` fault plan: once-only poison bookkeeping.
    pub const FAULT_POISON: Rank = Rank::new(21, "parallel.fault_poison");
    /// `her-parallel` fault plan: per-worker message-fate counters.
    pub const FAULT_COUNTERS: Rank = Rank::new(22, "parallel.fault_counters");
    /// `her-core` matcher pool: the warm-matcher free list. Held only
    /// for a pop/push (matchers are moved out before use), never across
    /// a match, so it ranks above the score shards a checked-out
    /// matcher will lock.
    pub const MATCHER_POOL: Rank = Rank::new(30, "core.matcher_pool");
    /// `her-core` shared score memo: one rank for all shards — shards
    /// are peers and at most one may be held at a time.
    pub const SCORES_SHARD: Rank = Rank::new(40, "core.scores_shard");
    /// `her-obs` instrument registry (innermost tier: obs calls may
    /// appear inside any other critical section).
    pub const OBS_REGISTRY: Rank = Rank::new(90, "obs.registry");
    /// `her-obs` trace ring buffer.
    pub const OBS_TRACE: Rank = Rank::new(95, "obs.trace");

    /// The whole table as `(const ident, rank)` pairs, in acquisition
    /// order — the machine-readable form consumed by `her-analysis`'s
    /// static lock-order pass (the analyzer sees `rank::SERVE_STREAM`
    /// in source, so the const ident is the join key). Every constant
    /// above must appear here exactly once.
    pub const ALL: &[(&str, Rank)] = &[
        ("SERVE_WATCHDOG", SERVE_WATCHDOG),
        ("SERVE_ADMISSION", SERVE_ADMISSION),
        ("SERVE_SESSIONS", SERVE_SESSIONS),
        ("SERVE_STREAM", SERVE_STREAM),
        ("SERVE_HEALTH", SERVE_HEALTH),
        ("PARTITION", PARTITION),
        ("FAULT_KILLS", FAULT_KILLS),
        ("FAULT_POISON", FAULT_POISON),
        ("FAULT_COUNTERS", FAULT_COUNTERS),
        ("MATCHER_POOL", MATCHER_POOL),
        ("SCORES_SHARD", SCORES_SHARD),
        ("OBS_REGISTRY", OBS_REGISTRY),
        ("OBS_TRACE", OBS_TRACE),
    ];
}

/// One lock a thread currently holds.
struct Held {
    order: u32,
    name: &'static str,
    /// Identity of the lock instance (address of its inner primitive).
    addr: usize,
    /// Captured at acquisition; disabled (cheap) unless `RUST_BACKTRACE`
    /// is set, like std's panic backtraces.
    backtrace: Backtrace,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Optional acquisition-edge dump, enabled by pointing the
/// `HER_SYNC_EDGE_LOG` environment variable at a file. Every acquisition
/// that *passes* the tracker's checks appends one `held acquired` line
/// per lock currently held (deduplicated per process) — the observed
/// rank-acquisition edges. CI's consistency drill runs the test suites
/// with this on and asserts the observed edge set is a subset of the
/// static lock graph `her-analysis` derives (dynamic ⊆ static), proving
/// the static pass does not under-approximate reality. Edges are logged
/// only after the checks so a deliberately-seeded (and caught) inversion
/// in a test never pollutes the dump.
mod edge_log {
    use std::collections::HashSet;
    use std::io::Write;
    use std::sync::{Mutex, OnceLock, PoisonError};

    struct Log {
        file: std::fs::File,
        seen: HashSet<(&'static str, &'static str)>,
    }

    static LOG: OnceLock<Option<Mutex<Log>>> = OnceLock::new();

    fn open() -> Option<Mutex<Log>> {
        let path = std::env::var_os("HER_SYNC_EDGE_LOG")?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()?;
        Some(Mutex::new(Log {
            file,
            seen: HashSet::new(),
        }))
    }

    /// Records `held -> acquired` for every held lock. No-op unless the
    /// env var was set when the first acquisition happened.
    pub(crate) fn record(
        held: impl Iterator<Item = &'static str>,
        acquired: &'static str,
    ) {
        let Some(log) = LOG.get_or_init(open) else {
            return;
        };
        let mut log = log.lock().unwrap_or_else(PoisonError::into_inner);
        for h in held {
            if log.seen.insert((h, acquired)) {
                // O_APPEND keeps concurrent test binaries from tearing
                // each other's lines; each line is far below PIPE_BUF.
                let _ = writeln!(log.file, "{h} {acquired}");
            }
        }
    }
}

/// Checks the acquisition of `(rank, addr)` against this thread's held
/// set and records it. Panics on re-entrancy or rank inversion.
fn track_acquire(rank: Rank, addr: usize) {
    if !TRACKING {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(h) = held.iter().find(|h| h.addr == addr) {
            panic!(
                "her-sync: re-entrant acquisition of `{}` (rank {})\n\
                 first acquired at:\n{}\n\
                 re-acquired at:\n{}",
                h.name,
                h.order,
                h.backtrace,
                Backtrace::capture(),
            );
        }
        if let Some(h) = held.iter().find(|h| h.order >= rank.order) {
            let held_set: Vec<String> = held
                .iter()
                .map(|h| format!("  - `{}` (rank {}) acquired at:\n{}", h.name, h.order, h.backtrace))
                .collect();
            panic!(
                "her-sync: lock-order violation: acquiring `{}` (rank {}) while holding \
                 `{}` (rank {}) — ranks must strictly increase\n\
                 held lock set:\n{}\n\
                 violating acquisition at:\n{}",
                rank.name,
                rank.order,
                h.name,
                h.order,
                held_set.join("\n"),
                Backtrace::capture(),
            );
        }
        // Both checks passed: this is a legal acquisition, worth
        // recording as an observed edge (see `edge_log`).
        edge_log::record(held.iter().map(|h| h.name), rank.name);
        held.push(Held {
            order: rank.order,
            name: rank.name,
            addr,
            backtrace: Backtrace::capture(),
        });
    });
}

/// Removes `addr` from this thread's held set (guards may drop in any
/// order, so this is not a strict stack pop).
fn track_release(addr: usize) {
    if !TRACKING {
        return;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(i) = held.iter().rposition(|h| h.addr == addr) {
            held.remove(i);
        }
    });
}

/// The lock set the current thread holds, as `(name, order)` pairs in
/// acquisition order. Empty when tracking is compiled out.
pub fn held_locks() -> Vec<(&'static str, u32)> {
    if !TRACKING {
        return Vec::new();
    }
    HELD.with(|held| held.borrow().iter().map(|h| (h.name, h.order)).collect())
}

/// Pops the tracker entry for `addr` when dropped (declared *after* the
/// std guard in each wrapper so the primitive unlocks first).
struct Release {
    addr: usize,
}

impl Drop for Release {
    fn drop(&mut self) {
        track_release(self.addr);
    }
}

/// Maps a std `LockResult` over a guard-wrapping function, preserving
/// poisoning.
fn map_lock_result<G, H>(r: LockResult<G>, f: impl FnOnce(G) -> H) -> LockResult<H> {
    match r {
        Ok(g) => Ok(f(g)),
        Err(p) => Err(PoisonError::new(f(p.into_inner()))),
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// A [`std::sync::Mutex`] with a declared [`Rank`], checked by the
/// lock-order tracker on every acquisition.
pub struct Mutex<T: ?Sized> {
    rank: Rank,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(rank: Rank, value: T) -> Self {
        Mutex {
            rank,
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// As [`std::sync::Mutex::lock`]; additionally panics (never blocks)
    /// if the acquisition violates the workspace lock order or is
    /// re-entrant.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let addr = std::ptr::addr_of!(self.inner) as *const () as usize;
        track_acquire(self.rank, addr);
        map_lock_result(self.inner.lock(), |inner| MutexGuard {
            inner,
            _release: Release { addr },
        })
    }

    /// The declared rank of this lock.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: Default> Mutex<T> {
    /// A ranked mutex around `T::default()`.
    pub fn default_with(rank: Rank) -> Self {
        Mutex::new(rank, T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Field order matters: the std guard drops (unlocking) before the
    // tracker entry pops.
    inner: std::sync::MutexGuard<'a, T>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// A [`std::sync::RwLock`] with a declared [`Rank`], checked by the
/// lock-order tracker on every acquisition (reads and writes alike —
/// a same-thread re-entrant read deadlocks against a queued writer, so
/// it is rejected too).
pub struct RwLock<T: ?Sized> {
    rank: Rank,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(rank: Rank, value: T) -> Self {
        RwLock {
            rank,
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// As [`std::sync::RwLock::read`], with lock-order checking.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let addr = std::ptr::addr_of!(self.inner) as *const () as usize;
        track_acquire(self.rank, addr);
        map_lock_result(self.inner.read(), |inner| RwLockReadGuard {
            inner,
            _release: Release { addr },
        })
    }

    /// As [`std::sync::RwLock::write`], with lock-order checking.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let addr = std::ptr::addr_of!(self.inner) as *const () as usize;
        track_acquire(self.rank, addr);
        map_lock_result(self.inner.write(), |inner| RwLockWriteGuard {
            inner,
            _release: Release { addr },
        })
    }

    /// The declared rank of this lock.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _release: Release,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    const LOW: Rank = Rank::new(1, "test.low");
    const HIGH: Rank = Rank::new(9, "test.high");

    fn panic_message(r: std::thread::Result<()>) -> String {
        let e = r.expect_err("expected a panic");
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn increasing_order_is_allowed() {
        let a = Mutex::new(LOW, 1);
        let b = RwLock::new(HIGH, 2);
        let ga = a.lock().unwrap();
        let gb = b.read().unwrap();
        assert_eq!(*ga + *gb, 3);
        if TRACKING {
            assert_eq!(held_locks(), vec![("test.low", 1), ("test.high", 9)]);
        }
        drop(gb);
        drop(ga);
        assert!(held_locks().is_empty());
    }

    #[test]
    fn inversion_panics_naming_both_lock_sets() {
        if !TRACKING {
            return; // tracker compiled out (release without `lock-order`)
        }
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(HIGH, ());
        let gb = b.lock().unwrap();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ = a.lock();
        })));
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("test.low"), "{msg}");
        assert!(msg.contains("test.high"), "{msg}");
        assert!(msg.contains("held lock set"), "{msg}");
        drop(gb);
        // The failed acquisition must not have been recorded.
        assert!(held_locks().is_empty());
        // And the lower lock is still acquirable afterwards.
        drop(a.lock().unwrap());
    }

    #[test]
    fn equal_rank_counts_as_inversion() {
        if !TRACKING {
            return; // tracker compiled out (release without `lock-order`)
        }
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(LOW, ());
        let _ga = a.lock().unwrap();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ = b.lock();
        })));
        assert!(msg.contains("ranks must strictly increase"), "{msg}");
    }

    #[test]
    fn reentrant_mutex_panics_instead_of_deadlocking() {
        if !TRACKING {
            return; // tracker compiled out (release without `lock-order`)
        }
        let a = Mutex::new(LOW, ());
        let _g = a.lock().unwrap();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ = a.lock();
        })));
        assert!(msg.contains("re-entrant acquisition"), "{msg}");
        assert!(msg.contains("test.low"), "{msg}");
    }

    #[test]
    fn reentrant_read_panics() {
        if !TRACKING {
            return; // tracker compiled out (release without `lock-order`)
        }
        let a = RwLock::new(LOW, ());
        let _g = a.read().unwrap();
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let _ = a.read();
        })));
        assert!(msg.contains("re-entrant acquisition"), "{msg}");
    }

    #[test]
    fn sequential_reacquisition_is_fine() {
        let a = Mutex::new(LOW, 0);
        for _ in 0..3 {
            *a.lock().unwrap() += 1;
        }
        assert_eq!(*a.lock().unwrap(), 3);
    }

    #[test]
    fn tracking_is_per_thread() {
        let a = std::sync::Arc::new(RwLock::new(LOW, ()));
        let _g = a.read().unwrap();
        let b = std::sync::Arc::clone(&a);
        // Another thread holds nothing, so its acquisition is clean.
        std::thread::spawn(move || {
            let _g = b.read().unwrap();
            if TRACKING {
                assert_eq!(held_locks(), vec![("test.low", 1)]);
            }
        })
        .join()
        .expect("reader thread");
    }

    #[test]
    fn guards_can_drop_out_of_order() {
        let a = Mutex::new(LOW, ());
        let b = Mutex::new(HIGH, ());
        let ga = a.lock().unwrap();
        let gb = b.lock().unwrap();
        drop(ga); // out of acquisition order
        if TRACKING {
            assert_eq!(held_locks(), vec![("test.high", 9)]);
        }
        drop(gb);
        assert!(held_locks().is_empty());
    }

    #[test]
    fn poisoning_propagates_through_the_facade() {
        let a = std::sync::Arc::new(Mutex::new(LOW, 5));
        let b = std::sync::Arc::clone(&a);
        let _ = std::thread::spawn(move || {
            let _g = b.lock().unwrap();
            panic!("poison it");
        })
        .join();
        let v = *a.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(v, 5);
        assert!(held_locks().is_empty());
    }

    #[test]
    fn rank_table_is_strictly_ordered() {
        let table = [
            rank::SERVE_WATCHDOG,
            rank::SERVE_ADMISSION,
            rank::SERVE_SESSIONS,
            rank::SERVE_STREAM,
            rank::SERVE_HEALTH,
            rank::PARTITION,
            rank::FAULT_KILLS,
            rank::FAULT_POISON,
            rank::FAULT_COUNTERS,
            rank::MATCHER_POOL,
            rank::SCORES_SHARD,
            rank::OBS_REGISTRY,
            rank::OBS_TRACE,
        ];
        for w in table.windows(2) {
            assert!(
                w[0].order < w[1].order,
                "{} and {} out of order",
                w[0].name,
                w[1].name
            );
        }
        // The machine-readable export must be the same table: same
        // length, same order, and each entry's const ident must match
        // the rank it names (a renamed const with a stale ALL entry
        // would silently desynchronize the static analyzer).
        assert_eq!(rank::ALL.len(), table.len());
        for ((ident, exported), expected) in rank::ALL.iter().zip(table) {
            assert_eq!(exported.order, expected.order, "{ident} out of place");
            assert_eq!(exported.name, expected.name, "{ident} out of place");
        }
        for w in rank::ALL.windows(2) {
            assert!(w[0].1.order < w[1].1.order);
        }
    }
}
